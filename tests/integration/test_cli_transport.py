"""CLI network-fault robustness: injection, partition heal, ledger."""

import json

from repro.cli import main

_BASE = [
    "monitor",
    "--consumers",
    "4",
    "--weeks",
    "5",
    "--min-training-weeks",
    "2",
    "--retrain-every-weeks",
    "4",
]


def _elastic(tmp_path, name, *extra):
    return _BASE + [
        "--elastic",
        "--shards",
        "2",
        "--wal-dir",
        str(tmp_path / name),
        *extra,
    ]


def _final_summary(out):
    return [
        line
        for line in out.splitlines()
        if line.startswith(
            ("total alerts:", "suspected attackers:", "suspected victims:")
        )
    ]


class TestUsageErrors:
    def test_network_faults_require_elastic(self, capsys):
        code = main(_BASE + ["--network-faults", "shard-0000:ingest@5=drop"])
        assert code == 2
        assert "--network-faults requires --elastic" in capsys.readouterr().err

    def test_ledger_requires_network_faults(self, tmp_path, capsys):
        code = main(
            _elastic(
                tmp_path, "w", "--transport-ledger-out", str(tmp_path / "l")
            )
        )
        assert code == 2
        assert "--network-faults" in capsys.readouterr().err

    def test_bad_spec_and_bad_ttl_exit_2(self, tmp_path, capsys):
        assert (
            main(_elastic(tmp_path, "w", "--network-faults", "nonsense")) == 2
        )
        assert "bad network fault spec" in capsys.readouterr().err
        assert main(_elastic(tmp_path, "w", "--lease-ttl-cycles", "0")) == 2
        assert "--lease-ttl-cycles" in capsys.readouterr().err


class TestPartitionHealRun:
    def test_partition_heals_to_clean_run_verdicts(self, tmp_path, capsys):
        assert main(_elastic(tmp_path, "clean")) == 0
        baseline = _final_summary(capsys.readouterr().out)

        ledger_path = tmp_path / "ledger.json"
        code = main(
            _elastic(
                tmp_path,
                "chaos",
                "--network-faults",
                "shard-0000:ingest@40=partition,shard-*:ingest@90=drop",
                "--transport-ledger-out",
                str(ledger_path),
            )
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "network-fault injection armed: 2 scheduled fault(s)" in (
            captured.err
        )
        assert "partition healed: replayed" in captured.err
        assert "network faults injected: 2/2" in captured.err
        # The merged verdicts converge to the undisturbed run's.
        assert _final_summary(captured.out) == baseline

        ledger = json.loads(ledger_path.read_text())
        assert ledger["injected"] == 2
        assert {e["kind"] for e in ledger["ledger"]} == {"partition", "drop"}

    def test_transient_faults_invisible(self, tmp_path, capsys):
        assert main(_elastic(tmp_path, "clean")) == 0
        baseline = capsys.readouterr().out
        code = main(
            _elastic(
                tmp_path,
                "chaos",
                "--network-faults",
                "shard-*:ingest@13=delay,shard-*:ingest@57=garble,"
                "shard-*:ingest@101=dup",
            )
        )
        assert code == 0
        captured = capsys.readouterr()
        # Absorbed faults never surface in stdout — byte-for-byte clean.
        assert captured.out == baseline
        assert "network faults injected: 3/3" in captured.err
