"""Full-stack integration: grid + lossy AMI + preprocessing + online
monitoring + investigation — the whole reproduction wired together."""

import numpy as np
import pytest

from repro.core import KLDDetector, TheftMonitoringService
from repro.data.consumers import ConsumerProfile, ConsumerType
from repro.data.preprocessing import interpolate_gaps
from repro.data.synthetic import generate_consumer_series
from repro.grid.balance import BalanceAuditor
from repro.grid.builder import build_random_topology
from repro.grid.investigation import serviceman_search
from repro.grid.losses import ImpedanceLossModel
from repro.grid.snapshot import DemandSnapshot
from repro.metering.ami import AMINetwork
from repro.metering.channel import LossyChannel
from repro.metering.errors_model import MeasurementErrorModel
from repro.timeseries.seasonal import SLOTS_PER_WEEK

N_WEEKS = 14
TRAIN_WEEKS = 10


@pytest.fixture(scope="module")
def world():
    """Topology, AMI, losses, consumer ground truth."""
    topo = build_random_topology(n_consumers=6, branching=3, seed=5)
    ami = AMINetwork.deploy(topo, error_model=MeasurementErrorModel.exact())
    losses = ImpedanceLossModel.uniform(topo, resistance_ohm=0.2)
    series = {}
    for i, cid in enumerate(topo.consumers()):
        profile = ConsumerProfile(
            consumer_id=cid,
            kind=ConsumerType.RESIDENTIAL,
            scale_kw=1.0 + 0.3 * i,
            vacation_rate=0.0,
            party_rate=0.0,
        )
        series[cid] = generate_consumer_series(
            profile, N_WEEKS, np.random.default_rng(200 + i)
        )
    return topo, ami, losses, series


class TestFullStack:
    def test_lossy_channel_then_preprocessing_then_detection(self, world):
        """Readings travel a lossy link; the head-end repairs the gaps;
        the detector trains and still catches an attack week."""
        topo, ami, _, series = world
        channel = LossyChannel(drop_rate=0.01, outage_rate=0.0)
        rng = np.random.default_rng(1)
        cid = topo.consumers()[0]
        received: list[float] = []
        for t in range(TRAIN_WEEKS * SLOTS_PER_WEEK):
            delivered = channel.transmit(
                {cid: float(series[cid][t])}, rng
            )
            received.append(delivered.get(cid, np.nan))
        gappy = np.asarray(received)
        assert np.isnan(gappy).any()
        repaired = interpolate_gaps(gappy, max_gap=6)
        # Rare long outages may survive; seed those slots from the
        # weekly profile as a utility would.
        if np.isnan(repaired).any():
            matrix = repaired.reshape(TRAIN_WEEKS, SLOTS_PER_WEEK)
            profile = np.nanmean(matrix, axis=0)
            idx = np.where(np.isnan(repaired))[0]
            repaired[idx] = profile[idx % SLOTS_PER_WEEK]
        train = repaired.reshape(TRAIN_WEEKS, SLOTS_PER_WEEK)
        detector = KLDDetector(significance=0.05).fit(train)
        attack_week = train[-1] * 3.0
        assert detector.flags(attack_week)

    def test_attack_alert_then_physical_investigation(self, world):
        """End-to-end story: the KLD layer flags a victim, then the
        serviceman search pins the thief physically."""
        topo, ami, losses, series = world
        rng = np.random.default_rng(2)
        mallory = topo.consumers()[0]
        siblings = topo.siblings(mallory)
        if not siblings:
            pytest.skip("random topology gave Mallory no siblings")
        victim = siblings[0]
        steal_kw = 2.0

        # Data-driven layer: monitoring service over the weeks.
        service = TheftMonitoringService(
            detector_factory=lambda: KLDDetector(significance=0.01),
            min_training_weeks=TRAIN_WEEKS,
        )
        for week in range(N_WEEKS):
            attacking = week >= N_WEEKS - 2
            for slot in range(SLOTS_PER_WEEK):
                t = week * SLOTS_PER_WEEK + slot
                cycle = {
                    cid: float(series[cid][t]) for cid in topo.consumers()
                }
                if attacking:
                    cycle[victim] += steal_kw
                service.ingest_cycle(cycle)
        assert victim in service.suspected_victims()

        # Physical layer: Mallory's line tap is localised by the
        # portable-meter search even though her meter looks honest.
        demands = {
            cid: float(series[cid][-1]) for cid in topo.consumers()
        }
        demands[mallory] += steal_kw  # she consumes the stolen power
        snapshot = DemandSnapshot(
            topology=topo,
            actual=demands,
            losses=losses.compute_losses(demands),
        ).with_reported({mallory: float(series[mallory][-1])})
        result = serviceman_search(topo, snapshot, tolerance=1e-3)
        assert mallory in result.suspect_consumers

    def test_honest_world_stays_quiet_everywhere(self, world):
        topo, ami, losses, series = world
        rng = np.random.default_rng(3)
        demands = {cid: float(series[cid][0]) for cid in topo.consumers()}
        snapshot = ami.snapshot(
            demands, rng, losses=losses.compute_losses(demands)
        )
        auditor = BalanceAuditor(topo, tolerance=1e-6)
        assert not auditor.audit(snapshot).any_failure
