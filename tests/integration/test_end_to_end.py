"""End-to-end integration: grid + AMI + data + attacks + F-DETA pipeline.

Simulates a small neighbourhood for several weeks, launches a balanced
Class-1B theft, and verifies that (a) the balance check is blind to it and
(b) the F-DETA KLD pipeline flags the victimised neighbour.
"""

import numpy as np
import pytest

from repro.core.framework import AnomalyNature, FDetaFramework
from repro.core.kld import KLDDetector
from repro.data.consumers import ConsumerProfile, ConsumerType
from repro.data.synthetic import generate_consumer_series
from repro.grid.balance import BalanceAuditor
from repro.grid.topology import RadialTopology
from repro.metering.ami import AMINetwork, UtilityHeadEnd
from repro.metering.errors_model import MeasurementErrorModel
from repro.timeseries.seasonal import SLOTS_PER_WEEK


N_WEEKS_TRAIN = 12
CONSUMERS = ("m1", "m2", "m3")  # m1 will be Mallory; m2 her victim


@pytest.fixture(scope="module")
def neighbourhood():
    """Topology + AMI + per-consumer ground-truth series."""
    topo = RadialTopology(root_id="substation")
    topo.add_internal("feeder", "substation")
    for cid in CONSUMERS:
        topo.add_consumer(cid, "feeder")
    topo.validate()
    ami = AMINetwork.deploy(topo, error_model=MeasurementErrorModel.exact())
    rng = np.random.default_rng(99)
    series = {}
    for i, cid in enumerate(CONSUMERS):
        profile = ConsumerProfile(
            consumer_id=cid,
            kind=ConsumerType.RESIDENTIAL,
            scale_kw=1.0 + 0.5 * i,
            vacation_rate=0.0,
            party_rate=0.0,
        )
        series[cid] = generate_consumer_series(
            profile, N_WEEKS_TRAIN + 1, np.random.default_rng(100 + i)
        )
    return topo, ami, series


class TestHonestOperation:
    def test_balance_holds_every_period(self, neighbourhood):
        topo, ami, series = neighbourhood
        head = UtilityHeadEnd(ami=ami)
        rng = np.random.default_rng(1)
        for t in range(100):
            demands = {cid: float(series[cid][t]) for cid in CONSUMERS}
            head.poll(demands, rng)
        assert np.allclose(head.root_balance_residuals(), 0.0, atol=1e-9)


class TestBalancedTheftEndToEnd:
    def _run_attack_week(self, neighbourhood):
        """Collect one attacked week of readings via the AMI."""
        topo, ami, series = neighbourhood
        rng = np.random.default_rng(2)
        steal_kw = 1.0
        attacked_reported = {cid: [] for cid in CONSUMERS}
        start = N_WEEKS_TRAIN * SLOTS_PER_WEEK
        # Mallory (m1) consumes +1 kW; her meter is compromised to report
        # her typical value; m2's meter over-reports by the same amount.
        m1 = ami.meter("m1")
        m2 = ami.meter("m2")
        m1.compromise(lambda measured: max(measured - steal_kw, 0.0))
        m2.compromise(lambda measured: measured + steal_kw)
        try:
            for t in range(start, start + SLOTS_PER_WEEK):
                demands = {cid: float(series[cid][t]) for cid in CONSUMERS}
                demands["m1"] += steal_kw  # Mallory's raised consumption
                snap = ami.snapshot(demands, rng)
                for cid in CONSUMERS:
                    attacked_reported[cid].append(snap.reported[cid])
            # The final snapshot stands in for any period's balance audit.
            return snap, {
                cid: np.array(values)
                for cid, values in attacked_reported.items()
            }
        finally:
            m1.restore()
            m2.restore()

    def test_balance_check_blind_to_balanced_theft(self, neighbourhood):
        topo, _, _ = neighbourhood
        snap, _ = self._run_attack_week(neighbourhood)
        auditor = BalanceAuditor(topo, tolerance=1e-6)
        report = auditor.audit(snap)
        assert not report.any_failure

    def test_fdeta_flags_the_victim(self, neighbourhood):
        topo, _, series = neighbourhood
        _, attacked = self._run_attack_week(neighbourhood)
        framework = FDetaFramework(
            detector_factory=lambda: KLDDetector(significance=0.05),
            triage_quantiles=(0.2, 0.8),
        )
        framework.train(
            {
                cid: series[cid][: N_WEEKS_TRAIN * SLOTS_PER_WEEK].reshape(
                    N_WEEKS_TRAIN, SLOTS_PER_WEEK
                )
                for cid in CONSUMERS
            }
        )
        victim = framework.assess_week("m2", attacked["m2"])
        assert victim.result.flagged
        assert victim.nature is AnomalyNature.SUSPECTED_VICTIM

    def test_fdeta_spares_the_uninvolved(self, neighbourhood):
        topo, _, series = neighbourhood
        _, attacked = self._run_attack_week(neighbourhood)
        framework = FDetaFramework(
            detector_factory=lambda: KLDDetector(significance=0.05)
        )
        framework.train(
            {
                cid: series[cid][: N_WEEKS_TRAIN * SLOTS_PER_WEEK].reshape(
                    N_WEEKS_TRAIN, SLOTS_PER_WEEK
                )
                for cid in CONSUMERS
            }
        )
        bystander = framework.assess_week("m3", attacked["m3"])
        assert not bystander.result.flagged
