"""Smoke tests: every example script must run end-to-end.

The examples are part of the public deliverable; this guards them
against API drift the way library tests guard the modules.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: Examples that run unmodified in a few seconds.
QUICK_EXAMPLES = (
    "quickstart.py",
    "balance_check_investigation.py",
    "adr_price_attack.py",
    "layered_defense.py",
    "attack_planning.py",
    "fleet_rebalance.py",
)


def _run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example missing: {path}"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as exc:  # argparse-based examples exit cleanly
        assert exc.code in (None, 0)
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize("name", QUICK_EXAMPLES)
def test_quick_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_detector_shootout_small_scale(capsys):
    _run_example(
        "detector_shootout.py", ["--consumers", "4", "--vectors", "2"]
    )
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "Table III" in out


def test_online_monitoring_runs(capsys):
    _run_example("online_monitoring.py")
    out = capsys.readouterr().out
    assert "suspected victims" in out
