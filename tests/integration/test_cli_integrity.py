"""CLI smoke tests for the training-integrity flags.

The end-to-end story, driven entirely through ``repro monitor``: a
boiling-frog ramp armed with ``--ramp-attack`` poisons the baseline and
the seed pipeline misses it; the same run with ``--integrity`` screens
the ramp weeks out of training, convicts the attacker at the theft
floor, and exports the model lineage; ``--model-rollback`` restores a
registry version after ``--resume``.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data.dataset import SmartMeterDataset
from repro.data.loader import save_cer_file

from tests.integrity.conftest import (
    FLOOR_WEEKS,
    RAMP_DECAY,
    RAMP_FLOOR,
    RAMP_START,
    TOTAL_WEEKS,
    TRAIN_AT,
    honest_weeks,
)

SEED = 11
ATTACKER = "c00"


@pytest.fixture(scope="module")
def cer_file(tmp_path_factory):
    """An honest 4-consumer CER file; the CLI arms the ramp itself."""
    series = {
        f"c{i:02d}": np.concatenate(honest_weeks((SEED, i), TOTAL_WEEKS))
        for i in range(4)
    }
    path = tmp_path_factory.mktemp("integrity_cli") / "population.txt"
    save_cer_file(SmartMeterDataset(readings=series, train_weeks=TRAIN_AT), path)
    return str(path)


def _monitor_args(cer_file, *extra):
    return [
        "monitor",
        "--input",
        cer_file,
        "--min-training-weeks",
        str(TRAIN_AT),
        "--retrain-every-weeks",
        "8",
        "--drop-rate",
        "0",
        "--outage-rate",
        "0",
        "--corrupt-rate",
        "0",
        "--ramp-attack",
        ATTACKER,
        "--ramp-start-week",
        str(RAMP_START),
        "--ramp-decay",
        str(RAMP_DECAY),
        "--ramp-floor",
        str(RAMP_FLOOR),
        *extra,
    ]


def _attacker_alert_weeks(stdout: str) -> int:
    return sum(
        1 for line in stdout.splitlines() if line.strip().startswith(ATTACKER)
    )


class TestPoisonedBaselineDifferential:
    def test_seed_pipeline_misses_the_ramp(self, cer_file, capsys):
        assert main(_monitor_args(cer_file)) == 0
        captured = capsys.readouterr()
        assert "ramp attack armed on c00" in captured.err
        # The poisoned baseline absorbed the ramp: the attacker is
        # flagged on at most a sliver of the theft-floor weeks.
        assert _attacker_alert_weeks(captured.out) <= 2

    def test_integrity_mode_convicts_and_exports_lineage(
        self, cer_file, capsys, tmp_path
    ):
        lineage_path = tmp_path / "lineage.json"
        assert (
            main(
                _monitor_args(
                    cer_file,
                    "--integrity",
                    "--lineage-out",
                    str(lineage_path),
                )
            )
            == 0
        )
        captured = capsys.readouterr()
        # Same ramp, same data: the screened model convicts the
        # attacker on every theft-floor week.
        assert _attacker_alert_weeks(captured.out) >= len(FLOOR_WEEKS)
        assert "model: v" in captured.out
        payload = json.loads(lineage_path.read_text())
        assert payload["active_version"] >= 1
        kinds = {event["kind"] for event in payload["events"]}
        assert {"submitted", "promoted"} <= kinds
        active = next(
            v
            for v in payload["versions"]
            if v["version"] == payload["active_version"]
        )
        # The promoted model's lineage excludes the sentinel-convicted
        # ramp weeks for the attacker (the default config convicts from
        # one week after the ramp reaches its floor).
        assert max(active["lineage"][ATTACKER]) <= RAMP_START + 2
        assert len(active["lineage"][ATTACKER]) < len(
            active["lineage"]["c01"]
        )
        assert active["canary"]["passed"] is True


class TestRollbackCommand:
    def test_resume_with_model_rollback(self, cer_file, capsys, tmp_path):
        checkpoint = tmp_path / "monitor.ckpt"
        assert (
            main(
                _monitor_args(
                    cer_file,
                    "--integrity",
                    "--checkpoint",
                    str(checkpoint),
                )
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                _monitor_args(
                    cer_file,
                    "--integrity",
                    "--checkpoint",
                    str(checkpoint),
                    "--resume",
                    "--model-rollback",
                    "1",
                )
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "rolled the active model back to v1" in captured.err
        assert "rolled_back v1" in captured.out


class TestValidation:
    def test_canary_floor_requires_integrity(self, capsys):
        assert main(["monitor", "--canary-floor", "0.9"]) == 2
        assert "--canary-floor requires --integrity" in capsys.readouterr().err

    def test_lineage_out_requires_integrity(self, capsys):
        assert main(["monitor", "--lineage-out", "x.json"]) == 2
        assert "--lineage-out requires --integrity" in capsys.readouterr().err

    def test_model_rollback_requires_integrity(self, capsys):
        assert main(["monitor", "--model-rollback", "1"]) == 2
        assert (
            "--model-rollback requires --integrity" in capsys.readouterr().err
        )

    def test_model_rollback_requires_resume(self, capsys):
        assert main(["monitor", "--integrity", "--model-rollback", "1"]) == 2
        assert "requires --resume or --recover" in capsys.readouterr().err

    def test_training_window_floor(self, capsys):
        assert main(["monitor", "--training-window", "1"]) == 2
        assert "--training-window must be >= 2" in capsys.readouterr().err

    def test_unknown_ramp_consumer(self, cer_file, capsys):
        args = _monitor_args(cer_file)
        args[args.index(ATTACKER)] = "ghost"
        assert main(args) == 2
        assert "unknown consumer 'ghost'" in capsys.readouterr().err

    def test_bad_ramp_decay(self, cer_file, capsys):
        args = _monitor_args(cer_file)
        args[args.index(str(RAMP_DECAY))] = "1.5"
        assert main(args) == 2
        assert "weekly_decay" in capsys.readouterr().err

    def test_bad_canary_floor_value(self, capsys):
        assert (
            main(["monitor", "--integrity", "--canary-floor", "2.0"]) == 2
        )
        assert "canary_floor" in capsys.readouterr().err
