"""CLI storage-fault robustness: injection, degraded exits, scrub, exports."""

import json

from repro.cli import main

_BASE = [
    "monitor",
    "--consumers",
    "3",
    "--weeks",
    "5",
    "--min-training-weeks",
    "2",
    "--retrain-every-weeks",
    "4",
]


def _corrupt(path, offset=100):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes((byte[0] ^ 0xFF,)))


class TestUsageErrors:
    def test_bad_fault_spec_exits_2(self, capsys):
        assert main(_BASE + ["--storage-faults", "nonsense"]) == 2
        assert (
            main(_BASE + ["--storage-faults", "wal.append:write@0=eio"]) == 2
        )
        capsys.readouterr()

    def test_ledger_requires_faults(self, tmp_path, capsys):
        code = main(_BASE + ["--fault-ledger-out", str(tmp_path / "l.json")])
        assert code == 2
        assert "--storage-faults" in capsys.readouterr().err

    def test_scrub_requires_wal_and_checkpoint(self, tmp_path, capsys):
        assert main(_BASE + ["--scrub"]) == 2
        assert (
            main(_BASE + ["--scrub", "--wal-dir", str(tmp_path / "w")]) == 2
        )
        capsys.readouterr()

    def test_generations_must_be_positive(self, capsys):
        assert main(_BASE + ["--checkpoint-generations", "0"]) == 2
        capsys.readouterr()


class TestFaultInjectionRuns:
    def test_disk_full_degrades_and_exits_4(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.json"
        code = main(
            _BASE
            + [
                "--wal-dir",
                str(tmp_path / "wal"),
                "--storage-faults",
                "wal.append:write@50=enospc",
                "--fault-ledger-out",
                str(ledger_path),
            ]
        )
        assert code == 4
        captured = capsys.readouterr()
        assert "storage-fault injection armed: 1 scheduled fault(s)" in (
            captured.err
        )
        assert "storage degraded at cycle" in captured.err
        assert "storage went read-only (disk full)" in captured.err
        assert "storage faults injected: 1/1" in captured.err
        # Committed verdicts are still served from read-only state.
        assert "total alerts:" in captured.out
        ledger = json.loads(ledger_path.read_text())
        assert ledger["injected"] == 1
        assert ledger["ledger"][0]["kind"] == "enospc"

    def test_transient_faults_are_retried_to_a_clean_run(
        self, tmp_path, capsys
    ):
        code = main(
            _BASE
            + [
                "--wal-dir",
                str(tmp_path / "wal"),
                "--storage-faults",
                "wal.append:write@40=eio,wal.sync:fsync@90=eio",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "monitored 3 consumers for 5 weeks" in captured.out
        assert "storage faults injected: 2/2" in captured.err


class TestScrubCLI:
    def test_corrupt_checkpoint_is_repaired_and_verdicts_match(
        self, tmp_path, capsys
    ):
        ckpt = tmp_path / "monitor.ckpt"
        durable = _BASE + [
            "--wal-dir",
            str(tmp_path / "wal"),
            "--checkpoint",
            str(ckpt),
            "--checkpoint-generations",
            "2",
        ]
        assert main(durable) == 0
        baseline = capsys.readouterr().out
        _corrupt(ckpt)
        assert main(durable + ["--scrub", "--recover"]) == 0
        captured = capsys.readouterr()
        repaired = captured.out
        assert "scrub: current checkpoint" in captured.err
        assert "(repaired: rebuilt from previous generation" in captured.err
        assert "scrub: 2 generation(s) checked, 1 corrupt, 1 repaired" in (
            captured.err
        )

        def summary(out, prefix):
            return [
                line
                for line in out.splitlines()
                if line.startswith(prefix)
            ]

        # The repaired resume lands on the undisturbed run's verdicts.
        for prefix in (
            "total alerts",
            "suspected attackers",
            "suspected victims",
        ):
            assert summary(repaired, prefix) == summary(baseline, prefix)

    def test_clean_checkpoints_scrub_ok(self, tmp_path, capsys):
        ckpt = tmp_path / "monitor.ckpt"
        durable = _BASE + [
            "--wal-dir",
            str(tmp_path / "wal"),
            "--checkpoint",
            str(ckpt),
            "--checkpoint-generations",
            "2",
        ]
        assert main(durable) == 0
        capsys.readouterr()
        assert main(durable + ["--scrub", "--recover"]) == 0
        err = capsys.readouterr().err
        assert "scrub: 2 generation(s) checked, 0 corrupt, 0 repaired" in err

    def test_unrepairable_checkpoint_exits_1(self, tmp_path, capsys):
        import os

        ckpt = tmp_path / "monitor.ckpt"
        assert (
            main(
                _BASE
                + [
                    "--wal-dir",
                    str(tmp_path / "wal"),
                    "--checkpoint",
                    str(ckpt),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Corrupt current, no previous generation, and the WAL gone
        # missing: nothing left to rebuild from.
        _corrupt(ckpt)
        prev = f"{ckpt}.prev"
        if os.path.exists(prev):
            os.unlink(prev)
        code = main(
            _BASE
            + [
                "--wal-dir",
                str(tmp_path / "vanished"),
                "--checkpoint",
                str(ckpt),
                "--scrub",
                "--recover",
            ]
        )
        assert code == 1
        assert "could not repair" in capsys.readouterr().err


class TestExportsDegradeUnderENOSPC:
    def test_quarantine_report_enospc_warns_but_completes(
        self, tmp_path, capsys
    ):
        report = tmp_path / "quarantine.json"
        metrics = tmp_path / "metrics.prom"
        code = main(
            _BASE
            + [
                "--quarantine-report",
                str(report),
                "--metrics-out",
                str(metrics),
                "--storage-faults",
                "export.quarantine:*@1=enospc",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: could not write quarantine report" in captured.err
        assert "No space left on device" in captured.err
        assert not report.exists()
        assert metrics.exists()  # the other export still landed

    def test_health_export_enospc_warns_but_completes(
        self, tmp_path, capsys
    ):
        health = tmp_path / "health.json"
        code = main(
            [
                "monitor",
                "--consumers",
                "4",
                "--weeks",
                "5",
                "--min-training-weeks",
                "2",
                "--shards",
                "2",
                "--wal-dir",
                str(tmp_path / "fleet"),
                "--health-out",
                str(health),
                "--storage-faults",
                "export.health:*@1=enospc",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: could not write health report" in captured.err
        assert not health.exists()
        assert "monitored 4 consumers for 5 weeks across 2 shards" in (
            captured.out
        )

    def test_slo_export_enospc_warns_but_completes(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        code = main(
            [
                "monitor",
                "--consumers",
                "4",
                "--weeks",
                "5",
                "--min-training-weeks",
                "2",
                "--elastic",
                "--shards",
                "2",
                "--wal-dir",
                str(tmp_path / "fleet"),
                "--slo-out",
                str(slo),
                "--storage-faults",
                "export.slo:*@1=enospc",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: could not write SLO report" in captured.err
        assert not slo.exists()
        assert "2 elastic shard(s)" in captured.out
