"""Import-surface tests: every advertised name must resolve.

Catches stale ``__all__`` entries and broken re-exports across the whole
package — the kind of breakage that only shows up for downstream users.
"""

import importlib

import pytest

SUBPACKAGES = (
    "repro",
    "repro.attacks",
    "repro.attacks.injection",
    "repro.core",
    "repro.data",
    "repro.detectors",
    "repro.durability",
    "repro.evaluation",
    "repro.eventtime",
    "repro.grid",
    "repro.loadcontrol",
    "repro.metering",
    "repro.observability",
    "repro.pricing",
    "repro.quarantine",
    "repro.resilience",
    "repro.stats",
    "repro.timeseries",
)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{module_name} must define __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} does not resolve"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_sorted_and_unique(module_name):
    module = importlib.import_module(module_name)
    exported = list(module.__all__)
    assert len(exported) == len(set(exported)), f"duplicates in {module_name}"


def test_top_level_quickstart_names():
    """The README quickstart's imports must keep working."""
    from repro import (  # noqa: F401
        KLDDetector,
        SyntheticCERConfig,
        generate_cer_like_dataset,
    )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
