"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "out.txt", "--consumers", "5", "--weeks", "4"]
        )
        assert args.output == "out.txt"
        assert args.consumers == 5


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "4B" in out
        assert "Requires ADR" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "data.txt"
        code = main(
            [
                "generate",
                str(out_file),
                "--consumers",
                "2",
                "--weeks",
                "3",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert out_file.exists()
        assert "2 consumers x 3 weeks" in capsys.readouterr().out

    def test_evaluate_parallel_flag(self, capsys):
        code = main(
            [
                "evaluate",
                "--consumers",
                "3",
                "--weeks",
                "30",
                "--vectors",
                "2",
                "--parallel",
                "2",
            ]
        )
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    def test_evaluate_small(self, capsys):
        code = main(
            [
                "evaluate",
                "--consumers",
                "3",
                "--weeks",
                "30",
                "--vectors",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out
        assert "KLD detector" in out

    def test_ablation_small(self, capsys):
        code = main(
            [
                "ablation",
                "--consumers",
                "3",
                "--weeks",
                "30",
                "--sample",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bins" in out

    def test_topology_generate_and_roundtrip(self, tmp_path, capsys):
        topo_file = tmp_path / "topo.json"
        code = main(
            [
                "topology",
                "--consumers",
                "8",
                "--save",
                str(topo_file),
                "--ascii",
            ]
        )
        assert code == 0
        assert topo_file.exists()
        out = capsys.readouterr().out
        assert "[#]" in out  # consumer marker in ASCII mode
        code = main(["topology", "--load", str(topo_file), "--ascii"])
        assert code == 0
        assert "c0" in capsys.readouterr().out

    def test_stats(self, capsys):
        code = main(["stats", "--consumers", "3", "--weeks", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "consumers:" in out
        assert "largest consumer:" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--consumers",
                "3",
                "--weeks",
                "30",
                "--vectors",
                "2",
                "--output",
                str(out_file),
            ]
        )
        assert code == 0
        text = out_file.read_text()
        assert text.startswith("# F-DETA evaluation report")
        assert "Table II" in text

    def test_report_to_stdout(self, capsys):
        code = main(
            ["report", "--consumers", "3", "--weeks", "30", "--vectors", "2"]
        )
        assert code == 0
        assert "# F-DETA evaluation report" in capsys.readouterr().out

    def test_monitor_runs_and_checkpoints(self, tmp_path, capsys):
        ckpt = tmp_path / "monitor.ckpt"
        argv = [
            "monitor",
            "--consumers",
            "3",
            "--weeks",
            "8",
            "--min-training-weeks",
            "4",
            "--drop-rate",
            "0.05",
            "--checkpoint",
            str(ckpt),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "monitored 3 consumers for 8 weeks" in out
        assert "coverage" in out
        assert ckpt.exists()
        # Resuming from the finished checkpoint is a no-op replay.
        assert main(argv + ["--resume"]) == 0
        assert "monitored 3 consumers for 8 weeks (resumed)" in (
            capsys.readouterr().out
        )

    def test_monitor_overload_usage_errors(self, tmp_path, capsys):
        base = ["monitor", "--consumers", "3", "--weeks", "8"]
        assert main(base + ["--shards", "0"]) == 2
        assert main(base + ["--shards", "2"]) == 2  # needs --wal-dir
        assert (
            main(
                base
                + [
                    "--shards",
                    "2",
                    "--wal-dir",
                    str(tmp_path / "fleet"),
                    "--checkpoint",
                    str(tmp_path / "x.ckpt"),
                ]
            )
            == 2
        )
        assert main(base + ["--max-queue", "0"]) == 2
        capsys.readouterr()

    def test_monitor_with_queue_stays_clean(self, capsys):
        code = main(
            [
                "monitor",
                "--consumers",
                "3",
                "--weeks",
                "8",
                "--min-training-weeks",
                "4",
                "--max-queue",
                "64",
            ]
        )
        out = capsys.readouterr().out
        # Queue alone (no deadline, policy off) must not degrade the run.
        assert code == 0
        assert "0 shed" in out
        assert "monitored 3 consumers for 8 weeks" in out

    def test_monitor_deadline_overrun_exits_degraded(self, capsys):
        code = main(
            [
                "monitor",
                "--consumers",
                "3",
                "--weeks",
                "8",
                "--min-training-weeks",
                "4",
                "--shed-policy",
                "priority",
                "--cycle-deadline-ms",
                "0.0001",
            ]
        )
        captured = capsys.readouterr()
        assert code == 4
        assert "completed in degraded mode" in captured.err
        assert "deadline overrun(s)" in captured.err
        # The weekly reports are still produced and still well-formed.
        assert "monitored 3 consumers for 8 weeks" in captured.out

    def test_monitor_sharded_fleet(self, tmp_path, capsys):
        argv = [
            "monitor",
            "--consumers",
            "4",
            "--weeks",
            "8",
            "--min-training-weeks",
            "4",
            "--shards",
            "2",
            "--wal-dir",
            str(tmp_path / "fleet"),
            "--metrics-out",
            str(tmp_path / "fleet.prom"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[2/2 shards]" in out
        assert "monitored 4 consumers for 8 weeks across 2 shards" in out
        assert "supervisor restarts: 0" in out
        # The merged metrics file is valid Prometheus exposition.
        from repro.observability.metrics import parse_prometheus

        series = parse_prometheus((tmp_path / "fleet.prom").read_text())
        assert "fdeta_ingest_cycles_total" in series
        assert "fdeta_wal_appends_total" in series

    def test_monitor_sharded_matches_single_shard_verdicts(
        self, tmp_path, capsys
    ):
        base = [
            "monitor",
            "--consumers",
            "4",
            "--weeks",
            "8",
            "--min-training-weeks",
            "4",
        ]
        assert main(base) == 0
        single = capsys.readouterr().out
        assert (
            main(
                base
                + ["--shards", "2", "--wal-dir", str(tmp_path / "fleet")]
            )
            == 0
        )
        sharded = capsys.readouterr().out

        import ast

        def extract(out, prefix):
            value = next(
                line.split(":", 1)[1].strip()
                for line in out.splitlines()
                if line.startswith(prefix)
            )
            # Verdict lines print either 'none' or a python list; order
            # differs between the paths (shards report in shard order).
            if value.startswith("["):
                return set(ast.literal_eval(value))
            return value

        assert extract(single, "total alerts") == extract(
            sharded, "total alerts"
        )
        assert extract(single, "suspected attackers") == extract(
            sharded, "suspected attackers"
        )
        assert extract(single, "suspected victims") == extract(
            sharded, "suspected victims"
        )

    def test_evaluate_from_file(self, tmp_path, capsys):
        out_file = tmp_path / "data.txt"
        main(["generate", str(out_file), "--consumers", "2", "--weeks", "20"])
        capsys.readouterr()
        code = main(
            ["evaluate", "--input", str(out_file), "--vectors", "2"]
        )
        assert code == 0
        assert "Table II" in capsys.readouterr().out


class TestMonitorElastic:
    _base = [
        "monitor",
        "--consumers",
        "4",
        "--weeks",
        "8",
        "--min-training-weeks",
        "4",
    ]

    def test_usage_errors(self, tmp_path, capsys):
        assert main(self._base + ["--grow-at-week", "5"]) == 2
        assert main(self._base + ["--elastic"]) == 2  # needs --wal-dir
        assert (
            main(
                self._base
                + [
                    "--elastic",
                    "--wal-dir",
                    str(tmp_path / "fleet"),
                    "--checkpoint",
                    str(tmp_path / "x.ckpt"),
                ]
            )
            == 2
        )
        assert (
            main(
                self._base
                + [
                    "--eventtime",
                    "--elastic",
                    "--wal-dir",
                    str(tmp_path / "w"),
                ]
            )
            == 2
        )
        capsys.readouterr()

    def test_elastic_grow_matches_single_service_verdicts(
        self, tmp_path, capsys
    ):
        """A live mid-run shard add leaves the verdicts untouched."""
        assert main(self._base) == 0
        single = capsys.readouterr().out

        assert (
            main(
                self._base
                + [
                    "--elastic",
                    "--shards",
                    "2",
                    "--grow-at-week",
                    "5",
                    "--wal-dir",
                    str(tmp_path / "fleet"),
                    "--metrics-out",
                    str(tmp_path / "fleet.prom"),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "live rebalance at cycle 1680" in captured.err
        assert "[3/3 shards]" in captured.out
        assert (
            "monitored 4 consumers for 8 weeks across 3 elastic shard(s)"
            in captured.out
        )

        import ast

        def extract(out, prefix):
            value = next(
                line.split(":", 1)[1].strip()
                for line in out.splitlines()
                if line.startswith(prefix)
            )
            if value.startswith("["):
                return set(ast.literal_eval(value))
            return value

        for prefix in (
            "total alerts",
            "suspected attackers",
            "suspected victims",
        ):
            assert extract(single, prefix) == extract(captured.out, prefix)

        from repro.observability.metrics import parse_prometheus

        series = parse_prometheus((tmp_path / "fleet.prom").read_text())
        assert "fdeta_fleet_handoffs_total" in series
        assert "fdeta_wal_appends_total" in series

    def test_elastic_reopen_resumes_from_manifest(self, tmp_path, capsys):
        argv = self._base + [
            "--elastic",
            "--shards",
            "2",
            "--wal-dir",
            str(tmp_path / "fleet"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Second run over the same base_dir: the manifest says every
        # cycle is already ingested, so it resumes straight to the end.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "fleet resumed at cycle 2688" in captured.err
        assert (
            "monitored 4 consumers for 8 weeks across 2 elastic shard(s)"
            in captured.out
        )


class TestMonitorEventTime:
    _base = [
        "monitor",
        "--consumers",
        "3",
        "--weeks",
        "6",
        "--min-training-weeks",
        "3",
        "--retrain-every-weeks",
        "2",
        "--eventtime",
    ]

    def test_usage_errors(self, tmp_path, capsys):
        plain = ["monitor", "--consumers", "3", "--weeks", "6"]
        assert main(plain + ["--revisions-out", str(tmp_path / "r.json")]) == 2
        assert (
            main(
                self._base
                + ["--shards", "2", "--wal-dir", str(tmp_path / "w")]
            )
            == 2
        )
        assert main(self._base + ["--max-queue", "8"]) == 2
        assert (
            main(self._base + ["--checkpoint", str(tmp_path / "c.bin")]) == 2
        )
        capsys.readouterr()

    def test_eventtime_run_writes_revisions(self, tmp_path, capsys):
        import json

        revisions = tmp_path / "revisions.json"
        code = main(
            self._base
            + ["--scramble-delay", "3", "--revisions-out", str(revisions)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final weekly verdicts:" in out
        assert "monitored 3 consumers for 6 weeks (event-time)" in out
        assert "verdict revisions:" in out
        loaded = json.loads(revisions.read_text())
        assert set(loaded) >= {"total", "by_kind", "revisions"}

    def test_scrambled_final_verdicts_match_in_order(self, capsys):
        def final_section(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            section = out.split("final weekly verdicts:\n", 1)[1]
            # Drop the revision-count line: the paths there legitimately
            # differ; everything else must match exactly.
            return "\n".join(
                line
                for line in section.splitlines()
                if not line.startswith("verdict revisions:")
            )

        in_order = final_section(self._base + ["--scramble-delay", "0"])
        scrambled = final_section(self._base + ["--scramble-delay", "5"])
        assert in_order == scrambled
