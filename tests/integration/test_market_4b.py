"""Market-driven Attack Class 4B: the full substrate chain the paper
says 4B needs — a real-time market clearing prices, ADR consumers
responding, and Mallory forging a victim's price feed."""

import numpy as np
import pytest

from repro.attacks.injection import ADRPriceAttack, InjectionContext
from repro.pricing.adr import ElasticConsumer
from repro.pricing.billing import neighbour_loss, perceived_benefit
from repro.pricing.market import default_market
from repro.timeseries.seasonal import SLOTS_PER_DAY, SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def market_rtp(paper_dataset):
    """Clear a market against the population's aggregate daily profile."""
    market = default_market(peak_demand_kw=60.0)
    # Aggregate baseline demand per 2-slot interval, repeating daily.
    total = sum(
        paper_dataset.train_matrix(cid).mean(axis=0)
        for cid in paper_dataset.consumers()
    )
    daily = total[:SLOTS_PER_DAY]
    profile = daily.reshape(-1, 2).mean(axis=1)  # one clearing per hour
    week_profile = np.tile(profile, 7 * (paper_dataset.n_weeks + 1))
    return market.simulate_prices(week_profile, update_period=2)


class TestMarketDriven4B:
    def test_market_prices_track_demand(self, market_rtp):
        prices = market_rtp.price_vector(SLOTS_PER_WEEK)
        # Variable prices with a daily rhythm.
        assert prices.std() > 0
        day1 = prices[:SLOTS_PER_DAY]
        day2 = prices[SLOTS_PER_DAY : 2 * SLOTS_PER_DAY]
        assert np.array_equal(day1, day2)

    def test_4b_attack_on_market_prices(self, paper_dataset, market_rtp):
        cid = paper_dataset.consumers_by_size()[0]
        train = paper_dataset.train_matrix(cid)
        baseline = paper_dataset.test_matrix(cid)[0]
        attack = ADRPriceAttack(
            pricing=market_rtp,
            consumer=ElasticConsumer(elasticity=-0.5, reference_price=0.2),
            price_multiplier=1.6,
        )
        context = InjectionContext(
            train_matrix=train,
            actual_week=baseline,
            band_lower=np.zeros(SLOTS_PER_WEEK),
            band_upper=np.full(SLOTS_PER_WEEK, np.inf),
        )
        vector = attack.inject(context, np.random.default_rng(5))
        prices = market_rtp.price_vector(SLOTS_PER_WEEK)
        loss = neighbour_loss(vector.actual, vector.reported, prices)
        illusion = perceived_benefit(
            vector.reported, prices, attack.compromised_prices()
        )
        assert loss > 0
        assert illusion > 0
        # 4B's defining inequalities hold at every slot.
        assert np.all(vector.actual < vector.reported)
