"""The cold-start poisoned-baseline demonstration, framework level.

The end-to-end claim behind ``repro.integrity``, proven on pinned data:

1. a boiling-frog ramp that reaches its theft floor *before* the first
   training leaves floor-level consumption in-distribution — the
   resulting (poisoned) detector partially unlearns the theft;
2. the drift sentinel convicts exactly the ramp's tail, so a detector
   fitted on the screened prefix keeps catching every floor week;
3. the sentinel stays silent on every honest consumer.
"""

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.integrity import DriftSentinel, IntegrityConfig

from tests.integrity.conftest import (
    EXPECTED_SUSPECTS,
    FLOOR_WEEKS,
    TRAIN_AT,
    honest_weeks,
    rampled_weeks,
)

CFG = IntegrityConfig(sigma_floor_frac=0.03)


def _fit(weeks, indices):
    detector = KLDDetector(significance=0.05)
    detector.fit(np.stack([weeks[i] for i in indices]))
    return detector


@pytest.mark.parametrize("seed", [11, 23])
class TestColdStartPoisoning:
    def test_sentinel_convicts_exactly_the_ramp_tail(self, seed):
        weeks = rampled_weeks(seed)
        result = DriftSentinel(CFG).screen(
            np.stack(weeks[:TRAIN_AT]), range(TRAIN_AT)
        )
        assert [v.week for v in result.suspects] == EXPECTED_SUSPECTS
        assert result.kept_weeks == tuple(
            w for w in range(TRAIN_AT) if w not in EXPECTED_SUSPECTS
        )

    def test_sentinel_is_silent_on_honest_consumers(self, seed):
        weeks = honest_weeks((seed, 1000))
        result = DriftSentinel(CFG).screen(np.stack(weeks), range(len(weeks)))
        assert result.suspects == ()

    def test_poisoned_model_partially_unlearns_the_theft(self, seed):
        weeks = rampled_weeks(seed)
        poisoned = _fit(weeks, range(TRAIN_AT))
        flagged = [
            w for w in FLOOR_WEEKS if poisoned.score_week(weeks[w]).flagged
        ]
        # The floor level entered the training distribution, so the
        # poisoned detector misses a material share of pure theft weeks.
        assert len(FLOOR_WEEKS) - len(flagged) >= 3

    def test_screened_model_catches_every_floor_week(self, seed):
        weeks = rampled_weeks(seed)
        kept = DriftSentinel(CFG).screen(
            np.stack(weeks[:TRAIN_AT]), range(TRAIN_AT)
        ).kept_weeks
        screened = _fit(weeks, kept)
        for week in FLOOR_WEEKS:
            assert screened.score_week(weeks[week]).flagged

    def test_poisoning_inflates_the_threshold(self, seed):
        weeks = rampled_weeks(seed)
        poisoned = _fit(weeks, range(TRAIN_AT))
        kept = DriftSentinel(CFG).screen(
            np.stack(weeks[:TRAIN_AT]), range(TRAIN_AT)
        ).kept_weeks
        screened = _fit(weeks, kept)
        probe = weeks[FLOOR_WEEKS[0]]
        assert (
            poisoned.score_week(probe).threshold
            > screened.score_week(probe).threshold
        )
