"""Unit tests for the versioned model registry."""

import copy
import json

import numpy as np
import pytest

from repro.core.framework import FDetaFramework
from repro.core.kld import KLDDetector
from repro.errors import ConfigurationError, DataError
from repro.integrity import CanaryReport, ModelRegistry
from repro.integrity.registry import _framework_state, state_fingerprint

from tests.integrity.conftest import honest_weeks


def _factory():
    return KLDDetector(significance=0.05)


def _framework(seed=71, n=2, weeks=10):
    framework = FDetaFramework(detector_factory=_factory)
    framework.train(
        {
            f"c{i:02d}": np.stack(honest_weeks((seed, i), weeks))
            for i in range(n)
        }
    )
    return framework


def _passing_canary():
    return CanaryReport(total=4, detected=4, floor=0.7, misses=())


def _failing_canary():
    return CanaryReport(
        total=4, detected=1, floor=0.7, misses=(("c00", "x"),) * 3
    )


LINEAGE = {"c00": (0, 1, 2, 3), "c01": (0, 1, 3, 4)}


class TestLifecycle:
    def test_submit_promote_supersede(self):
        registry = ModelRegistry()
        v1 = registry.submit(_framework(1), LINEAGE, week=8, cycle=100)
        assert v1.version == 1
        assert v1.status == "candidate"
        assert v1.parent is None
        assert registry.active_version is None
        registry.promote(1, _passing_canary())
        assert registry.active_version == 1
        v2 = registry.submit(_framework(2), LINEAGE, week=12, cycle=200)
        assert v2.parent == 1
        registry.promote(2, _passing_canary())
        assert registry.version(1).status == "superseded"
        assert registry.version(1).ever_promoted
        assert registry.active_version == 2

    def test_reject_leaves_active_untouched(self):
        registry = ModelRegistry()
        registry.submit(_framework(1), LINEAGE, week=8, cycle=100)
        registry.promote(1, _passing_canary())
        registry.submit(_framework(2), LINEAGE, week=12, cycle=200)
        registry.reject(2, _failing_canary())
        assert registry.active_version == 1
        assert registry.version(2).status == "rejected"
        assert not registry.version(2).ever_promoted

    def test_rejected_candidate_is_not_a_restore_point(self):
        registry = ModelRegistry()
        registry.submit(_framework(1), LINEAGE, week=8, cycle=100)
        registry.reject(1, _failing_canary())
        with pytest.raises(ConfigurationError):
            registry.rollback(1, week=9, cycle=110)

    def test_promote_rejected_raises(self):
        registry = ModelRegistry()
        registry.submit(_framework(1), LINEAGE, week=8, cycle=100)
        registry.reject(1, _failing_canary())
        with pytest.raises(ConfigurationError):
            registry.promote(1)

    def test_unknown_version_raises(self):
        with pytest.raises(DataError):
            ModelRegistry().version(7)

    def test_rollback_restores_and_records(self):
        registry = ModelRegistry()
        for seed, week in ((1, 8), (2, 12)):
            registry.submit(_framework(seed), LINEAGE, week=week, cycle=week)
            registry.promote(registry.versions()[-1].version)
        registry.rollback(1, week=13, cycle=300)
        assert registry.active_version == 1
        assert registry.version(2).status == "rolled_back"
        assert registry.last_event.kind == "rolled_back"
        assert registry.last_event.detail == "from v2"


class TestLineage:
    def test_tainted_by_walks_every_consuming_version(self):
        registry = ModelRegistry()
        registry.submit(_framework(1), LINEAGE, week=8, cycle=100)
        registry.submit(
            _framework(2), {"c00": (0, 1, 2), "c01": (0, 1)}, week=12, cycle=200
        )
        assert registry.tainted_by("c00", 3) == (1,)
        assert registry.tainted_by("c00", 1) == (1, 2)
        assert registry.tainted_by("c01", 4) == (1,)
        assert registry.tainted_by("c00", 99) == ()
        assert registry.tainted_by("ghost", 0) == ()

    def test_newest_clean_restore_point(self):
        registry = ModelRegistry()
        for seed in (1, 2, 3):
            registry.submit(_framework(seed), LINEAGE, week=seed, cycle=seed)
            registry.promote(registry.versions()[-1].version)
        assert registry.newest_clean_restore_point({3}) == 2
        assert registry.newest_clean_restore_point({2, 3}) == 1
        assert registry.newest_clean_restore_point({1, 2, 3}) is None


class TestStateIdentity:
    def test_fingerprint_is_stable_and_content_sensitive(self):
        framework = _framework(5)
        state = _framework_state(framework)
        assert state_fingerprint(state) == state_fingerprint(
            _framework_state(framework)
        )
        other = _framework_state(_framework(6))
        assert state_fingerprint(state) != state_fingerprint(other)

    def test_build_framework_is_independent_of_the_stored_state(self):
        registry = ModelRegistry()
        registry.submit(_framework(5), LINEAGE, week=8, cycle=100)
        registry.promote(1)
        before = registry.version(1).fingerprint
        built = registry.build_framework(1, _factory)
        # Mutating the materialised copy must not disturb the registry.
        built._detectors.clear()
        built._mean_distributions.clear()
        assert registry.version(1).fingerprint == before
        rebuilt = registry.build_framework(1, _factory)
        assert state_fingerprint(_framework_state(rebuilt)) == before

    def test_submit_deep_copies_the_framework(self):
        framework = _framework(5)
        registry = ModelRegistry()
        registry.submit(framework, LINEAGE, week=8, cycle=100)
        before = registry.version(1).fingerprint
        framework._detectors.clear()
        assert registry.version(1).fingerprint == before


class TestExport:
    def test_report_is_json_able_and_omits_weights(self):
        registry = ModelRegistry()
        registry.submit(_framework(1), LINEAGE, week=8, cycle=100)
        registry.promote(1, _passing_canary())
        payload = json.loads(json.dumps(registry.report()))
        assert payload["active_version"] == 1
        (version,) = payload["versions"]
        assert version["lineage"] == {
            cid: list(weeks) for cid, weeks in LINEAGE.items()
        }
        assert version["canary"]["passed"] is True
        assert "state" not in version
        assert [e["kind"] for e in payload["events"]] == [
            "submitted",
            "promoted",
        ]

    def test_write_report(self, tmp_path):
        registry = ModelRegistry()
        registry.submit(_framework(1), LINEAGE, week=8, cycle=100)
        path = tmp_path / "lineage.json"
        registry.write_report(path)
        assert json.loads(path.read_text())["versions"]
