"""Direct tests of the canary promotion gate."""

import numpy as np
import pytest

from repro.core.framework import FDetaFramework
from repro.core.kld import KLDDetector
from repro.integrity import CanaryGate, IntegrityConfig

from tests.integrity.conftest import honest_weeks

CFG = IntegrityConfig(sigma_floor_frac=0.03)


def _framework(train_weeks_by_cid):
    framework = FDetaFramework(
        detector_factory=lambda: KLDDetector(significance=0.05)
    )
    framework.train(
        {cid: np.stack(weeks) for cid, weeks in train_weeks_by_cid.items()}
    )
    return framework


@pytest.fixture(scope="module")
def honest_by_cid():
    return {f"c{i:02d}": honest_weeks((71, i), 12) for i in range(3)}


@pytest.fixture(scope="module")
def anchors(honest_by_cid):
    return {cid: weeks[0] for cid, weeks in honest_by_cid.items()}


class TestVerdicts:
    def test_honest_model_passes(self, honest_by_cid, anchors):
        report = CanaryGate(CFG).evaluate(_framework(honest_by_cid), anchors)
        assert report.passed
        assert report.rate == 1.0
        assert report.misses == ()
        assert report.clean_failures == ()
        assert report.total == len(anchors) * len(CFG.canary_factors)

    def test_drift_poisoned_model_fails_the_clean_reference_check(
        self, honest_by_cid, anchors
    ):
        # A baseline that converged on a deep theft ramp: trained on
        # 0.4x consumption.  The anchored honest week now looks like a
        # 2.5x inflation — scored at many multiples of threshold.
        poisoned = _framework(
            {
                cid: [week * 0.4 for week in weeks]
                for cid, weeks in honest_by_cid.items()
            }
        )
        report = CanaryGate(CFG).evaluate(poisoned, anchors)
        assert not report.passed
        assert set(report.clean_failures) == set(anchors)

    def test_floor_arithmetic(self, honest_by_cid, anchors):
        gate = CanaryGate(
            IntegrityConfig(sigma_floor_frac=0.03, canary_floor=1.0)
        )
        report = gate.evaluate(_framework(honest_by_cid), anchors)
        assert report.passed is (report.detected == report.total)

    def test_report_is_json_able(self, honest_by_cid, anchors):
        import json

        report = CanaryGate(CFG).evaluate(_framework(honest_by_cid), anchors)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["passed"] is True
        assert payload["total"] == report.total


class TestMechanics:
    def test_evaluation_is_deterministic(self, honest_by_cid, anchors):
        framework = _framework(honest_by_cid)
        a = CanaryGate(CFG).evaluate(framework, anchors, seed=3)
        b = CanaryGate(CFG).evaluate(framework, anchors, seed=3)
        assert a == b

    def test_canary_sample_bounds_the_roster(self, honest_by_cid, anchors):
        gate = CanaryGate(
            IntegrityConfig(sigma_floor_frac=0.03, canary_sample=2)
        )
        report = gate.evaluate(_framework(honest_by_cid), anchors)
        assert report.total == 2 * len(CFG.canary_factors)

    def test_consumers_without_detectors_are_skipped(
        self, honest_by_cid, anchors
    ):
        framework = _framework(honest_by_cid)
        extended = dict(anchors)
        extended["ghost"] = anchors["c00"]
        report = CanaryGate(CFG).evaluate(framework, extended)
        assert report.total == len(anchors) * len(CFG.canary_factors)

    def test_empty_roster_passes_vacuously(self, honest_by_cid):
        report = CanaryGate(CFG).evaluate(_framework(honest_by_cid), {})
        assert report.total == 0
        assert report.rate == 1.0
        assert report.passed
