"""Service-level cold-start poisoning: seed pipeline vs integrity mode.

Same population, same readings, three services:

* the **seed pipeline** (no integrity) trains its first model on a
  corpus that silently includes the attacker's ramp — and then largely
  fails to flag the attacker's floor-level theft;
* the **integrity service** convicts the ramp tail before it trains,
  quarantines the weeks as ``POISON_SUSPECT`` evidence, promotes a
  model whose recorded lineage is exactly the clean prefix, and flags
  every theft week;
* a service with **deliberately blinded sentinels** shows the canary
  gate as the independent second line: every poisoned candidate is
  rejected and nothing is ever promoted.
"""

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.integrity import IntegrityConfig
from repro.quarantine.firewall import ReadingFirewall
from repro.quarantine.store import QuarantineReason
from repro.resilience import ResilienceConfig

from tests.integrity.conftest import (
    EXPECTED_SUSPECTS,
    FLOOR_WEEKS,
    TOTAL_WEEKS,
    TRAIN_AT,
    build_population,
    feed_week,
)

SEED = 11
ATTACKER = "c00"


def _run(service, series):
    alerts = []
    for week in range(TOTAL_WEEKS):
        report = feed_week(service, series, week)
        if report is not None:
            alerts.extend(
                (alert.week_index, alert.consumer_id)
                for alert in report.alerts
            )
    return alerts


def _attacker_weeks(alerts):
    return sorted(week for week, cid in alerts if cid == ATTACKER)


@pytest.fixture(scope="module")
def population():
    return build_population(SEED)


@pytest.fixture(scope="module")
def seed_alerts(population):
    service = TheftMonitoringService(
        lambda: KLDDetector(significance=0.05),
        min_training_weeks=TRAIN_AT,
        retrain_every_weeks=8,
    )
    return _run(service, population)


@pytest.fixture(scope="module")
def integrity_run(population):
    firewall = ReadingFirewall()
    service = TheftMonitoringService(
        lambda: KLDDetector(significance=0.05),
        min_training_weeks=TRAIN_AT,
        retrain_every_weeks=8,
        integrity=IntegrityConfig(sigma_floor_frac=0.03),
        resilience=ResilienceConfig(),
        firewall=firewall,
    )
    alerts = _run(service, population)
    return service, alerts


class TestSeedPipelineIsPoisoned:
    def test_ramp_poisons_the_baseline_and_theft_goes_unflagged(
        self, seed_alerts
    ):
        # The ramp reached its floor before the first training, so the
        # theft level is in-distribution: the seed pipeline misses
        # nearly every pure-theft week.
        flagged = _attacker_weeks(seed_alerts)
        assert len(flagged) <= 2, (
            "expected the poisoned seed pipeline to miss the attacker, "
            f"but it flagged weeks {flagged}"
        )


class TestIntegrityDefense:
    def test_attacker_flagged_every_post_training_week(self, integrity_run):
        _, alerts = integrity_run
        assert _attacker_weeks(alerts) == FLOOR_WEEKS

    def test_ramp_tail_recorded_as_suspect_weeks(self, integrity_run):
        service, _ = integrity_run
        assert sorted(service._suspect_weeks[ATTACKER]) == EXPECTED_SUSPECTS
        counter = service.metrics.counter(
            "fdeta_integrity_suspect_weeks_total", ""
        )
        assert counter.value() == len(EXPECTED_SUSPECTS)

    def test_suspect_weeks_land_in_quarantine_evidence(self, integrity_run):
        service, _ = integrity_run
        records = [
            record
            for record in service.firewall.store.for_consumer(ATTACKER)
            if record.reason is QuarantineReason.POISON_SUSPECT
        ]
        assert sorted(r.declared_slot for r in records) == EXPECTED_SUSPECTS
        assert all(r.detail for r in records)

    def test_promoted_lineage_is_the_clean_prefix(self, integrity_run):
        service, _ = integrity_run
        first = service.model_registry.version(1)
        assert first.ever_promoted
        assert first.lineage[ATTACKER] == tuple(
            w for w in range(TRAIN_AT) if w not in EXPECTED_SUSPECTS
        )
        # The retraining at week 24 promoted a successor.
        assert service.model_version() == 2

    def test_canary_reference_is_anchored_on_the_first_training(
        self, integrity_run
    ):
        service, _ = integrity_run
        anchor = service._canary_reference[ATTACKER]
        matrix = service.store.week_matrix(ATTACKER)
        assert np.array_equal(anchor, matrix[0])

    def test_promotion_metrics_and_events(self, integrity_run):
        service, _ = integrity_run
        assert (
            service.metrics.counter("fdeta_model_promotions_total", "").value()
            == 2
        )
        assert (
            service.metrics.counter(
                "fdeta_integrity_canary_runs_total", "", labels=("outcome",)
            ).value(outcome="pass")
            == 2
        )
        assert (
            service.metrics.gauge("fdeta_model_active_version", "").value()
            == 2.0
        )
        kinds = [event.kind for event in service.model_registry.events]
        assert kinds.count("promoted") == 2
        assert "rejected" not in kinds


class TestCanaryGateAsSecondLine:
    def test_blinded_sentinels_still_never_promote_a_poisoned_model(
        self, population
    ):
        # Sentinels disabled outright: the candidate trains on the full
        # poisoned corpus.  The canary gate must then catch what the
        # sentinel missed — a model that no longer flags a 0.7-scaling
        # of the anchored honest week — and refuse every promotion.
        service = TheftMonitoringService(
            lambda: KLDDetector(significance=0.05),
            min_training_weeks=TRAIN_AT,
            retrain_every_weeks=8,
            integrity=IntegrityConfig(
                cusum_h=1e9,
                psi_threshold=1e9,
                canary_factors=(0.0, 0.5, 0.7, 1.5),
                canary_floor=0.95,
            ),
        )
        _run(service, population)
        assert not service.is_trained
        assert service.model_version() is None
        versions = service.model_registry.versions()
        assert versions, "candidates must still have been submitted"
        assert all(mv.status == "rejected" for mv in versions)
        assert all(not mv.ever_promoted for mv in versions)
        assert all(
            mv.canary is not None and mv.canary.rate < 0.95
            for mv in versions
        )
        fails = service.metrics.counter(
            "fdeta_integrity_canary_runs_total", "", labels=("outcome",)
        ).value(outcome="fail")
        assert fails == len(versions)
