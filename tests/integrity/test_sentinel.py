"""Unit tests for the drift sentinels and robust-fitting helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.integrity import DriftSentinel, IntegrityConfig, winsorize_matrix

from tests.integrity.conftest import honest_week, honest_weeks

CFG = IntegrityConfig(sigma_floor_frac=0.03)


def _screen(weeks, config=CFG):
    return DriftSentinel(config).screen(np.stack(weeks), range(len(weeks)))


class TestCleanData:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_stationary_weeks_are_never_suspect(self, seed):
        result = _screen(honest_weeks(seed, 24))
        assert result.suspects == ()
        assert result.kept_weeks == tuple(range(24))

    def test_benign_level_wobble_stays_quiet(self):
        # Weather weeks: +-10% whole-week multipliers, no persistence.
        rng = np.random.default_rng(7)
        weeks = [
            honest_week(rng) * rng.uniform(0.9, 1.1) for _ in range(20)
        ]
        assert _screen(weeks).suspects == ()

    def test_short_history_is_kept_wholesale(self):
        weeks = honest_weeks(1, CFG.reference_weeks)
        result = _screen(weeks)
        assert result.kept_weeks == tuple(range(len(weeks)))
        assert result.verdicts == ()


class TestLevelSentinel:
    def test_downward_ramp_is_caught_with_monotone_tail(self):
        rng = np.random.default_rng(5)
        weeks = [honest_week(rng) for _ in range(10)]
        weeks += [honest_week(rng) * max(0.7, 0.88**k) for k in range(1, 11)]
        result = _screen(weeks)
        suspect_weeks = [v.week for v in result.suspects]
        assert suspect_weeks, "a persistent downward ramp must be caught"
        # Once the CUSUM crosses its decision interval it never resets:
        # the suspect set is a contiguous tail of the ramp.
        first = suspect_weeks[0]
        assert suspect_weeks == list(range(first, 20))
        assert first < 15, "the ramp must be caught while still ramping"
        assert any(
            "downward-drift" in reason
            for v in result.suspects
            for reason in v.reasons
        )

    def test_upward_inflation_is_caught(self):
        rng = np.random.default_rng(9)
        weeks = [honest_week(rng) for _ in range(10)]
        weeks += [honest_week(rng) * 1.12**k for k in range(1, 9)]
        result = _screen(weeks)
        assert result.suspects
        assert any(
            "upward-drift" in reason
            for v in result.suspects
            for reason in v.reasons
        )

    def test_all_zero_week_is_suspect(self):
        weeks = honest_weeks(11, 12)
        weeks.append(np.zeros_like(weeks[0]))
        result = _screen(weeks)
        assert 12 in [v.week for v in result.suspects]


class TestShapeSentinel:
    def test_profile_rewrite_at_constant_mean_is_caught(self):
        # A load-profile rewrite that preserves the weekly mean exactly:
        # a flatline reporting the week's average in every slot.  Total
        # consumption is untouched (the level sentinel is blind by
        # design), but the slot distribution collapses onto one bin.
        weeks = honest_weeks(13, 16)
        original_mean = float(weeks[12].mean())
        weeks[12] = np.full_like(weeks[12], original_mean)
        result = _screen(weeks)
        verdict = {v.week: v for v in result.verdicts}[12]
        assert verdict.suspect
        assert any("PSI" in reason for reason in verdict.reasons)
        assert float(weeks[12].mean()) == pytest.approx(original_mean)

    def test_psi_is_blind_to_pure_scaling(self):
        # Mean-normalisation makes the shape sentinel deliberately
        # ignore level changes; only the CUSUM should see a scaled week.
        weeks = honest_weeks(19, 16)
        weeks[12] = weeks[12] * 0.8
        result = _screen(weeks, IntegrityConfig(cusum_h=1e9))
        verdict = {v.week: v for v in result.verdicts}[12]
        assert verdict.psi < CFG.psi_threshold


class TestMechanics:
    def test_screen_is_deterministic(self):
        weeks = honest_weeks(23, 20)
        weeks[14] = weeks[14] * 0.6
        a = _screen(weeks)
        b = _screen(weeks)
        assert a == b

    def test_reference_prefix_is_always_kept(self):
        # Even a matrix that drifts immediately keeps its anchor rows.
        rng = np.random.default_rng(29)
        weeks = [honest_week(rng) * max(0.5, 0.9**k) for k in range(20)]
        result = _screen(weeks)
        for week in range(CFG.reference_weeks):
            assert week in result.kept_weeks

    def test_row_count_mismatch_raises(self):
        weeks = honest_weeks(31, 10)
        with pytest.raises(ValueError):
            DriftSentinel(CFG).screen(np.stack(weeks), range(9))

    def test_suspects_excluded_from_kept(self):
        weeks = honest_weeks(37, 20)
        weeks += [w * 0.6 for w in honest_weeks(38, 4)]
        result = _screen(weeks)
        for verdict in result.suspects:
            assert verdict.week not in result.kept_weeks


class TestWinsorize:
    def test_clips_to_pooled_quantiles(self):
        rng = np.random.default_rng(41)
        matrix = rng.lognormal(0.0, 0.5, size=(8, 336))
        matrix[3, 17] = 1e6  # one poisoned spike
        clipped = winsorize_matrix(matrix, (0.01, 0.99))
        low, high = np.quantile(matrix, (0.01, 0.99))
        assert clipped.shape == matrix.shape
        assert clipped.max() <= high
        assert clipped.min() >= low
        assert clipped[3, 17] == pytest.approx(high)

    def test_identity_inside_the_envelope(self):
        matrix = np.full((4, 336), 2.0)
        assert np.array_equal(winsorize_matrix(matrix, (0.01, 0.99)), matrix)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"psi_threshold": 0.0},
            {"cusum_k": -0.1},
            {"cusum_h": 0.0},
            {"sigma_floor_frac": 0.0},
            {"sigma_floor_frac": 1.0},
            {"reference_weeks": 1},
            {"psi_bins": 1},
            {"winsorize": (0.5, 0.4)},
            {"canary_floor": 1.5},
            {"canary_factors": ()},
            {"canary_factors": (1.0,)},
            {"canary_factors": (-0.5,)},
            {"canary_sample": 0},
            {"canary_clean_margin": 0.5},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            IntegrityConfig(**kwargs)

    def test_defaults_are_valid(self):
        IntegrityConfig()
