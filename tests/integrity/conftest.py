"""Shared builders for the training-integrity suite.

Every test here runs on the same deterministic load shape: a smooth
daily profile with mild multiplicative slot noise.  The poisoning
scenarios layer a boiling-frog ramp on top of it; the parameters below
(start week 8, 12%/week decay to a 0.7 floor, first training at week
16) are the pinned demonstration regime — the ramp reaches its floor
*before* the first training, so floor-level theft is in-distribution
for the poisoned model, which is exactly the cold-start poisoning the
defense exists to stop.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.seasonal import SLOTS_PER_WEEK

#: Pinned ramp regime (validated across seeds: the drift sentinel's
#: suspects are deterministic, honest consumers never trip it).
RAMP_START = 8
RAMP_DECAY = 0.88
RAMP_FLOOR = 0.7
TRAIN_AT = 16
TOTAL_WEEKS = 24

#: Weeks the level sentinel convicts in this regime: the CUSUM crosses
#: its decision interval two weeks into the ramp and, by design, never
#: resets, so every later ramp week stays caught.
EXPECTED_SUSPECTS = list(range(10, 16))

#: The post-training weeks, all at the theft floor.
FLOOR_WEEKS = list(range(TRAIN_AT, TOTAL_WEEKS))


def honest_week(rng: np.random.Generator) -> np.ndarray:
    """One 336-slot week: smooth daily profile, 5% slot noise."""
    profile = 0.4 * (
        1.0 + 0.5 * np.sin(np.linspace(0.0, 2.0 * np.pi, SLOTS_PER_WEEK)) ** 2
    )
    return np.clip(profile * rng.normal(1.0, 0.05, SLOTS_PER_WEEK), 0.0, None)


def ramp_factor(week: int) -> float:
    if week < RAMP_START:
        return 1.0
    return max(RAMP_FLOOR, RAMP_DECAY ** (week - RAMP_START))


def honest_weeks(seed, n_weeks: int = TOTAL_WEEKS) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [honest_week(rng) for _ in range(n_weeks)]


def rampled_weeks(seed, n_weeks: int = TOTAL_WEEKS) -> list[np.ndarray]:
    """An attacker's weeks: honest consumption times the ramp factor."""
    return [w * ramp_factor(k) for k, w in enumerate(honest_weeks(seed, n_weeks))]


def build_population(
    seed: int, n_consumers: int = 4, n_weeks: int = TOTAL_WEEKS
) -> dict[str, np.ndarray]:
    """Per-consumer concatenated series; consumer ``c00`` runs the ramp."""
    series: dict[str, np.ndarray] = {}
    for i in range(n_consumers):
        weeks = honest_weeks((seed, i), n_weeks)
        if i == 0:
            weeks = [w * ramp_factor(k) for k, w in enumerate(weeks)]
        series[f"c{i:02d}"] = np.concatenate(weeks)
    return series


def feed_week(service, series: dict[str, np.ndarray], week: int):
    """Feed one week of slot cycles; returns the boundary report."""
    report = None
    for slot in range(SLOTS_PER_WEEK):
        cycle = {
            cid: float(values[week * SLOTS_PER_WEEK + slot])
            for cid, values in series.items()
        }
        report = service.ingest_cycle(cycle)
    return report
