"""Rollback bit-identity, retroactive excision, and checkpoint proofs.

The headline proof: after a poisoned version is promoted and then
rolled back, every subsequent verdict — scores, thresholds, the next
retraining's weights — is bit-identical to a twin service into which
the poisoned version was never promoted at all.
"""

import numpy as np
import pytest

from repro.core.framework import FDetaFramework
from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.errors import ConfigurationError, DataError
from repro.integrity import IntegrityConfig
from repro.integrity.registry import _framework_state, state_fingerprint
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.timeseries.seasonal import SLOTS_PER_WEEK

from tests.integrity.conftest import build_population, feed_week

CFG = IntegrityConfig(sigma_floor_frac=0.03)


def _factory():
    return KLDDetector(significance=0.05)


def _service(**kwargs):
    defaults = dict(
        detector_factory=_factory,
        min_training_weeks=8,
        retrain_every_weeks=4,
        integrity=CFG,
    )
    defaults.update(kwargs)
    return TheftMonitoringService(**defaults)


def _poisoned_framework(series):
    framework = FDetaFramework(detector_factory=_factory)
    framework.train(
        {
            cid: np.stack(
                [
                    values[k * SLOTS_PER_WEEK : (k + 1) * SLOTS_PER_WEEK] * 0.5
                    for k in range(8)
                ]
            )
            for cid, values in series.items()
        }
    )
    return framework


def _verdicts(report):
    return [
        (a.week_index, a.consumer_id, a.score, a.threshold, a.nature)
        for a in report.alerts
    ]


def _fingerprint(service):
    return state_fingerprint(_framework_state(service._framework))


class TestRollbackBitIdentity:
    def test_rollback_equals_never_promoted(self):
        series = build_population(7, n_consumers=3, n_weeks=18)
        tampered, pristine = _service(), _service()
        for week in range(12):
            feed_week(tampered, series, week)
            feed_week(pristine, series, week)
        assert tampered.model_version() == pristine.model_version() == 2

        # Promote a poisoned framework into the tampered service...
        bad = _poisoned_framework(series)
        candidate = tampered.model_registry.submit(
            bad,
            {cid: tuple(range(8)) for cid in series},
            week=12,
            cycle=tampered._slot_count,
        )
        tampered.model_registry.promote(candidate.version)
        tampered._framework = bad
        assert tampered.model_version() == 3
        assert _fingerprint(tampered) != _fingerprint(pristine)

        # ...then roll it back with one command.
        restored = tampered.rollback_model(2)
        assert restored.version == 2
        assert tampered.model_version() == 2
        assert _fingerprint(tampered) == _fingerprint(pristine)

        # Every subsequent verdict is bit-identical to the twin that
        # never saw the poisoned promotion — through the next
        # retraining included.
        for week in range(12, 18):
            report_t = feed_week(tampered, series, week)
            report_p = feed_week(pristine, series, week)
            assert _verdicts(report_t) == _verdicts(report_p)
        assert _fingerprint(tampered) == _fingerprint(pristine)
        assert (
            tampered.metrics.counter(
                "fdeta_model_rollbacks_total", ""
            ).value()
            == 1
        )

    def test_rollback_requires_integrity_mode(self):
        service = TheftMonitoringService(_factory, min_training_weeks=8)
        with pytest.raises(ConfigurationError):
            service.rollback_model(1)

    def test_rollback_to_unpromoted_version_raises(self):
        series = build_population(7, n_consumers=3, n_weeks=12)
        service = _service()
        for week in range(8):
            feed_week(service, series, week)
        with pytest.raises(DataError):
            service.rollback_model(99)


class TestExcision:
    def test_conviction_retrains_from_the_clean_prefix(self):
        series = build_population(7, n_consumers=3, n_weeks=18)
        service = _service()
        for week in range(12):
            feed_week(service, series, week)
        active = service.model_version()
        lineage = service.model_registry.version(active).lineage["c01"]
        convicted = lineage[2]

        report = service.excise_week("c01", convicted)
        assert convicted in {
            week
            for week in service._quarantined_weeks.get("c01", ())
        }
        assert active in report.tainted_versions
        assert report.retrained
        assert report.active_after == service.model_version()
        assert report.active_after not in report.tainted_versions
        new_lineage = service.model_registry.version(
            report.active_after
        ).lineage["c01"]
        assert convicted not in new_lineage
        assert (
            service.metrics.counter(
                "fdeta_integrity_excisions_total", ""
            ).value()
            == 1
        )

    def test_excising_an_untrained_week_skips_the_retrain(self):
        series = build_population(7, n_consumers=3, n_weeks=12)
        service = _service()
        for week in range(8):
            feed_week(service, series, week)
        report = service.excise_week("c01", 500)
        assert report.tainted_versions == ()
        assert not report.retrained

    def test_unknown_consumer_raises(self):
        series = build_population(7, n_consumers=3, n_weeks=12)
        service = _service()
        for week in range(8):
            feed_week(service, series, week)
        with pytest.raises(DataError):
            service.excise_week("ghost", 2)


class TestCheckpointRoundTrip:
    def test_registry_and_integrity_state_survive_restore(self, tmp_path):
        series = build_population(7, n_consumers=3, n_weeks=12)
        service = _service(training_window_weeks=10)
        for week in range(10):
            feed_week(service, series, week)
        path = tmp_path / "ckpt.bin"
        save_checkpoint(service, path)
        restored = load_checkpoint(path, _factory)

        assert restored.model_version() == service.model_version()
        assert restored.training_window_weeks == 10
        assert restored.integrity == service.integrity
        assert sorted(restored._canary_reference) == sorted(
            service._canary_reference
        )
        for cid, anchor in service._canary_reference.items():
            assert np.array_equal(restored._canary_reference[cid], anchor)
        assert restored._suspect_weeks == service._suspect_weeks
        assert (
            restored.model_registry.report() == service.model_registry.report()
        )
        assert _fingerprint(restored) == _fingerprint(service)

        # The restored service keeps scoring bit-identically.
        report_r = feed_week(restored, series, 10)
        report_s = feed_week(service, series, 10)
        assert _verdicts(report_r) == _verdicts(report_s)

    def test_training_window_is_enforced_after_restore(self, tmp_path):
        series = build_population(7, n_consumers=3, n_weeks=14)
        service = _service(training_window_weeks=8)
        for week in range(12):
            feed_week(service, series, week)
        active = service.model_registry.version(service.model_version())
        for lineage in active.lineage.values():
            assert len(lineage) <= 8
