"""Bounded queue, watermark hysteresis, and the backpressure signal."""

import pytest

from repro.core.online import TheftMonitoringService
from repro.core.kld import KLDDetector
from repro.errors import ConfigurationError, QueueDrainedError
from repro.loadcontrol.config import LoadControlConfig
from repro.loadcontrol.queue import (
    BackpressureSignal,
    BoundedCycleQueue,
    BufferedIngestor,
)
from repro.observability.metrics import MetricsRegistry
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("c1", "c2", "c3")


def _service(loadcontrol=None):
    return TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=2,
        resilience=ResilienceConfig(),
        population=CONSUMERS,
        loadcontrol=loadcontrol,
    )


class TestBoundedCycleQueue:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            BoundedCycleQueue(capacity=0)

    def test_watermarks_validated(self):
        with pytest.raises(ConfigurationError):
            BoundedCycleQueue(capacity=10, high_watermark=0.3, low_watermark=0.8)

    def test_fifo_order(self):
        queue = BoundedCycleQueue(capacity=4)
        for item in ("a", "b", "c"):
            assert queue.offer(item)
        assert [queue.take() for _ in range(3)] == ["a", "b", "c"]

    def test_rejects_when_full_nothing_dropped(self):
        queue = BoundedCycleQueue(capacity=2)
        assert queue.offer(1)
        assert queue.offer(2)
        assert not queue.offer(3)
        assert queue.rejected == 1
        assert queue.offered == 3
        # The two accepted items are intact.
        assert queue.take() == 1
        assert queue.take() == 2

    def test_take_empty_raises(self):
        queue = BoundedCycleQueue(capacity=2)
        with pytest.raises(QueueDrainedError):
            queue.take()

    def test_peak_depth_tracked(self):
        queue = BoundedCycleQueue(capacity=8)
        for i in range(5):
            queue.offer(i)
        for _ in range(5):
            queue.take()
        assert queue.peak_depth == 5
        assert queue.depth == 0

    def test_reconciliation_offered_equals_enqueued_plus_rejected(self):
        queue = BoundedCycleQueue(capacity=3)
        accepted = sum(1 for i in range(10) if queue.offer(i))
        assert queue.offered == 10
        assert accepted + queue.rejected == queue.offered

    def test_metrics_exported(self):
        metrics = MetricsRegistry()
        queue = BoundedCycleQueue(capacity=4, metrics=metrics)
        queue.offer(1)
        totals = metrics.totals()
        assert totals[("fdeta_queue_enqueued_total", ())] == 1
        assert metrics.gauge(
            "fdeta_queue_depth", "Pending cycles in the ingestion queue."
        ).value() == 1


class TestBackpressureHysteresis:
    def _queue(self, signal):
        # capacity 10: engage at depth >= 8, release at depth <= 3.
        return BoundedCycleQueue(
            capacity=10,
            high_watermark=0.8,
            low_watermark=0.3,
            signal=signal,
        )

    def test_engages_at_high_watermark(self):
        signal = BackpressureSignal()
        queue = self._queue(signal)
        for i in range(7):
            queue.offer(i)
        assert not signal.engaged
        queue.offer(7)
        assert signal.engaged

    def test_releases_only_below_low_watermark(self):
        signal = BackpressureSignal()
        queue = self._queue(signal)
        for i in range(8):
            queue.offer(i)
        assert signal.engaged
        # Draining to depth 4 (above low watermark) keeps pressure on:
        # hysteresis prevents flapping around the high mark.
        for _ in range(4):
            queue.take()
        assert signal.engaged
        queue.take()  # depth 3 == low mark -> release
        assert not signal.engaged
        assert signal.transitions == 2

    def test_full_queue_engages_even_without_drain(self):
        signal = BackpressureSignal()
        queue = BoundedCycleQueue(capacity=2, signal=signal)
        queue.offer(1)
        queue.offer(2)
        queue.offer(3)  # rejected
        assert signal.engaged

    def test_tick_counts_consecutive_engaged_cycles(self):
        signal = BackpressureSignal()
        assert signal.tick() == 0
        signal.engage(8, 10)
        assert signal.tick() == 1
        assert signal.tick() == 2
        signal.release(1, 10)
        assert signal.tick() == 0


class TestBufferedIngestor:
    def test_submit_drain_round_trip(self):
        service = _service()
        ingestor = BufferedIngestor(service.ingest_cycle)
        readings = {cid: 1.0 for cid in CONSUMERS}
        assert ingestor.submit(readings)
        assert ingestor.submit(readings)
        reports = ingestor.drain()
        assert reports == []  # no week completed yet
        assert service.cycles_ingested == 2
        assert ingestor.cycles_drained == 2

    def test_signal_attached_to_service(self):
        service = _service()
        ingestor = BufferedIngestor(service.ingest_cycle)
        assert service.backpressure is ingestor.signal

    def test_submit_rejects_when_queue_full(self):
        service = _service()
        config = LoadControlConfig(max_queue=2)
        ingestor = BufferedIngestor(service.ingest_cycle, config=config)
        readings = {cid: 1.0 for cid in CONSUMERS}
        assert ingestor.submit(readings)
        assert ingestor.submit(readings)
        assert not ingestor.submit(readings)
        assert ingestor.signal.engaged
        # Draining everything releases pressure again.
        ingestor.drain()
        assert not ingestor.signal.engaged

    def test_drain_max_cycles(self):
        service = _service()
        ingestor = BufferedIngestor(service.ingest_cycle)
        readings = {cid: 1.0 for cid in CONSUMERS}
        for _ in range(5):
            ingestor.submit(readings)
        ingestor.drain(max_cycles=2)
        assert service.cycles_ingested == 2
        assert ingestor.backlog == 3

    def test_weekly_reports_surface_through_drain(self):
        service = _service()
        ingestor = BufferedIngestor(service.ingest_cycle)
        readings = {cid: 1.0 for cid in CONSUMERS}
        reports = []
        for _ in range(SLOTS_PER_WEEK):
            ingestor.submit(readings)
            reports.extend(ingestor.drain())
        assert len(reports) == 1
        assert reports[0].week_index == 0

    def test_deadline_overruns_counted(self):
        # A fake clock that burns the whole budget inside every stage.
        tick = {"now": 0.0}

        def clock():
            tick["now"] += 10.0
            return tick["now"]

        service = _service()
        config = LoadControlConfig(cycle_deadline_s=1.0)
        ingestor = BufferedIngestor(
            service.ingest_cycle, config=config, clock=clock
        )
        readings = {cid: 1.0 for cid in CONSUMERS}
        ingestor.submit(readings)
        ingestor.drain()
        assert ingestor.deadlines_overrun == 1
