"""Supervised shard fleet: heartbeats, kill/hang/crash healing.

The load-bearing claim: a shard that is hard-killed (or hangs, or
crashes) mid-week is rebuilt from checkpoint + WAL replay and produces
**identical** weekly reports to a fleet that was never disturbed.
"""

import warnings

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.errors import ConfigurationError, SupervisorError, WorkerCrashed
from repro.loadcontrol.queue import BackpressureSignal
from repro.loadcontrol.supervisor import (
    ShardSpec,
    Supervisor,
    make_shards,
    shard_roster,
)
from repro.observability.metrics import MetricsRegistry
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = tuple(f"c{i}" for i in range(1, 7))
WEEKS = 3
THEFT_START = 2 * SLOTS_PER_WEEK  # c1 starts under-reporting in week 2


def _factory():
    return KLDDetector(significance=0.05)


def _service_factory(spec):
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=2,
        resilience=ResilienceConfig(),
        population=spec.consumers,
    )


def _readings(t):
    rng = np.random.default_rng((17, t))
    out = {cid: float(rng.gamma(2.0, 0.5)) for cid in CONSUMERS}
    if t >= THEFT_START:
        out["c1"] *= 0.05
    return out


def _signatures(supervisor):
    """Byte-comparable view of every shard's weekly reports."""
    return {
        shard_id: [
            (
                report.week_index,
                tuple(
                    (a.consumer_id, a.nature, a.score, a.threshold, a.coverage)
                    for a in report.alerts
                ),
                report.balance_failures,
                tuple(sorted(report.coverage.items())),
                report.suppressed,
                report.quarantined,
                report.shed,
            )
            for report in service.reports
        ]
        for shard_id, service in supervisor.services().items()
    }


def _run_fleet(base_dir, chaos=None, metrics=None, worker_factory=None):
    """Run a 2-shard fleet for WEEKS weeks; ``chaos(supervisor, t)`` is
    invoked before every cycle to inject faults."""
    shards = make_shards(CONSUMERS, 2, base_dir)
    with Supervisor(
        shards,
        service_factory=_service_factory,
        detector_factory=_factory,
        worker_factory=worker_factory,
        metrics=metrics,
    ) as supervisor:
        for t in range(WEEKS * SLOTS_PER_WEEK):
            if chaos is not None:
                chaos(supervisor, t)
            supervisor.ingest_cycle(_readings(t))
        return _signatures(supervisor), supervisor.restarts_total


class TestShardRoster:
    def test_split_is_order_insensitive(self):
        with pytest.warns(DeprecationWarning):
            split = shard_roster(("b", "d", "a", "c"), 2)
        with pytest.warns(DeprecationWarning):
            assert split == shard_roster(("a", "b", "c", "d"), 2)
        assert sorted(cid for shard in split for cid in shard) == [
            "a",
            "b",
            "c",
            "d",
        ]

    def test_deprecated_shim_matches_ring(self):
        """shard_roster delegates to the hash ring with the fixed seed."""
        from repro.scaleout import HashRing, balanced_assignments

        names = [f"shard-{i:04d}" for i in range(2)]
        assignment = balanced_assignments(HashRing(names), sorted(CONSUMERS))
        with pytest.warns(DeprecationWarning):
            split = shard_roster(CONSUMERS, 2)
        assert split == tuple(assignment[name] for name in names)

    def test_pinned_30_consumer_fixture_routing(self):
        """Historical fixtures must keep routing identically forever."""
        thirty = tuple(f"m{i:03d}" for i in range(30))
        with pytest.warns(DeprecationWarning):
            split = shard_roster(thirty, 3)
        assert split == (
            (
                "m006", "m007", "m009", "m012", "m014", "m015",
                "m017", "m019", "m024", "m027", "m029",
            ),
            (
                "m001", "m002", "m004", "m010", "m011", "m013",
                "m016", "m018", "m020", "m022", "m023", "m026",
            ),
            ("m000", "m003", "m005", "m008", "m021", "m025", "m028"),
        )

    def test_single_shard_keeps_everyone(self):
        with pytest.warns(DeprecationWarning):
            assert shard_roster(CONSUMERS, 1) == (CONSUMERS,)

    def test_invalid_shard_counts(self):
        with pytest.raises(ConfigurationError), pytest.warns(
            DeprecationWarning
        ):
            shard_roster(CONSUMERS, 0)
        with pytest.raises(ConfigurationError), pytest.warns(
            DeprecationWarning
        ):
            shard_roster(("a", "b"), 3)

    def test_make_shards_layout(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        assert [s.shard_id for s in shards] == [0, 1]
        assert shards[0].consumers == ("c1", "c3", "c4", "c6")
        assert shards[1].consumers == ("c2", "c5")
        assert shards[0].wal_dir.endswith("shard-0000")
        assert shards[1].checkpoint_path.endswith("shard-0001.ckpt")

    def test_make_shards_does_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_shards(CONSUMERS, 2, tmp_path)

    def test_growth_moves_few_consumers(self):
        """The reason for the ring: growth must not reshuffle everyone."""
        from repro.scaleout import (
            HashRing,
            balanced_assignments,
            moved_consumers,
        )

        roster = tuple(f"m{i:03d}" for i in range(120))
        ring = HashRing([f"shard-{i:04d}" for i in range(3)])
        before = balanced_assignments(ring, roster)
        ring.add_shard("shard-0003")
        after = balanced_assignments(ring, roster)
        moved = moved_consumers(before, after)
        # Minimal-movement bound: about n/shards, never almost all.
        assert 0 < len(moved) <= int(len(roster) / 4 * 1.5)


class TestSupervisorValidation:
    def test_needs_shards(self):
        with pytest.raises(ConfigurationError):
            Supervisor([], _service_factory, _factory)

    def test_replay_buffer_must_exceed_hang_tolerance(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        with pytest.raises(ConfigurationError):
            Supervisor(
                shards,
                _service_factory,
                _factory,
                hang_tolerance_cycles=4,
                replay_buffer_cycles=4,
            )

    def test_rejects_overlapping_shards(self, tmp_path):
        shards = [
            ShardSpec(0, ("c1", "c2"), str(tmp_path / "a"), str(tmp_path / "a.ckpt")),
            ShardSpec(1, ("c2", "c3"), str(tmp_path / "b"), str(tmp_path / "b.ckpt")),
        ]
        with pytest.raises(ConfigurationError):
            Supervisor(shards, _service_factory, _factory)

    def test_unknown_shard_queries_raise(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        with Supervisor(shards, _service_factory, _factory) as supervisor:
            with pytest.raises(SupervisorError):
                supervisor.kill(99)
            with pytest.raises(SupervisorError):
                supervisor.service(99)


class TestLifecycleHardening:
    def test_close_is_idempotent(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        supervisor = Supervisor(shards, _service_factory, _factory)
        supervisor.ingest_cycle(_readings(0))
        supervisor.close()
        supervisor.close()  # second close must be a no-op, not a crash
        assert all(h.worker is None for h in supervisor.handles())

    def test_exit_after_close_does_not_raise(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        with Supervisor(shards, _service_factory, _factory) as supervisor:
            supervisor.close()

    def test_partial_build_failure_closes_built_workers(self, tmp_path):
        """A factory blowing up on shard 1 must not leak shard 0's WAL."""
        built = []

        def wrapping_factory(service, wal, spec):
            built.append(wal)
            from repro.durability.recovery import DurableTheftMonitor

            return DurableTheftMonitor(
                service, wal, checkpoint_path=spec.checkpoint_path
            )

        def exploding_factory(spec):
            if spec.shard_id == 1:
                raise RuntimeError("boom while building shard 1")
            return _service_factory(spec)

        shards = make_shards(CONSUMERS, 2, tmp_path)
        with pytest.raises(RuntimeError, match="boom"):
            Supervisor(
                shards,
                exploding_factory,
                _factory,
                worker_factory=wrapping_factory,
            )
        assert len(built) == 1  # shard 0 was built before the failure
        assert all(wal._closed for wal in built)
        # The directory is fully released: a fresh fleet starts cleanly.
        with Supervisor(shards, _service_factory, _factory) as retry:
            retry.ingest_cycle(_readings(0))

    def test_close_survives_worker_close_failure(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        supervisor = Supervisor(shards, _service_factory, _factory)
        handle = supervisor.handles()[0]

        class ExplodingClose:
            def __init__(self, inner):
                self.inner = inner

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def close(self):
                raise OSError("disk pulled mid-close")

        handle.worker = ExplodingClose(handle.worker)
        supervisor.close()  # must swallow the failure, close the rest
        assert all(h.worker is None for h in supervisor.handles())


class TestLockstepDispatch:
    def test_week_boundary_reports_all_shards(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        with Supervisor(shards, _service_factory, _factory) as supervisor:
            for t in range(SLOTS_PER_WEEK):
                reports = supervisor.ingest_cycle(_readings(t))
            assert supervisor.cycle == SLOTS_PER_WEEK
            assert set(reports) == {0, 1}
            assert all(r is not None and r.week_index == 0 for r in reports.values())
            for handle in supervisor.handles():
                assert handle.beats == SLOTS_PER_WEEK
                assert handle.last_cycle == SLOTS_PER_WEEK - 1

    def test_off_boundary_cycles_return_none(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        with Supervisor(shards, _service_factory, _factory) as supervisor:
            reports = supervisor.ingest_cycle(_readings(0))
            assert reports == {0: None, 1: None}


class TestKillHealing:
    def test_killed_shard_recovers_bit_identical_reports(self, tmp_path):
        baseline, baseline_restarts = _run_fleet(tmp_path / "baseline")
        assert baseline_restarts == 0
        # The thief's shard produces a scored week with c1 on top.
        week2 = baseline[0][2]
        scores = dict((cid, score) for cid, _, score, _, _ in week2[1])
        assert scores and max(scores, key=scores.get) == "c1"

        metrics = MetricsRegistry()

        def chaos(supervisor, t):
            if t == THEFT_START + 50:  # mid-week-2, after theft starts
                supervisor.kill(0)

        killed, restarts = _run_fleet(
            tmp_path / "killed", chaos=chaos, metrics=metrics
        )
        assert restarts == 1
        assert metrics.counter(
            "fdeta_supervisor_restarts_total", labels=("reason",)
        ).value(reason="killed") == 1
        assert killed == baseline

    def test_kill_marks_worker_dead_until_next_dispatch(self, tmp_path):
        metrics = MetricsRegistry()
        shards = make_shards(CONSUMERS, 2, tmp_path)
        with Supervisor(
            shards, _service_factory, _factory, metrics=metrics
        ) as supervisor:
            for t in range(10):
                supervisor.ingest_cycle(_readings(t))
            supervisor.kill(0)
            gauge = metrics.gauge(
                "fdeta_supervisor_workers", labels=("state",)
            )
            assert gauge.value(state="dead") == 1
            with pytest.raises(SupervisorError):
                supervisor.service(0)
            supervisor.ingest_cycle(_readings(10))
            assert gauge.value(state="dead") == 0
            # Recovery + replay-buffer redelivery caught the shard up.
            assert supervisor.service(0).cycles_ingested == supervisor.cycle

    def test_backpressure_reattached_after_restart(self, tmp_path):
        shards = make_shards(CONSUMERS, 2, tmp_path)
        signal = BackpressureSignal()
        with Supervisor(shards, _service_factory, _factory) as supervisor:
            supervisor.backpressure = signal
            assert all(
                service.backpressure is signal
                for service in supervisor.services().values()
            )
            supervisor.ingest_cycle(_readings(0))
            supervisor.kill(0)
            supervisor.ingest_cycle(_readings(1))
            assert supervisor.service(0).backpressure is signal


class TestHangHealing:
    def test_hung_shard_restarts_after_tolerance(self, tmp_path):
        metrics = MetricsRegistry()
        shards = make_shards(CONSUMERS, 2, tmp_path)
        with Supervisor(
            shards,
            _service_factory,
            _factory,
            hang_tolerance_cycles=2,
            metrics=metrics,
        ) as supervisor:
            for t in range(10):
                supervisor.ingest_cycle(_readings(t))
            supervisor.hang(0)
            # Within tolerance: no ingestion, no beats, no restart.
            for t in (10, 11):
                reports = supervisor.ingest_cycle(_readings(t))
                assert reports[0] is None
                assert reports[1] is None  # off week boundary
            assert supervisor.handles()[0].beats == 10
            assert supervisor.restarts_total == 0
            assert metrics.gauge(
                "fdeta_supervisor_workers", labels=("state",)
            ).value(state="hung") == 1
            # Past tolerance: restart, redeliver the missed cycles.
            supervisor.ingest_cycle(_readings(12))
            assert supervisor.restarts_total == 1
            assert metrics.counter(
                "fdeta_supervisor_restarts_total", labels=("reason",)
            ).value(reason="hang") == 1
            assert supervisor.service(0).cycles_ingested == supervisor.cycle
            assert supervisor.service(1).cycles_ingested == supervisor.cycle

    def test_hang_heals_to_bit_identical_reports(self, tmp_path):
        baseline, _ = _run_fleet(tmp_path / "baseline")

        def chaos(supervisor, t):
            if t == THEFT_START + 100:
                supervisor.hang(1)

        healed, restarts = _run_fleet(tmp_path / "hung", chaos=chaos)
        assert restarts == 1
        assert healed == baseline


class TestCrashHealing:
    def test_crash_is_retried_same_cycle(self, tmp_path):
        from repro.durability.recovery import DurableTheftMonitor

        crash_at = {THEFT_START + 7}

        def worker_factory(service, wal, spec):
            monitor = DurableTheftMonitor(
                service,
                wal,
                checkpoint_path=spec.checkpoint_path,
                sync_every_cycles=1,
            )
            if spec.shard_id != 0:
                return monitor
            real = monitor.ingest_cycle

            def flaky(reported, snapshot=None, cycle_index=None, **kwargs):
                if cycle_index in crash_at:
                    crash_at.discard(cycle_index)
                    raise WorkerCrashed(f"injected at cycle {cycle_index}")
                return real(
                    reported, snapshot, cycle_index=cycle_index, **kwargs
                )

            monitor.ingest_cycle = flaky
            return monitor

        baseline, _ = _run_fleet(tmp_path / "baseline")
        metrics = MetricsRegistry()
        crashed, restarts = _run_fleet(
            tmp_path / "crashed",
            metrics=metrics,
            worker_factory=worker_factory,
        )
        assert restarts == 1
        assert metrics.counter(
            "fdeta_supervisor_restarts_total", labels=("reason",)
        ).value(reason="crash") == 1
        assert crashed == baseline
