"""Read-storm chaos: 5x overload with exact accounting reconciliation.

A storm must never lose a reading silently: every offered cycle is
either queued or rejected-and-retried, every roster member of every
completed week is scored, suppressed, quarantined, or shed, and the
shed metrics reconcile exactly with the weekly reports.
"""

import numpy as np

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.loadcontrol.config import LoadControlConfig, ShedPolicy
from repro.loadcontrol.queue import BufferedIngestor
from repro.loadcontrol.shedding import ShedTier
from repro.quarantine import FirewallPolicy, ReadingFirewall
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = tuple(f"c{i}" for i in range(1, 9))
WEEKS = 4
OVERLOAD = 5  # cycles offered per drain tick


def _readings(t):
    rng = np.random.default_rng((23, t))
    out = {cid: float(rng.gamma(2.0, 0.5)) for cid in CONSUMERS}
    if t % 31 == 0:
        out["c8"] = 1e6  # absurd spike: firewalled, marks c8 a suspect
    return out


def _run_storm(policy):
    config = LoadControlConfig(
        max_queue=8,
        shed_policy=policy,
        pressure_shed_after=2,
    )
    service = TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=2,
        resilience=ResilienceConfig(),
        population=CONSUMERS,
        firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
        loadcontrol=config,
    )
    ingestor = BufferedIngestor(
        service.ingest_cycle, config=config, metrics=service.metrics
    )
    pending = [_readings(t) for t in range(WEEKS * SLOTS_PER_WEEK)]
    pending.reverse()  # pop() yields cycles in order
    held = None
    while pending or held is not None or ingestor.backlog:
        # Producer side: a 5x burst arrives each tick; a rejected cycle
        # is held and re-offered (never dropped, never reordered).
        for _ in range(OVERLOAD):
            cycle = held if held is not None else (
                pending.pop() if pending else None
            )
            if cycle is None:
                break
            if ingestor.submit(cycle):
                held = None
            else:
                held = cycle
                break
        # Consumer side drains at 1x: sustained 5x pressure.
        ingestor.drain(max_cycles=1)
    return service, ingestor


class TestReadStorm:
    def test_priority_storm_reconciles_exactly(self):
        service, ingestor = _run_storm(ShedPolicy.PRIORITY)
        queue = ingestor.queue
        total_cycles = WEEKS * SLOTS_PER_WEEK

        # Queue ledger: every offer is accounted, nothing lingers.
        accepted = queue.offered - queue.rejected
        assert accepted == queue.taken == total_cycles
        assert queue.rejected > 0  # the storm genuinely overflowed
        assert queue.peak_depth <= queue.capacity == 8
        assert ingestor.backlog == 0
        assert service.cycles_ingested == total_cycles

        # Backpressure engaged during the storm and released after it.
        assert queue.signal.transitions >= 2
        assert not queue.signal.engaged

        # Weekly partition: every roster member of every completed week
        # is exactly one of scored/suppressed (coverage), quarantined,
        # or shed-with-coverage.
        assert len(service.reports) == WEEKS
        for report in service.reports:
            covered = set(report.coverage)
            quarantined = set(report.quarantined)
            assert covered | quarantined == set(CONSUMERS)
            assert not covered & quarantined
            assert set(report.shed) <= covered
            assert set(report.suppressed) <= covered

        # Sustained 5x pressure must actually shed somebody...
        shed_by_week = [len(r.shed) for r in service.reports]
        assert sum(shed_by_week) > 0
        # ...but never the suspect under the PRIORITY policy.
        assert all("c8" not in r.shed for r in service.reports)

        # Metric <-> report reconciliation, tier by tier.
        counter = service.metrics.counter("fdeta_shed_total", labels=("tier",))
        metric_total = sum(
            counter.value(tier=tier.value) for tier in ShedTier
        )
        assert metric_total == sum(shed_by_week)
        assert counter.value(tier=ShedTier.SUSPECT.value) == 0

    def test_uniform_storm_still_reconciles(self):
        service, ingestor = _run_storm(ShedPolicy.UNIFORM)
        assert service.cycles_ingested == WEEKS * SLOTS_PER_WEEK
        assert ingestor.backlog == 0
        counter = service.metrics.counter("fdeta_shed_total", labels=("tier",))
        metric_total = sum(
            counter.value(tier=tier.value) for tier in ShedTier
        )
        assert metric_total == sum(len(r.shed) for r in service.reports)
        for report in service.reports:
            assert set(report.coverage) | set(report.quarantined) == set(
                CONSUMERS
            )

    def test_off_policy_never_sheds_under_storm(self):
        service, ingestor = _run_storm(ShedPolicy.OFF)
        assert service.cycles_ingested == WEEKS * SLOTS_PER_WEEK
        assert all(r.shed == () for r in service.reports)
        counter = service.metrics.counter("fdeta_shed_total", labels=("tier",))
        assert all(counter.value(tier=t.value) == 0 for t in ShedTier)
