"""Deadline accounting with a deterministic fake clock."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.loadcontrol.deadline import STAGE_SECONDS_BUCKETS, Deadline
from repro.observability.events import EventLogger
from repro.observability.metrics import MetricsRegistry


class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _events(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestDeadline:
    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)
        with pytest.raises(ConfigurationError):
            Deadline(-1.0)

    def test_stage_accounting(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        with deadline.stage("firewall"):
            clock.advance(1.0)
        with deadline.stage("scoring"):
            clock.advance(2.0)
        with deadline.stage("scoring"):
            clock.advance(0.5)
        assert deadline.stage_seconds == {"firewall": 1.0, "scoring": 2.5}
        assert deadline.elapsed() == 3.5
        assert deadline.remaining() == 6.5
        assert not deadline.expired
        assert not deadline.overran

    def test_expires_when_budget_spent(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        with deadline.stage("ingest"):
            clock.advance(1.5)
        assert deadline.expired
        assert deadline.overran
        assert deadline.overrun_stages == ["ingest"]

    def test_unlimited_never_expires(self):
        clock = FakeClock()
        deadline = Deadline.unlimited(clock=clock)
        with deadline.stage("scoring"):
            clock.advance(1e9)
        assert not deadline.expired
        assert not deadline.overran
        assert deadline.remaining() == float("inf")
        # Stages are still accounted even without a budget.
        assert deadline.stage_seconds["scoring"] == 1e9

    def test_overrun_event_fires_once(self):
        clock = FakeClock()
        stream = io.StringIO()
        events = EventLogger(stream=stream)
        metrics = MetricsRegistry()
        deadline = Deadline(1.0, clock=clock, metrics=metrics, events=events)
        with deadline.stage("wal_append"):
            clock.advance(2.0)
        with deadline.stage("scoring"):
            clock.advance(1.0)
        overruns = [
            e for e in _events(stream) if e["event"] == "deadline_overrun"
        ]
        assert len(overruns) == 1
        assert overruns[0]["stage"] == "wal_append"
        # Both stages count in the per-stage overrun counter...
        totals = metrics.totals()
        assert totals[("fdeta_deadline_overruns_total", ("wal_append",))] == 1
        assert totals[("fdeta_deadline_overruns_total", ("scoring",))] == 1
        # ...but the magnitude histogram samples only the first overrun.
        assert totals[("fdeta_deadline_overrun_seconds_count", ())] == 1

    def test_stage_seconds_histogram_observed(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        deadline = Deadline(10.0, clock=clock, metrics=metrics)
        with deadline.stage("firewall"):
            clock.advance(0.25)
        histogram = metrics.histogram(
            "fdeta_stage_seconds",
            labels=("stage",),
            buckets=STAGE_SECONDS_BUCKETS,
        )
        assert histogram.count(stage="firewall") == 1
        assert histogram.sum(stage="firewall") == 0.25

    def test_stage_records_even_when_body_raises(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        with pytest.raises(RuntimeError):
            with deadline.stage("scoring"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert deadline.stage_seconds["scoring"] == 1.0
