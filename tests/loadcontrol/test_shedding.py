"""Shed-tier ordering and shed accounting."""

import io
import json

from repro.loadcontrol.config import ShedPolicy
from repro.loadcontrol.shedding import LoadShedder, ShedTier
from repro.observability.events import EventLogger
from repro.observability.metrics import MetricsRegistry

ROSTER = ("c1", "c2", "c3", "c4", "c5")
TIERS = {
    "c1": ShedTier.HEALTHY,
    "c2": ShedTier.SUSPECT,
    "c3": ShedTier.WATCH,
    "c4": ShedTier.HEALTHY,
    "c5": ShedTier.SUSPECT,
}


class TestScoringOrder:
    def test_priority_orders_suspects_first(self):
        shedder = LoadShedder(policy=ShedPolicy.PRIORITY)
        assert shedder.order(ROSTER, TIERS) == ("c2", "c5", "c3", "c1", "c4")

    def test_priority_sort_is_stable_within_tier(self):
        shedder = LoadShedder(policy=ShedPolicy.PRIORITY)
        order = shedder.order(ROSTER, TIERS)
        assert order.index("c2") < order.index("c5")  # roster order kept
        assert order.index("c1") < order.index("c4")

    def test_uniform_and_off_keep_roster_order(self):
        for policy in (ShedPolicy.UNIFORM, ShedPolicy.OFF):
            shedder = LoadShedder(policy=policy)
            assert shedder.order(ROSTER, TIERS) == ROSTER

    def test_unknown_consumer_defaults_to_healthy(self):
        shedder = LoadShedder(policy=ShedPolicy.PRIORITY)
        order = shedder.order(("zz", "c2"), TIERS)
        assert order == ("c2", "zz")


class TestPressureShed:
    def test_off_sheds_nobody(self):
        shedder = LoadShedder(policy=ShedPolicy.OFF)
        assert shedder.pressure_shed(ROSTER, TIERS) == frozenset()

    def test_priority_sheds_exactly_the_healthy_tier(self):
        shedder = LoadShedder(policy=ShedPolicy.PRIORITY)
        order = shedder.order(ROSTER, TIERS)
        assert shedder.pressure_shed(order, TIERS) == {"c1", "c4"}

    def test_uniform_sheds_same_count_from_the_tail(self):
        shedder = LoadShedder(policy=ShedPolicy.UNIFORM)
        shed = shedder.pressure_shed(ROSTER, TIERS)
        # Same volume as the healthy tier, but tier-blind: the tail of
        # roster order goes, even though c5 is a suspect.
        assert shed == {"c4", "c5"}

    def test_all_suspect_roster_sheds_nothing(self):
        tiers = {cid: ShedTier.SUSPECT for cid in ROSTER}
        for policy in (ShedPolicy.PRIORITY, ShedPolicy.UNIFORM):
            shedder = LoadShedder(policy=policy)
            assert shedder.pressure_shed(ROSTER, tiers) == frozenset()


class TestRecord:
    def test_metrics_count_by_tier(self):
        metrics = MetricsRegistry()
        shedder = LoadShedder(policy=ShedPolicy.PRIORITY, metrics=metrics)
        shedder.record(
            {"c1": ShedTier.HEALTHY, "c4": ShedTier.HEALTHY,
             "c3": ShedTier.WATCH},
            week_index=2,
            reason="pressure",
        )
        counter = metrics.counter("fdeta_shed_total", labels=("tier",))
        assert counter.value(tier="healthy") == 2
        assert counter.value(tier="watch") == 1
        assert counter.value(tier="suspect") == 0

    def test_event_carries_reason_and_tier_breakdown(self):
        stream = io.StringIO()
        events = EventLogger(stream=stream)
        shedder = LoadShedder(policy=ShedPolicy.PRIORITY, events=events)
        shedder.record(
            {"c1": ShedTier.HEALTHY}, week_index=7, reason="deadline"
        )
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(records) == 1
        event = records[0]
        assert event["event"] == "consumers_shed"
        assert event["level"] == "warning"
        assert event["week"] == 7
        assert event["reason"] == "deadline"
        assert event["count"] == 1
        assert event["by_tier"] == {"healthy": 1}

    def test_empty_shed_records_nothing(self):
        metrics = MetricsRegistry()
        stream = io.StringIO()
        events = EventLogger(stream=stream)
        shedder = LoadShedder(metrics=metrics, events=events)
        shedder.record({}, week_index=0, reason="pressure")
        assert stream.getvalue() == ""
        assert metrics.totals() == {}
