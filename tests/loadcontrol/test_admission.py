"""Token bucket, AIMD rate control, and the bounded-starvation guarantee."""

import pytest

from repro.errors import ConfigurationError
from repro.loadcontrol.admission import (
    AdmissionController,
    AIMDRate,
    TokenBucket,
)
from repro.loadcontrol.config import LoadControlConfig
from repro.observability.metrics import MetricsRegistry


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(capacity=0, refill_per_cycle=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(capacity=1, refill_per_cycle=0)

    def test_starts_full_and_drains(self):
        bucket = TokenBucket(capacity=3, refill_per_cycle=1)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refill_capped_at_capacity(self):
        bucket = TokenBucket(capacity=2, refill_per_cycle=5)
        bucket.tick()
        assert bucket.tokens == 2

    def test_failed_acquire_has_no_side_effect(self):
        bucket = TokenBucket(capacity=1, refill_per_cycle=1)
        assert bucket.try_acquire()
        before = bucket.tokens
        assert not bucket.try_acquire()
        assert bucket.tokens == before


class TestAIMDRate:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AIMDRate(rate=1, min_rate=2, max_rate=1, increase=1, decrease=0.5)
        with pytest.raises(ConfigurationError):
            AIMDRate(rate=1, min_rate=1, max_rate=2, increase=1, decrease=1.5)

    def test_multiplicative_decrease_additive_increase(self):
        aimd = AIMDRate(
            rate=64, min_rate=1, max_rate=128, increase=4, decrease=0.5
        )
        assert aimd.on_pressure() == 32.0
        assert aimd.on_pressure() == 16.0
        assert aimd.on_clear() == 20.0

    def test_clamped_to_bounds(self):
        aimd = AIMDRate(
            rate=2, min_rate=1, max_rate=4, increase=10, decrease=0.01
        )
        assert aimd.on_pressure() == 1.0  # floor
        assert aimd.on_clear() == 4.0  # ceiling


class TestAdmissionController:
    def _controller(self, **overrides):
        defaults = dict(
            admit_rate=2.0,
            admit_burst=2.0,
            min_admit_rate=1.0,
            max_admit_rate=8.0,
            aimd_increase=1.0,
            aimd_decrease=0.5,
            max_defer_cycles=3,
        )
        defaults.update(overrides)
        return AdmissionController(LoadControlConfig(**defaults))

    def test_admits_within_rate(self):
        controller = self._controller()
        decision = controller.admit(["a", "b"])
        assert decision.admitted == ("a", "b")
        assert decision.deferred == ()

    def test_defers_beyond_burst(self):
        controller = self._controller()
        decision = controller.admit(["a", "b", "c", "d", "e"])
        assert len(decision.admitted) < 5
        assert set(decision.admitted) | set(decision.deferred) == {
            "a", "b", "c", "d", "e",
        }

    def test_pressure_cuts_rate_multiplicatively(self):
        # max_defer_cycles high enough that aging never force-admits here.
        controller = self._controller(
            admit_rate=8.0, admit_burst=8.0, max_defer_cycles=32
        )
        roster = [f"c{i}" for i in range(16)]
        calm = controller.admit(roster)
        controller.admit(roster, pressure=True)
        pressured = controller.admit(roster, pressure=True)
        assert len(pressured.admitted) < len(calm.admitted)
        assert controller.aimd.rate < 8.0

    def test_rate_recovers_additively_after_pressure_clears(self):
        controller = self._controller(admit_rate=8.0, admit_burst=8.0)
        for _ in range(3):
            controller.admit(["x"], pressure=True)
        low = controller.aimd.rate
        controller.admit(["x"], pressure=False)
        assert controller.aimd.rate == low + 1.0

    def test_aging_guarantee_bounds_starvation(self):
        # One token per cycle, three candidates, strict candidate order:
        # the tail consumer would starve forever without aging.
        controller = self._controller(
            admit_rate=1.0, admit_burst=1.0, max_defer_cycles=3
        )
        roster = ["a", "b", "z"]
        admitted_z = []
        for cycle in range(12):
            decision = controller.admit(roster)
            admitted_z.append("z" in decision.admitted)
            assert controller.defer_streak("z") < 3
        assert any(admitted_z), "aging never admitted the tail consumer"

    def test_bypass_counted_and_reported(self):
        controller = self._controller(
            admit_rate=1.0, admit_burst=1.0, max_defer_cycles=2
        )
        controller.admit(["a", "z"])  # z deferred (streak 1)
        decision = controller.admit(["a", "z"])  # z hits the bound
        assert "z" in decision.bypassed
        assert "z" in decision.admitted
        assert controller.bypassed_total == 1

    def test_streak_resets_on_admission(self):
        controller = self._controller(
            admit_rate=1.0, admit_burst=1.0, max_defer_cycles=4
        )
        controller.admit(["a", "z"])
        assert controller.defer_streak("z") == 1
        controller.admit(["z"])  # alone: admitted
        assert controller.defer_streak("z") == 0

    def test_metrics_recorded(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            LoadControlConfig(
                admit_rate=1.0,
                admit_burst=1.0,
                min_admit_rate=1.0,
                max_defer_cycles=8,
            ),
            metrics=metrics,
        )
        controller.admit(["a", "b"])
        totals = metrics.totals()
        assert totals[("fdeta_admission_admitted_total", ())] == 1
        assert totals[("fdeta_admission_rejects_total", ())] == 1

    def test_totals_reconcile(self):
        controller = self._controller(admit_rate=1.0, admit_burst=1.0)
        candidates = ["a", "b", "c"]
        seen = 0
        for _ in range(20):
            decision = controller.admit(candidates)
            seen += len(candidates)
            assert set(decision.admitted).isdisjoint(decision.deferred)
            assert set(decision.bypassed) <= set(decision.admitted)
        assert controller.admitted_total + controller.deferred_total == seen
