"""Unit tests for divergence measures."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.divergence import (
    js_divergence,
    kl_divergence,
    symmetric_kl_divergence,
)


class TestKLDivergence:
    def test_identical_distributions_zero(self):
        p = np.array([0.25, 0.25, 0.25, 0.25])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_known_value_base2(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log2(0.5 / 0.25) + 0.5 * np.log2(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_non_negative(self, rng):
        for _ in range(50):
            p = rng.dirichlet(np.ones(8))
            q = rng.dirichlet(np.ones(8))
            assert kl_divergence(p, q) >= -1e-12

    def test_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_zero_p_bins_contribute_nothing(self):
        p = np.array([0.0, 1.0])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) == pytest.approx(1.0)  # log2(1/0.5)

    def test_zero_q_bin_smoothed_finite(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        value = kl_divergence(p, q)
        assert np.isfinite(value)
        assert value > 5.0  # heavily penalised but finite

    def test_base_e(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        assert kl_divergence(p, q, base=np.e) == pytest.approx(
            kl_divergence(p, q) * np.log(2.0)
        )

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))

    def test_rejects_unnormalised(self):
        with pytest.raises(ConfigurationError):
            kl_divergence(np.array([0.5, 0.6]), np.array([0.5, 0.5]))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            kl_divergence(np.array([-0.5, 1.5]), np.array([0.5, 0.5]))


class TestSymmetricAndJS:
    def test_symmetric_kl_is_symmetric(self, rng):
        p = rng.dirichlet(np.ones(5))
        q = rng.dirichlet(np.ones(5))
        assert symmetric_kl_divergence(p, q) == pytest.approx(
            symmetric_kl_divergence(q, p)
        )

    def test_js_symmetric(self, rng):
        p = rng.dirichlet(np.ones(5))
        q = rng.dirichlet(np.ones(5))
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_js_bounded_by_one_bit(self, rng):
        for _ in range(20):
            p = rng.dirichlet(np.ones(6))
            q = rng.dirichlet(np.ones(6))
            assert 0.0 <= js_divergence(p, q) <= 1.0 + 1e-9

    def test_js_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)
