"""Unit tests for fixed-edge histograms."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.histogram import (
    FixedEdgeHistogram,
    histogram_edges,
    relative_frequencies,
)


class TestHistogramEdges:
    def test_edges_span_data(self):
        edges = histogram_edges(np.array([1.0, 2.0, 5.0]), bins=4)
        assert edges[0] == 1.0
        assert edges[-1] == 5.0
        assert edges.size == 5

    def test_edges_equal_width(self):
        edges = histogram_edges(np.array([0.0, 10.0]), bins=5)
        widths = np.diff(edges)
        assert np.allclose(widths, 2.0)

    def test_constant_data_yields_usable_interval(self):
        edges = histogram_edges(np.full(10, 3.0), bins=3)
        assert edges[0] < 3.0 < edges[-1]

    def test_rejects_zero_bins(self):
        with pytest.raises(ConfigurationError):
            histogram_edges(np.array([1.0, 2.0]), bins=0)

    def test_rejects_empty_data(self):
        with pytest.raises(ConfigurationError):
            histogram_edges(np.array([]), bins=3)

    def test_matrix_input_flattened(self):
        edges = histogram_edges(np.array([[1.0, 2.0], [3.0, 4.0]]), bins=3)
        assert edges[0] == 1.0 and edges[-1] == 4.0


class TestRelativeFrequencies:
    def test_sums_to_one(self, rng):
        values = rng.uniform(0, 10, size=100)
        edges = histogram_edges(values, bins=7)
        probs = relative_frequencies(values, edges)
        assert probs.shape == (7,)
        assert np.isclose(probs.sum(), 1.0)

    def test_out_of_range_values_clipped_not_dropped(self):
        edges = np.array([0.0, 1.0, 2.0])
        probs = relative_frequencies(np.array([-5.0, 0.5, 10.0, 10.0]), edges)
        # -5 lands in the first bin; the two 10s land in the last.
        assert np.isclose(probs[0], 0.5)
        assert np.isclose(probs[1], 0.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            relative_frequencies(np.array([]), np.array([0.0, 1.0]))


class TestFixedEdgeHistogram:
    def test_from_data_bins(self):
        hist = FixedEdgeHistogram.from_data(np.arange(100.0), bins=10)
        assert hist.bins == 10

    def test_probabilities_uniform_data(self):
        hist = FixedEdgeHistogram.from_data(np.arange(1000.0), bins=10)
        probs = hist.probabilities(np.arange(1000.0))
        assert np.allclose(probs, 0.1, atol=0.01)

    def test_same_edges_reused_for_new_data(self):
        train = np.arange(100.0)
        hist = FixedEdgeHistogram.from_data(train, bins=5)
        shifted = hist.probabilities(train + 200.0)  # all above range
        assert np.isclose(shifted[-1], 1.0)

    def test_counts_total(self, rng):
        values = rng.uniform(0, 1, size=50)
        hist = FixedEdgeHistogram.from_data(values, bins=4)
        assert hist.counts(values).sum() == 50

    def test_rejects_non_monotone_edges(self):
        with pytest.raises(ConfigurationError):
            FixedEdgeHistogram(np.array([0.0, 2.0, 1.0]))

    def test_rejects_too_few_edges(self):
        with pytest.raises(ConfigurationError):
            FixedEdgeHistogram(np.array([1.0]))

    def test_frozen_edges_are_copies_of_input_semantics(self):
        edges = np.array([0.0, 1.0, 2.0])
        hist = FixedEdgeHistogram(edges)
        assert hist.bins == 2
        assert np.array_equal(hist.edges, edges)


class TestQuantileEdges:
    def test_equal_mass_bins(self, rng):
        values = rng.lognormal(0, 1, size=10_000)
        hist = FixedEdgeHistogram.from_quantiles(values, bins=8)
        probs = hist.probabilities(values)
        assert np.allclose(probs, 1.0 / 8.0, atol=0.01)

    def test_edges_strictly_increasing_with_ties(self):
        values = np.array([1.0] * 50 + [2.0] * 50)
        hist = FixedEdgeHistogram.from_quantiles(values, bins=5)
        assert np.all(np.diff(hist.edges) > 0)

    def test_constant_data_usable(self):
        hist = FixedEdgeHistogram.from_quantiles(np.full(20, 3.0), bins=4)
        probs = hist.probabilities(np.full(20, 3.0))
        assert np.isclose(probs.sum(), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FixedEdgeHistogram.from_quantiles(np.array([]), bins=3)

    def test_rejects_zero_bins(self, rng):
        with pytest.raises(ConfigurationError):
            FixedEdgeHistogram.from_quantiles(rng.uniform(size=10), bins=0)


class TestNonFiniteHardening:
    """NaN/inf must fail loudly, not poison edges and probabilities."""

    def test_histogram_edges_rejects_nan(self):
        from repro.errors import NonFiniteInputError

        with pytest.raises(NonFiniteInputError):
            histogram_edges(np.array([1.0, np.nan, 2.0]), bins=4)

    def test_histogram_edges_rejects_inf(self):
        from repro.errors import NonFiniteInputError

        with pytest.raises(NonFiniteInputError):
            histogram_edges(np.array([1.0, np.inf]), bins=4)

    def test_relative_frequencies_rejects_nan(self):
        from repro.errors import NonFiniteInputError

        edges = histogram_edges(np.array([0.0, 1.0]), bins=2)
        with pytest.raises(NonFiniteInputError):
            relative_frequencies(np.array([0.5, np.nan]), edges)

    def test_from_quantiles_rejects_nan(self):
        from repro.errors import NonFiniteInputError

        with pytest.raises(NonFiniteInputError):
            FixedEdgeHistogram.from_quantiles(
                np.array([1.0, np.nan, 2.0]), bins=2
            )

    def test_counts_rejects_nan(self):
        from repro.errors import NonFiniteInputError

        hist = FixedEdgeHistogram.from_data(np.array([0.0, 1.0]), bins=2)
        with pytest.raises(NonFiniteInputError):
            hist.counts(np.array([np.nan]))

    def test_error_is_a_data_error(self):
        # Degraded-mode skip handling catches the DataError family.
        from repro.errors import DataError, NonFiniteInputError

        assert issubclass(NonFiniteInputError, DataError)
