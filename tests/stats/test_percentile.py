"""Unit tests for empirical distributions and percentile thresholds."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.percentile import EmpiricalDistribution, percentile


class TestPercentileFunction:
    def test_median(self):
        assert percentile(np.array([1.0, 2.0, 3.0]), 50.0) == 2.0

    def test_extremes(self):
        data = np.array([5.0, 1.0, 9.0])
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 9.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            percentile(np.array([]), 50.0)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ConfigurationError):
            percentile(np.array([1.0]), 150.0)


class TestEmpiricalDistribution:
    def test_samples_sorted_internally(self):
        dist = EmpiricalDistribution(np.array([3.0, 1.0, 2.0]))
        assert np.array_equal(dist.samples, [1.0, 2.0, 3.0])

    def test_upper_tail_threshold_matches_percentile(self, rng):
        samples = rng.normal(size=200)
        dist = EmpiricalDistribution(samples)
        assert dist.upper_tail_threshold(0.05) == pytest.approx(
            np.percentile(samples, 95.0)
        )

    def test_rejects_roughly_alpha_fraction(self, rng):
        samples = rng.normal(size=10_000)
        dist = EmpiricalDistribution(samples)
        fresh = rng.normal(size=10_000)
        rate = np.mean([dist.rejects(v, 0.10) for v in fresh])
        assert rate == pytest.approx(0.10, abs=0.02)

    def test_rejects_above_threshold_only(self):
        dist = EmpiricalDistribution(np.arange(100.0))
        threshold = dist.upper_tail_threshold(0.10)
        assert dist.rejects(threshold + 1.0, 0.10)
        assert not dist.rejects(threshold - 1.0, 0.10)

    def test_cdf_monotone(self, rng):
        dist = EmpiricalDistribution(rng.uniform(size=2000))
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(2.0) == 1.0
        assert dist.cdf(0.5) == pytest.approx(0.5, abs=0.05)

    def test_rejects_empty_samples(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution(np.array([]))

    def test_rejects_nan_samples(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution(np.array([1.0, np.nan]))

    def test_rejects_bad_alpha(self):
        dist = EmpiricalDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            dist.upper_tail_threshold(0.0)
        with pytest.raises(ConfigurationError):
            dist.upper_tail_threshold(1.0)

    def test_size(self):
        assert EmpiricalDistribution(np.arange(7.0)).size == 7
