"""Unit tests for truncated-normal sampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.truncated_normal import TruncatedNormal, sample_truncated_normal


class TestTruncatedNormal:
    def test_samples_within_bounds(self, rng):
        dist = TruncatedNormal(mu=0.0, sigma=1.0, lower=-0.5, upper=2.0)
        samples = dist.sample(5000, rng)
        assert samples.min() >= -0.5
        assert samples.max() <= 2.0

    def test_sample_mean_matches_analytical(self, rng):
        dist = TruncatedNormal(mu=1.0, sigma=0.5, lower=0.0, upper=3.0)
        samples = dist.sample(50_000, rng)
        assert samples.mean() == pytest.approx(dist.mean(), abs=0.01)

    def test_sample_variance_matches_analytical(self, rng):
        dist = TruncatedNormal(mu=1.0, sigma=0.5, lower=0.0, upper=3.0)
        samples = dist.sample(50_000, rng)
        assert samples.var() == pytest.approx(dist.variance(), rel=0.05)

    def test_untruncated_limit_recovers_normal(self, rng):
        dist = TruncatedNormal(mu=2.0, sigma=1.0, lower=-50.0, upper=50.0)
        assert dist.mean() == pytest.approx(2.0, abs=1e-6)
        assert dist.variance() == pytest.approx(1.0, abs=1e-6)

    def test_far_tail_interval_falls_back_to_uniform(self, rng):
        dist = TruncatedNormal(mu=0.0, sigma=0.01, lower=100.0, upper=101.0)
        samples = dist.sample(100, rng)
        assert np.all((samples >= 100.0) & (samples <= 101.0))

    def test_zero_size(self, rng):
        dist = TruncatedNormal(mu=0.0, sigma=1.0, lower=-1.0, upper=1.0)
        assert dist.sample(0, rng).size == 0

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormal(mu=0.0, sigma=0.0, lower=-1.0, upper=1.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormal(mu=0.0, sigma=1.0, lower=1.0, upper=-1.0)

    def test_reproducible_with_same_seed(self):
        dist = TruncatedNormal(mu=0.0, sigma=1.0, lower=-1.0, upper=1.0)
        a = dist.sample(10, np.random.default_rng(1))
        b = dist.sample(10, np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestVectorisedSampling:
    def test_per_element_bounds_respected(self, rng):
        lower = np.linspace(0.0, 5.0, 100)
        upper = lower + np.linspace(0.1, 2.0, 100)
        samples = sample_truncated_normal(2.0, 1.0, lower, upper, rng)
        assert np.all(samples >= lower)
        assert np.all(samples <= upper)

    def test_matches_scalar_distribution_statistics(self, rng):
        lower = np.full(50_000, 0.0)
        upper = np.full(50_000, 3.0)
        samples = sample_truncated_normal(1.0, 0.5, lower, upper, rng)
        expected = TruncatedNormal(mu=1.0, sigma=0.5, lower=0.0, upper=3.0)
        assert samples.mean() == pytest.approx(expected.mean(), abs=0.01)

    def test_degenerate_interval_uniform_fallback(self, rng):
        lower = np.array([100.0, 0.0])
        upper = np.array([100.5, 1.0])
        samples = sample_truncated_normal(0.0, 0.001, lower, upper, rng)
        assert 100.0 <= samples[0] <= 100.5
        assert 0.0 <= samples[1] <= 1.0

    def test_rejects_mismatched_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            sample_truncated_normal(
                0.0, 1.0, np.zeros(3), np.ones(2), rng
            )

    def test_rejects_crossed_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            sample_truncated_normal(
                0.0, 1.0, np.array([1.0]), np.array([0.0]), rng
            )

    def test_rejects_nonpositive_sigma(self, rng):
        with pytest.raises(ConfigurationError):
            sample_truncated_normal(
                0.0, -1.0, np.zeros(2), np.ones(2), rng
            )
