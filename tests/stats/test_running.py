"""Unit tests for Welford running moments."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.running import RunningMoments


class TestRunningMoments:
    def test_empty_defaults(self):
        m = RunningMoments()
        assert m.count == 0
        assert m.mean == 0.0
        assert m.variance == 0.0
        assert m.sample_variance == 0.0

    def test_matches_numpy(self, rng):
        values = rng.normal(5.0, 2.0, size=1000)
        m = RunningMoments()
        m.update_many(values)
        assert m.mean == pytest.approx(values.mean())
        assert m.variance == pytest.approx(values.var())
        assert m.sample_variance == pytest.approx(values.var(ddof=1))
        assert m.std == pytest.approx(values.std())

    def test_single_value(self):
        m = RunningMoments()
        m.update(3.0)
        assert m.mean == 3.0
        assert m.variance == 0.0
        assert m.sample_variance == 0.0

    def test_merge_equals_sequential(self, rng):
        a_values = rng.normal(size=500)
        b_values = rng.normal(3.0, size=300)
        a = RunningMoments()
        a.update_many(a_values)
        b = RunningMoments()
        b.update_many(b_values)
        merged = a.merge(b)
        combined = np.concatenate([a_values, b_values])
        assert merged.count == 800
        assert merged.mean == pytest.approx(combined.mean())
        assert merged.variance == pytest.approx(combined.var())

    def test_merge_with_empty(self, rng):
        a = RunningMoments()
        a.update_many(rng.normal(size=10))
        empty = RunningMoments()
        assert a.merge(empty).mean == pytest.approx(a.mean)
        assert empty.merge(a).count == 10

    def test_rejects_non_finite(self):
        m = RunningMoments()
        with pytest.raises(ConfigurationError):
            m.update(float("nan"))
        with pytest.raises(ConfigurationError):
            m.update(float("inf"))

    def test_numerical_stability_large_offset(self):
        m = RunningMoments()
        base = 1e9
        for v in (base + 1.0, base + 2.0, base + 3.0):
            m.update(v)
        assert m.sample_variance == pytest.approx(1.0)
