"""Reading-integrity firewall: one distinct reason code per class."""

import math

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.errors import ConfigurationError
from repro.observability.events import EventLogger
from repro.observability.metrics import MetricsRegistry
from repro.quarantine import (
    QUARANTINE_METRIC,
    FirewallPolicy,
    MeterReading,
    QuarantineReason,
    ReadingFirewall,
)
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestPolicy:
    def test_ceiling_must_be_positive_finite(self):
        with pytest.raises(ConfigurationError):
            FirewallPolicy(max_reading_kwh=0.0)
        with pytest.raises(ConfigurationError):
            FirewallPolicy(max_reading_kwh=float("inf"))


class TestReasonCodes:
    """Each malformed-reading class lands under its own reason code."""

    def _screen_one(self, raw, cycle=10, policy=None):
        firewall = ReadingFirewall(policy or FirewallPolicy())
        accepted = firewall.screen({"c1": raw}, cycle=cycle)
        return firewall, accepted

    def test_nan_is_non_finite(self):
        firewall, accepted = self._screen_one(float("nan"))
        assert accepted == {}
        (record,) = firewall.store.records
        assert record.reason is QuarantineReason.NON_FINITE

    def test_inf_is_non_finite(self):
        firewall, accepted = self._screen_one(float("inf"))
        assert accepted == {}
        assert firewall.store.counts_by_reason() == {"non_finite": 1}

    def test_unparseable_is_non_finite(self):
        firewall, accepted = self._screen_one("garbage")
        assert accepted == {}
        (record,) = firewall.store.records
        assert record.reason is QuarantineReason.NON_FINITE
        assert math.isnan(record.value)

    def test_negative(self):
        firewall, accepted = self._screen_one(-0.5)
        assert accepted == {}
        assert firewall.store.counts_by_reason() == {"negative": 1}

    def test_out_of_range(self):
        firewall, accepted = self._screen_one(
            7.0, policy=FirewallPolicy(max_reading_kwh=5.0)
        )
        assert accepted == {}
        assert firewall.store.counts_by_reason() == {"out_of_range": 1}

    def test_duplicate_slot(self):
        firewall, accepted = self._screen_one(
            MeterReading(1.0, slot=4), cycle=10
        )
        assert accepted == {}
        assert firewall.store.counts_by_reason() == {"duplicate": 1}

    def test_clock_skew(self):
        firewall, accepted = self._screen_one(
            MeterReading(1.0, slot=15), cycle=10
        )
        assert accepted == {}
        assert firewall.store.counts_by_reason() == {"clock_skew": 1}

    def test_dst_fold(self):
        firewall, accepted = self._screen_one(
            MeterReading(1.0, slot=10, fold=True), cycle=10
        )
        assert accepted == {}
        assert firewall.store.counts_by_reason() == {"dst_fold": 1}

    def test_clean_values_pass(self):
        firewall, accepted = self._screen_one(2.5)
        assert accepted == {"c1": 2.5}
        assert len(firewall.store) == 0

    def test_stamped_current_slot_passes(self):
        firewall, accepted = self._screen_one(
            MeterReading(2.5, slot=10), cycle=10
        )
        assert accepted == {"c1": 2.5}

    def test_value_checks_precede_slot_checks(self):
        # A negative reading with a stale slot is filed as negative:
        # the first failing check in severity order names the reason.
        firewall, _ = self._screen_one(MeterReading(-1.0, slot=3), cycle=10)
        assert firewall.store.counts_by_reason() == {"negative": 1}


class TestInstrumentation:
    def test_metric_labelled_by_reason(self):
        registry = MetricsRegistry()
        firewall = ReadingFirewall(FirewallPolicy(max_reading_kwh=5.0))
        firewall.screen(
            {
                "a": float("nan"),
                "b": -1.0,
                "c": 9.0,
                "d": MeterReading(1.0, slot=1),
                "e": MeterReading(1.0, slot=99),
                "f": MeterReading(1.0, slot=10, fold=True),
                "g": 2.0,
            },
            cycle=10,
            metrics=registry,
        )
        counter = registry.counter(QUARANTINE_METRIC, labels=("reason",))
        for reason in QuarantineReason:
            if reason in (
                QuarantineReason.TOO_LATE,
                QuarantineReason.POISON_SUSPECT,
            ):
                # too_late is routed by the event-time ingestor and
                # poison_suspect by the drift sentinel, not by the
                # per-cycle screen (a screened cycle is on time and a
                # single cycle carries no drift evidence).
                assert counter.value(reason=reason.value) == 0.0
                continue
            assert counter.value(reason=reason.value) == 1.0

    def test_events_logged(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = EventLogger(path=str(path))
        firewall = ReadingFirewall()
        firewall.screen({"a": -1.0}, cycle=0, events=events)
        events.close()
        text = path.read_text()
        assert "reading_quarantined" in text
        assert "negative" in text


class TestServiceIntegration:
    def test_firewall_requires_gap_tolerant_mode(self):
        with pytest.raises(ConfigurationError):
            TheftMonitoringService(
                detector_factory=KLDDetector,
                firewall=ReadingFirewall(),
            )

    def _service(self):
        return TheftMonitoringService(
            detector_factory=lambda: KLDDetector(significance=0.05),
            min_training_weeks=2,
            retrain_every_weeks=4,
            resilience=ResilienceConfig(),
            population=("c1", "c2"),
            firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
        )

    def test_quarantined_reading_becomes_gap(self):
        service = self._service()
        service.ingest_cycle({"c1": float("nan"), "c2": 1.0})
        assert service.store.gap_count("c1") == 1
        assert service.store.gap_count("c2") == 0
        assert len(service.firewall.store) == 1
        counter = service.metrics.counter(
            QUARANTINE_METRIC, labels=("reason",)
        )
        assert counter.value(reason="non_finite") == 1.0

    def test_no_quarantined_value_reaches_detector_fit_or_score(self):
        """The acceptance criterion: detector state never sees rejects."""
        rng = np.random.default_rng(5)
        poison = 1e9  # far beyond the 50 kWh policy ceiling
        service = self._service()
        # 7 weeks: gaps left by quarantined readings are repaired at
        # each week boundary, so by the week-6 retraining c1 has enough
        # clean (repaired) history to get its own detector.
        for t in range(7 * SLOTS_PER_WEEK):
            readings = {
                "c1": float(rng.gamma(2.0, 0.5)),
                "c2": float(rng.gamma(2.0, 0.5)),
            }
            if t % 50 == 0:
                readings["c1"] = poison
            service.ingest_cycle(readings)
        assert service.is_trained
        # The poison value is in quarantine, not in the series ...
        assert all(
            r.value == poison
            for r in service.firewall.store.for_consumer("c1")
        )
        series = service.store.series("c1")
        assert not np.any(series[np.isfinite(series)] > 50.0)
        # ... and the fitted detector's histogram never saw it.
        detector = service._framework.detector_for("c1")
        assert detector.histogram.edges[-1] < poison

    def test_firewall_rides_checkpoints(self, tmp_path):
        service = self._service()
        service.ingest_cycle({"c1": -1.0, "c2": 1.0})
        ckpt = tmp_path / "ckpt.bin"
        service.checkpoint(ckpt)
        restored = TheftMonitoringService.restore(
            ckpt, lambda: KLDDetector(significance=0.05)
        )
        assert restored.firewall is not None
        assert restored.firewall.store.counts_by_reason() == {"negative": 1}
        assert restored.firewall.screened_cycles == 1
