"""Quarantine store: exact counts, bounded evidence, JSON report."""

import json
import math

from repro.quarantine import (
    QuarantinedReading,
    QuarantineReason,
    QuarantineStore,
)


def _reject(cid="c1", reason=QuarantineReason.NEGATIVE, value=-1.0, cycle=0):
    return QuarantinedReading(
        consumer_id=cid, value=value, cycle=cycle, reason=reason
    )


class TestCounts:
    def test_len_and_counts(self):
        store = QuarantineStore()
        store.add(_reject("a", QuarantineReason.NEGATIVE))
        store.add(_reject("a", QuarantineReason.NON_FINITE))
        store.add(_reject("b", QuarantineReason.NEGATIVE))
        assert len(store) == 3
        assert store.counts_by_reason() == {"non_finite": 1, "negative": 2}
        assert store.counts_by_consumer() == {"a": 2, "b": 1}

    def test_for_consumer(self):
        store = QuarantineStore()
        store.add(_reject("a"))
        store.add(_reject("b"))
        assert len(store.for_consumer("a")) == 1
        assert store.for_consumer("missing") == ()

    def test_cap_keeps_counts_exact(self):
        store = QuarantineStore(max_records=2)
        for i in range(5):
            store.add(_reject(cycle=i))
        assert len(store) == 5  # totals exact ...
        assert len(store.records) == 2  # ... evidence bounded
        assert store.records_dropped == 3


class TestReport:
    def test_report_shape(self):
        store = QuarantineStore()
        store.add(_reject("a", QuarantineReason.CLOCK_SKEW, cycle=7))
        report = store.report()
        assert report["total"] == 1
        assert report["by_reason"] == {"clock_skew": 1}
        assert report["records"][0]["cycle"] == 7
        assert report["records"][0]["reason"] == "clock_skew"

    def test_by_consumer_sorted_worst_first(self):
        store = QuarantineStore()
        for _ in range(3):
            store.add(_reject("noisy"))
        store.add(_reject("quiet"))
        assert list(store.report()["by_consumer"]) == ["noisy", "quiet"]

    def test_write_report_handles_nan(self, tmp_path):
        store = QuarantineStore()
        store.add(
            _reject(
                reason=QuarantineReason.NON_FINITE, value=math.nan
            )
        )
        path = tmp_path / "quarantine.json"
        store.write_report(path)
        text = path.read_text()
        assert "non_finite" in text
        # allow_nan=True keeps the raw value; the file must round-trip
        # through a permissive parser.
        parsed = json.loads(text)
        assert parsed["total"] == 1
