"""Tests for the lossy AMI channel (failure injection)."""

import copy
import pickle

import numpy as np
import pytest

from repro.data.preprocessing import interpolate_gaps
from repro.errors import ConfigurationError
from repro.metering.channel import LossyChannel, deliver_series


class TestLossyChannel:
    def test_perfect_channel_delivers_everything(self, rng):
        channel = LossyChannel(drop_rate=0.0, outage_rate=0.0)
        readings = {f"m{i}": float(i) for i in range(20)}
        assert channel.transmit(readings, rng) == readings

    def test_drop_rate_statistics(self, rng):
        channel = LossyChannel(drop_rate=0.2, outage_rate=0.0)
        delivered = 0
        total = 20_000
        for _ in range(total):
            delivered += len(channel.transmit({"m": 1.0}, rng))
        assert delivered / total == pytest.approx(0.8, abs=0.01)

    def test_outage_silences_meter_for_a_burst(self, rng):
        channel = LossyChannel(
            drop_rate=0.0, outage_rate=1.0, outage_mean_cycles=5.0
        )
        # First cycle enters the outage; subsequent cycles stay silent
        # until it expires.
        assert channel.transmit({"m": 1.0}, rng) == {}
        assert channel.in_outage("m")

    def test_outage_eventually_recovers(self, rng):
        channel = LossyChannel(
            drop_rate=0.0, outage_rate=0.0, outage_mean_cycles=3.0
        )
        channel._outages["m"] = 2
        outcomes = [len(channel.transmit({"m": 1.0}, rng)) for _ in range(3)]
        assert outcomes == [0, 0, 1]

    def test_independent_meters(self, rng):
        channel = LossyChannel(drop_rate=0.0, outage_rate=0.0)
        channel._outages["a"] = 5
        delivered = channel.transmit({"a": 1.0, "b": 2.0}, rng)
        assert delivered == {"b": 2.0}

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            LossyChannel(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            LossyChannel(outage_rate=-0.1)
        with pytest.raises(ConfigurationError):
            LossyChannel(outage_mean_cycles=0.5)


class TestChannelLifecycle:
    """Regression tests for reset(), silence() and copy semantics."""

    def test_reset_clears_outages(self, rng):
        channel = LossyChannel(drop_rate=0.0, outage_rate=0.0)
        channel._outages["m"] = 10
        channel.reset()
        assert not channel.in_outage("m")
        assert channel.transmit({"m": 1.0}, rng) == {"m": 1.0}

    def test_silence_forever(self, rng):
        channel = LossyChannel(drop_rate=0.0, outage_rate=0.0)
        channel.silence("m")
        for _ in range(1000):
            assert channel.transmit({"m": 1.0}, rng) == {}
        assert channel.in_outage("m")

    def test_silence_for_n_cycles(self, rng):
        channel = LossyChannel(drop_rate=0.0, outage_rate=0.0)
        channel.silence("m", cycles=3)
        outcomes = [len(channel.transmit({"m": 1.0}, rng)) for _ in range(4)]
        assert outcomes == [0, 0, 0, 1]

    def test_silence_rejects_bad_cycles(self):
        with pytest.raises(ConfigurationError):
            LossyChannel().silence("m", cycles=0)

    def test_deepcopy_forks_outage_state(self, rng):
        """Copies evolve independently — the parallel evaluation path
        deep-copies channels into worker processes mid-outage."""
        channel = LossyChannel(drop_rate=0.0, outage_rate=0.0)
        channel._outages["m"] = 2
        clone = copy.deepcopy(channel)
        # Draining the original's outage must not touch the clone.
        channel.transmit({"m": 1.0}, rng)
        channel.transmit({"m": 1.0}, rng)
        assert not channel.in_outage("m")
        assert clone.in_outage("m")
        assert clone._outages["m"] == 2

    def test_pickle_round_trip_mid_outage(self, rng):
        channel = LossyChannel(drop_rate=0.25, outage_rate=0.0)
        channel.silence("a", cycles=5)
        channel.silence("b")  # permanent (inf) must survive pickling
        revived = pickle.loads(pickle.dumps(channel))
        assert revived.drop_rate == 0.25
        assert revived._outages == channel._outages
        assert revived.in_outage("a") and revived.in_outage("b")

    def test_retransmit_does_not_tick_outage_timers(self, rng):
        channel = LossyChannel(drop_rate=0.0, outage_rate=0.0)
        channel.silence("m", cycles=2)
        # Any number of within-cycle retries leaves the timer untouched.
        for _ in range(50):
            assert channel.retransmit({"m": 1.0}, rng) == {}
        assert channel._outages["m"] == 2

    def test_retransmit_cannot_start_outages(self, rng):
        channel = LossyChannel(drop_rate=0.0, outage_rate=1.0)
        assert channel.retransmit({"m": 1.0}, rng) == {"m": 1.0}
        assert not channel.in_outage("m")

    def test_retransmit_rerolls_drops(self, rng):
        channel = LossyChannel(drop_rate=0.5, outage_rate=0.0)
        recovered = 0
        for _ in range(2000):
            if "m" not in channel.transmit({"m": 1.0}, rng):
                if "m" in channel.retransmit({"m": 1.0}, rng):
                    recovered += 1
        # Roughly drop_rate * (1 - drop_rate) of attempts recover.
        assert recovered / 2000 == pytest.approx(0.25, abs=0.05)


class TestDeliverSeries:
    def test_losses_become_nan(self, rng):
        channel = LossyChannel(drop_rate=0.3, outage_rate=0.0)
        out = deliver_series(np.ones(1000), channel, rng)
        n_missing = int(np.isnan(out).sum())
        assert 200 <= n_missing <= 400

    def test_survivors_unchanged(self, rng):
        series = rng.uniform(0, 2, size=500)
        channel = LossyChannel(drop_rate=0.1, outage_rate=0.0)
        out = deliver_series(series, channel, rng)
        mask = ~np.isnan(out)
        assert np.array_equal(out[mask], series[mask])

    def test_end_to_end_with_preprocessing(self, rng):
        """Failure injection end-to-end: a mildly lossy channel's gaps
        are fully repaired by the preprocessing pipeline."""
        series = rng.uniform(0.5, 1.5, size=2000)
        channel = LossyChannel(drop_rate=0.02, outage_rate=0.0)
        gappy = deliver_series(series, channel, rng)
        assert np.isnan(gappy).any()
        repaired = interpolate_gaps(gappy, max_gap=4)
        assert not np.isnan(repaired).any()
        # Repaired values stay within the series' physical range.
        assert repaired.min() >= series.min() - 1e-9
        assert repaired.max() <= series.max() + 1e-9
