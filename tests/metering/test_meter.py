"""Unit tests for smart meters, tampering, and tamper seals."""

import pytest

from repro.errors import MeteringError
from repro.metering.errors_model import MeasurementErrorModel
from repro.metering.meter import SmartMeter, TamperSeal


def exact_meter(**kwargs):
    return SmartMeter(
        meter_id="m1",
        consumer_id="c1",
        error_model=MeasurementErrorModel.exact(),
        **kwargs,
    )


class TestHonestMeter:
    def test_reports_what_it_measures(self, rng):
        meter = exact_meter()
        assert meter.report(4.2, rng) == 4.2
        assert not meter.is_compromised

    def test_measurement_error_applied(self, rng):
        meter = SmartMeter(meter_id="m1", consumer_id="c1")
        readings = [meter.report(10.0, rng) for _ in range(100)]
        assert any(r != 10.0 for r in readings)
        assert all(abs(r - 10.0) / 10.0 < 0.05 for r in readings)

    def test_rejects_negative_demand(self, rng):
        with pytest.raises(MeteringError):
            exact_meter().report(-1.0, rng)


class TestTampering:
    def test_under_report_halves_reading(self, rng):
        meter = exact_meter()
        meter.compromise(lambda measured: measured * 0.5)
        assert meter.report(8.0, rng) == 4.0
        assert meter.is_compromised

    def test_restore_removes_tamper(self, rng):
        meter = exact_meter()
        meter.compromise(lambda measured: 0.0)
        meter.restore()
        assert meter.report(8.0, rng) == 8.0
        assert not meter.is_compromised

    def test_tamper_function_cannot_report_negative(self, rng):
        meter = exact_meter()
        meter.compromise(lambda measured: measured - 100.0)
        with pytest.raises(MeteringError):
            meter.report(5.0, rng)

    def test_unbypassable_seal_trips(self):
        meter = exact_meter(seal=TamperSeal(bypassable=False))
        with pytest.raises(MeteringError):
            meter.compromise(lambda m: m)
        assert meter.seal.tripped

    def test_bypassable_seal_stays_quiet(self):
        """Penetration-tested reality ([22]): seals can be bypassed."""
        meter = exact_meter()
        meter.compromise(lambda m: m * 0.9)
        assert not meter.seal.tripped

    def test_tamper_sees_measured_not_actual(self, rng):
        # With a tap installed, the tamper function receives the metered
        # (post-tap) flow.
        meter = exact_meter()
        meter.install_upstream_tap(2.0)
        seen = {}
        meter.compromise(lambda m: seen.setdefault("value", m) or m)
        meter.report(5.0, rng)
        assert seen["value"] == pytest.approx(3.0)


class TestMeasure:
    def test_tap_subtracted_before_measurement(self, rng):
        meter = exact_meter()
        meter.install_upstream_tap(4.0)
        assert meter.measure(10.0, rng) == pytest.approx(6.0)

    def test_tap_larger_than_demand_floors_at_zero(self, rng):
        meter = exact_meter()
        meter.install_upstream_tap(10.0)
        assert meter.measure(3.0, rng) == 0.0

    def test_has_tap_flag(self):
        meter = exact_meter()
        assert not meter.has_tap
        meter.install_upstream_tap(1.0)
        assert meter.has_tap
