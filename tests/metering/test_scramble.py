"""ScramblingChannel: delay, duplicate, and burst-batch — never lose."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metering import ScramblingChannel, scramble_series


def _collect(channel, n_slots, per_slot):
    """Push ``per_slot`` readings per slot, return delay per delivery."""
    rng = np.random.default_rng(3)
    delays = []
    for t in range(n_slots):
        channel.push(t, per_slot(t), rng)
        for reading in channel.pop_due(t):
            delays.append(t - reading.slot)
    for reading in channel.drain():
        delays.append(n_slots - reading.slot)
    return delays


class TestValidation:
    def test_rates_bounded(self):
        with pytest.raises(ConfigurationError):
            ScramblingChannel(duplicate_rate=1.5)
        with pytest.raises(ConfigurationError):
            ScramblingChannel(outage_rate=-0.1)

    def test_shape_parameters(self):
        with pytest.raises(ConfigurationError):
            ScramblingChannel(median_delay_slots=-1.0)
        with pytest.raises(ConfigurationError):
            ScramblingChannel(sigma=-0.5)
        with pytest.raises(ConfigurationError):
            ScramblingChannel(max_delay_slots=-1)
        with pytest.raises(ConfigurationError):
            ScramblingChannel(outage_mean_slots=0.5)


class TestDelays:
    def test_no_reading_lost_and_cap_honoured(self):
        channel = ScramblingChannel(
            median_delay_slots=4.0, sigma=1.5, max_delay_slots=10
        )
        delays = _collect(
            channel, 200, lambda t: {"a": 1.0, "b": 2.0}
        )
        assert len(delays) == 400  # every pushed reading delivered
        assert all(0 <= d <= 10 for d in delays)
        assert channel.pending == 0

    def test_zero_delay_delivers_in_order(self):
        channel = ScramblingChannel(median_delay_slots=0.0)
        rng = np.random.default_rng(0)
        channel.push(0, {"a": 1.0}, rng)
        (reading,) = channel.pop_due(0)
        assert (reading.consumer_id, reading.slot) == ("a", 0)

    def test_duplicates_redeliver_same_value(self):
        channel = ScramblingChannel(
            median_delay_slots=1.0, duplicate_rate=1.0, max_delay_slots=5
        )
        rng = np.random.default_rng(1)
        channel.push(0, {"a": 3.25}, rng)
        delivered = channel.pop_due(100)
        assert len(delivered) == 2
        assert all(r.value == 3.25 and r.slot == 0 for r in delivered)

    def test_deterministic_for_same_rng_stream(self):
        def run():
            channel = ScramblingChannel(
                median_delay_slots=3.0, duplicate_rate=0.1, outage_rate=0.02
            )
            rng = np.random.default_rng(42)
            out = []
            for t in range(100):
                channel.push(t, {"a": float(t), "b": float(-t)}, rng)
                out.append(channel.pop_due(t))
            out.append(channel.drain())
            return out

        assert run() == run()


class TestOutageBatching:
    def test_silenced_consumer_delivers_backlog_as_one_burst(self):
        channel = ScramblingChannel(median_delay_slots=0.0)
        rng = np.random.default_rng(2)
        channel.silence("a", until_slot=5)
        for t in range(5):
            channel.push(t, {"a": float(t), "b": 1.0}, rng)
            delivered = channel.pop_due(t)
            # b flows through; a is held for the whole outage.
            assert [r.consumer_id for r in delivered] == ["b"]
        assert channel.in_outage("a", 4)
        assert not channel.in_outage("a", 5)
        channel.push(5, {"a": 5.0, "b": 1.0}, rng)
        burst = channel.pop_due(5)
        held = [r for r in burst if r.consumer_id == "a" and r.slot < 5]
        assert [r.slot for r in held] == [0, 1, 2, 3, 4]

    def test_silence_validates(self):
        with pytest.raises(ConfigurationError):
            ScramblingChannel().silence("a", until_slot=-1)

    def test_reset_clears_everything(self):
        channel = ScramblingChannel(median_delay_slots=5.0)
        rng = np.random.default_rng(4)
        channel.silence("a", until_slot=100)
        channel.push(0, {"a": 1.0, "b": 2.0}, rng)
        assert channel.pending > 0
        channel.reset()
        assert channel.pending == 0
        assert not channel.in_outage("a", 0)


class TestScrambleSeries:
    def test_batches_cover_every_finite_reading(self):
        series = {
            "a": np.array([1.0, 2.0, np.nan, 4.0]),
            "b": np.array([5.0, 6.0, 7.0, 8.0]),
        }
        channel = ScramblingChannel(median_delay_slots=1.0, max_delay_slots=3)
        batches = scramble_series(series, channel, np.random.default_rng(9))
        assert len(batches) == 5  # one per slot plus the drain
        delivered = [r for batch in batches for r in batch]
        assert len(delivered) == 7  # the NaN slot is never pushed
        assert {(r.consumer_id, r.slot) for r in delivered} == {
            ("a", 0), ("a", 1), ("a", 3),
            ("b", 0), ("b", 1), ("b", 2), ("b", 3),
        }

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            scramble_series(
                {"a": np.ones(4), "b": np.ones(5)},
                ScramblingChannel(),
                np.random.default_rng(0),
            )
