"""Unit tests for the AMI network and utility head-end."""

import numpy as np
import pytest

from repro.errors import MeteringError
from repro.grid.builder import build_figure2_topology
from repro.metering.ami import AMINetwork, UtilityHeadEnd
from repro.metering.errors_model import MeasurementErrorModel


@pytest.fixture
def ami():
    topo = build_figure2_topology()
    return AMINetwork.deploy(topo, error_model=MeasurementErrorModel.exact())


def demands(topo, value=2.0):
    return {c: value for c in topo.consumers()}


class TestAMINetwork:
    def test_deploy_covers_every_consumer(self, ami):
        assert set(ami.meters) == set(ami.topology.consumers())

    def test_collect_honest(self, ami, rng):
        readings = ami.collect(demands(ami.topology), rng)
        assert all(v == 2.0 for v in readings.values())

    def test_collect_with_compromise(self, ami, rng):
        ami.meter("C1").compromise(lambda m: m * 0.25)
        readings = ami.collect(demands(ami.topology), rng)
        assert readings["C1"] == pytest.approx(0.5)
        assert readings["C2"] == 2.0

    def test_collect_missing_demand(self, ami, rng):
        with pytest.raises(MeteringError):
            ami.collect({"C1": 1.0}, rng)

    def test_unknown_meter(self, ami):
        with pytest.raises(MeteringError):
            ami.meter("ghost")

    def test_snapshot_carries_losses(self, ami, rng):
        snap = ami.snapshot(demands(ami.topology), rng, losses={"L1": 0.5})
        assert snap.losses["L1"] == 0.5


class TestUtilityHeadEnd:
    def test_poll_archives_readings(self, ami, rng):
        head = UtilityHeadEnd(ami=ami)
        for _ in range(3):
            head.poll(demands(ami.topology), rng)
        assert head.store.length("C1") == 3
        assert len(head.root_measurements) == 3

    def test_residuals_zero_when_honest(self, ami, rng):
        head = UtilityHeadEnd(ami=ami)
        for _ in range(4):
            head.poll(demands(ami.topology), rng)
        assert np.allclose(head.root_balance_residuals(), 0.0)

    def test_residuals_positive_under_theft(self, ami, rng):
        ami.meter("C3").compromise(lambda m: 0.0)
        head = UtilityHeadEnd(ami=ami)
        head.poll(demands(ami.topology), rng)
        residuals = head.root_balance_residuals()
        assert residuals[0] == pytest.approx(2.0)  # C3's 2 kW unaccounted

    def test_residuals_account_for_losses(self, ami, rng):
        head = UtilityHeadEnd(ami=ami)
        head.poll(demands(ami.topology), rng, losses={"L1": 0.7})
        assert head.root_balance_residuals()[0] == pytest.approx(0.0)

    def test_residuals_require_a_poll(self, ami):
        with pytest.raises(MeteringError):
            UtilityHeadEnd(ami=ami).root_balance_residuals()

    def test_consumer_count(self, ami):
        assert UtilityHeadEnd(ami=ami).consumer_count() == 5
