"""Unit tests for the AMI network and utility head-end."""

import numpy as np
import pytest

from repro.errors import MeteringError
from repro.grid.builder import build_figure2_topology
from repro.metering.ami import AMINetwork, ResilientHeadEnd, UtilityHeadEnd
from repro.metering.channel import LossyChannel
from repro.metering.errors_model import MeasurementErrorModel
from repro.resilience.retry import RetryPolicy


@pytest.fixture
def ami():
    topo = build_figure2_topology()
    return AMINetwork.deploy(topo, error_model=MeasurementErrorModel.exact())


def demands(topo, value=2.0):
    return {c: value for c in topo.consumers()}


class TestAMINetwork:
    def test_deploy_covers_every_consumer(self, ami):
        assert set(ami.meters) == set(ami.topology.consumers())

    def test_collect_honest(self, ami, rng):
        readings = ami.collect(demands(ami.topology), rng)
        assert all(v == 2.0 for v in readings.values())

    def test_collect_with_compromise(self, ami, rng):
        ami.meter("C1").compromise(lambda m: m * 0.25)
        readings = ami.collect(demands(ami.topology), rng)
        assert readings["C1"] == pytest.approx(0.5)
        assert readings["C2"] == 2.0

    def test_collect_missing_demand(self, ami, rng):
        with pytest.raises(MeteringError):
            ami.collect({"C1": 1.0}, rng)

    def test_unknown_meter(self, ami):
        with pytest.raises(MeteringError):
            ami.meter("ghost")

    def test_snapshot_carries_losses(self, ami, rng):
        snap = ami.snapshot(demands(ami.topology), rng, losses={"L1": 0.5})
        assert snap.losses["L1"] == 0.5


class TestUtilityHeadEnd:
    def test_poll_archives_readings(self, ami, rng):
        head = UtilityHeadEnd(ami=ami)
        for _ in range(3):
            head.poll(demands(ami.topology), rng)
        assert head.store.length("C1") == 3
        assert len(head.root_measurements) == 3

    def test_residuals_zero_when_honest(self, ami, rng):
        head = UtilityHeadEnd(ami=ami)
        for _ in range(4):
            head.poll(demands(ami.topology), rng)
        assert np.allclose(head.root_balance_residuals(), 0.0)

    def test_residuals_positive_under_theft(self, ami, rng):
        ami.meter("C3").compromise(lambda m: 0.0)
        head = UtilityHeadEnd(ami=ami)
        head.poll(demands(ami.topology), rng)
        residuals = head.root_balance_residuals()
        assert residuals[0] == pytest.approx(2.0)  # C3's 2 kW unaccounted

    def test_residuals_account_for_losses(self, ami, rng):
        head = UtilityHeadEnd(ami=ami)
        head.poll(demands(ami.topology), rng, losses={"L1": 0.7})
        assert head.root_balance_residuals()[0] == pytest.approx(0.0)

    def test_residuals_require_a_poll(self, ami):
        with pytest.raises(MeteringError):
            UtilityHeadEnd(ami=ami).root_balance_residuals()

    def test_consumer_count(self, ami):
        assert UtilityHeadEnd(ami=ami).consumer_count() == 5


class TestResilientHeadEnd:
    def test_perfect_channel_full_delivery(self, ami, rng):
        head = ResilientHeadEnd(
            ami=ami, channel=LossyChannel(drop_rate=0.0, outage_rate=0.0)
        )
        result = head.poll(demands(ami.topology), rng)
        assert result.missing == ()
        assert result.retried == 0
        assert result.delivery_ratio == 1.0
        assert head.store.length("C1") == 1
        assert head.gaps_recorded == 0

    def test_retry_repairs_random_drops(self, ami, rng):
        """With two retry attempts a 30% drop rate almost always heals."""
        head = ResilientHeadEnd(
            ami=ami,
            channel=LossyChannel(drop_rate=0.3, outage_rate=0.0),
            retry=RetryPolicy(max_attempts=3, cycle_budget=64),
        )
        cycles = 200
        for _ in range(cycles):
            head.poll(demands(ami.topology), rng)
        assert head.retries_sent > 0
        # Residual gap probability per reading is ~0.3**4 < 1%.
        total_readings = cycles * head.ami.topology.consumers().__len__()
        assert head.gaps_recorded / total_readings < 0.05
        # Series stay slot-aligned regardless of losses.
        for cid in ami.topology.consumers():
            assert head.store.length(cid) == cycles

    def test_outage_defeats_retry_and_records_gaps(self, ami, rng):
        head = ResilientHeadEnd(
            ami=ami, channel=LossyChannel(drop_rate=0.0, outage_rate=0.0)
        )
        head.channel.silence("C1", cycles=3)
        result = head.poll(demands(ami.topology), rng)
        assert result.missing == ("C1",)
        assert head.store.gap_count("C1") == 1
        assert head.store.gap_count("C2") == 0

    def test_zero_retry_budget_records_raw_losses(self, ami, rng):
        head = ResilientHeadEnd(
            ami=ami,
            channel=LossyChannel(drop_rate=0.5, outage_rate=0.0),
            retry=RetryPolicy(max_attempts=0),
        )
        for _ in range(50):
            head.poll(demands(ami.topology), rng)
        assert head.retries_sent == 0
        assert head.gaps_recorded > 0

    def test_budget_limits_retry_batch(self, ami, rng):
        """A tiny budget only re-polls as many meters as it can afford."""
        head = ResilientHeadEnd(
            ami=ami,
            channel=LossyChannel(drop_rate=1.0, outage_rate=0.0),
            retry=RetryPolicy(max_attempts=1, cycle_budget=2),
        )
        result = head.poll(demands(ami.topology), rng)
        # Everything drops; only budget // cost = 2 re-polls were sent.
        assert result.retried == 2
        assert len(result.missing) == 5
        assert result.delivery_ratio == 0.0
