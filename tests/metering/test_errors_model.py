"""Unit tests for the EEI-calibrated measurement error model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metering.errors_model import MeasurementErrorModel


class TestCalibration:
    def test_tight_band_probability(self):
        """99.91% of readings within +/-0.5% (the EEI study figure)."""
        model = MeasurementErrorModel()
        assert model.within_band_probability(0.005) == pytest.approx(
            0.9991, abs=1e-4
        )

    def test_wide_band_probability_exceeds_eei(self):
        """The +/-2% band must hold with at least the 99.96% of the study."""
        model = MeasurementErrorModel()
        assert model.within_band_probability(0.02) > 0.9996

    def test_empirical_matches_analytical(self, rng):
        model = MeasurementErrorModel()
        true_value = 10.0
        readings = model.apply_many(np.full(200_000, true_value), rng)
        rel_err = np.abs(readings - true_value) / true_value
        assert np.mean(rel_err < 0.005) == pytest.approx(0.9991, abs=0.001)


class TestApply:
    def test_exact_model_is_identity(self, rng):
        model = MeasurementErrorModel.exact()
        assert model.apply(7.5, rng) == 7.5
        assert model.within_band_probability(0.001) == 1.0

    def test_never_negative(self, rng):
        model = MeasurementErrorModel(sigma=2.0)  # absurdly noisy
        readings = model.apply_many(np.full(1000, 0.01), rng)
        assert np.all(readings >= 0.0)

    def test_zero_demand_stays_zero_exact(self, rng):
        assert MeasurementErrorModel.exact().apply(0.0, rng) == 0.0

    def test_rejects_negative_demand(self, rng):
        model = MeasurementErrorModel()
        with pytest.raises(ConfigurationError):
            model.apply(-1.0, rng)
        with pytest.raises(ConfigurationError):
            model.apply_many(np.array([-1.0]), rng)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            MeasurementErrorModel(sigma=-0.1)

    def test_rejects_bad_band(self):
        with pytest.raises(ConfigurationError):
            MeasurementErrorModel().within_band_probability(0.0)

    def test_vectorised_matches_scalar_statistics(self, rng):
        model = MeasurementErrorModel(sigma=0.01)
        many = model.apply_many(np.full(50_000, 5.0), rng)
        assert many.mean() == pytest.approx(5.0, rel=1e-3)
        assert many.std() == pytest.approx(0.05, rel=0.05)
