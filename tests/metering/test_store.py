"""Unit tests for the reading store."""

import numpy as np
import pytest

from repro.errors import DataError, MeteringError
from repro.metering.store import ReadingStore
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestReadingStore:
    def test_append_and_series(self):
        store = ReadingStore()
        store.append("c1", 1.0)
        store.append("c1", 2.0)
        assert np.array_equal(store.series("c1"), [1.0, 2.0])

    def test_extend(self, rng):
        store = ReadingStore()
        values = rng.uniform(0, 5, size=10)
        store.extend("c1", values)
        assert np.allclose(store.series("c1"), values)

    def test_rejects_negative_reading(self):
        store = ReadingStore()
        with pytest.raises(MeteringError):
            store.append("c1", -0.1)

    def test_series_unknown_consumer(self):
        with pytest.raises(DataError):
            ReadingStore().series("ghost")

    def test_week_matrix_shape(self, rng):
        store = ReadingStore()
        store.extend("c1", rng.uniform(0, 2, size=3 * SLOTS_PER_WEEK + 5))
        matrix = store.week_matrix("c1")
        assert matrix.shape == (3, SLOTS_PER_WEEK)

    def test_week_matrix_needs_full_week(self, rng):
        store = ReadingStore()
        store.extend("c1", rng.uniform(0, 2, size=100))
        with pytest.raises(DataError):
            store.week_matrix("c1")

    def test_latest_week(self, rng):
        store = ReadingStore()
        first = rng.uniform(0, 2, size=SLOTS_PER_WEEK)
        second = rng.uniform(0, 2, size=SLOTS_PER_WEEK)
        store.extend("c1", first)
        store.extend("c1", second)
        assert np.allclose(store.latest_week("c1"), second)

    def test_consumers_and_length(self):
        store = ReadingStore()
        store.append("a", 1.0)
        store.append("b", 2.0)
        assert set(store.consumers()) == {"a", "b"}
        assert store.length("a") == 1
        assert store.length("missing") == 0


class TestGapMarkers:
    """The explicit gap API vs. the strict append path."""

    def test_append_rejects_nan(self):
        store = ReadingStore()
        with pytest.raises(MeteringError, match="append_gap"):
            store.append("c1", float("nan"))

    def test_append_rejects_inf(self):
        store = ReadingStore()
        with pytest.raises(MeteringError):
            store.append("c1", float("inf"))

    def test_extend_rejects_nan_batch(self):
        store = ReadingStore()
        with pytest.raises(MeteringError):
            store.extend("c1", np.array([1.0, np.nan, 2.0]))

    def test_append_gap_keeps_series_aligned(self):
        store = ReadingStore()
        store.append("c1", 1.0)
        store.append_gap("c1")
        store.append("c1", 3.0)
        series = store.series("c1")
        assert series.size == 3
        assert np.isnan(series[1])
        assert series[2] == 3.0

    def test_gap_count(self):
        store = ReadingStore()
        assert store.gap_count("c1") == 0
        store.append("c1", 1.0)
        store.append_gap("c1")
        store.append_gap("c1")
        assert store.gap_count("c1") == 2

    def test_clear_drops_series(self):
        store = ReadingStore()
        store.append("c1", 1.0)
        store.clear("c1")
        assert store.length("c1") == 0
        assert "c1" not in store.consumers()
        store.clear("never-existed")  # idempotent


class TestOverwriteWeek:
    def _store_with_weeks(self, rng, weeks=2):
        store = ReadingStore()
        store.extend("c1", rng.uniform(0, 2, size=weeks * SLOTS_PER_WEEK))
        return store

    def test_overwrites_in_place(self, rng):
        store = self._store_with_weeks(rng)
        repaired = np.full(SLOTS_PER_WEEK, 0.5)
        store.overwrite_week("c1", 0, repaired)
        assert np.array_equal(store.week_matrix("c1")[0], repaired)

    def test_residual_nan_gaps_allowed(self, rng):
        store = self._store_with_weeks(rng)
        week = np.full(SLOTS_PER_WEEK, 0.5)
        week[10:16] = np.nan
        store.overwrite_week("c1", 1, week)
        assert store.gap_count("c1") == 6

    def test_rejects_wrong_size(self, rng):
        store = self._store_with_weeks(rng)
        with pytest.raises(DataError):
            store.overwrite_week("c1", 0, np.ones(10))

    def test_rejects_negative_and_inf(self, rng):
        store = self._store_with_weeks(rng)
        bad = np.full(SLOTS_PER_WEEK, 0.5)
        bad[0] = -1.0
        with pytest.raises(MeteringError):
            store.overwrite_week("c1", 0, bad)
        bad[0] = np.inf
        with pytest.raises(MeteringError):
            store.overwrite_week("c1", 0, bad)

    def test_rejects_out_of_range_week(self, rng):
        store = self._store_with_weeks(rng, weeks=1)
        with pytest.raises(DataError):
            store.overwrite_week("c1", 1, np.ones(SLOTS_PER_WEEK))
        with pytest.raises(DataError):
            store.overwrite_week("ghost", 0, np.ones(SLOTS_PER_WEEK))


class TestSlotAddressedRecord:
    """record(): idempotent last-write-wins re-delivery absorption."""

    def test_record_extends_like_append(self):
        store = ReadingStore()
        assert store.record("c1", 0, 1.0) is True
        assert store.record("c1", 1, 2.0) is True
        assert np.array_equal(store.series("c1"), [1.0, 2.0])

    def test_record_past_end_fills_gaps(self):
        store = ReadingStore()
        assert store.record("c1", 3, 4.0) is True
        series = store.series("c1")
        assert series.size == 4
        assert np.isnan(series[:3]).all()
        assert series[3] == 4.0

    def test_duplicate_slot_overwrites_in_place(self):
        store = ReadingStore()
        store.record("c1", 0, 1.0)
        assert store.record("c1", 0, 9.0) is False  # last write wins
        assert store.length("c1") == 1
        assert store.series("c1")[0] == 9.0

    def test_duplicate_fills_a_gap_without_counting_length(self):
        store = ReadingStore()
        store.append_gap("c1")
        assert store.record("c1", 0, 5.0) is False
        assert store.length("c1") == 1
        assert store.gap_count("c1") == 0

    def test_duplicates_counted_in_metric(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = ReadingStore(metrics=registry)
        store.record("c1", 0, 1.0)
        store.record("c1", 0, 2.0)
        store.record("c1", 0, 3.0)
        counter = registry.counter("fdeta_readings_duplicate_total")
        assert counter.value() == 2.0

    def test_duplicates_fall_back_to_global_registry(self):
        from repro.observability.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        store = ReadingStore()  # no registry of its own
        with use_registry(registry):
            store.record("c1", 0, 1.0)
            store.record("c1", 0, 2.0)
        assert (
            registry.counter("fdeta_readings_duplicate_total").value() == 1.0
        )

    def test_record_validates_like_append(self):
        store = ReadingStore()
        with pytest.raises(MeteringError):
            store.record("c1", 0, float("nan"))
        with pytest.raises(MeteringError):
            store.record("c1", 0, -1.0)
        with pytest.raises(DataError):
            store.record("c1", -1, 1.0)
