"""Unit tests for the reading store."""

import numpy as np
import pytest

from repro.errors import DataError, MeteringError
from repro.metering.store import ReadingStore
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestReadingStore:
    def test_append_and_series(self):
        store = ReadingStore()
        store.append("c1", 1.0)
        store.append("c1", 2.0)
        assert np.array_equal(store.series("c1"), [1.0, 2.0])

    def test_extend(self, rng):
        store = ReadingStore()
        values = rng.uniform(0, 5, size=10)
        store.extend("c1", values)
        assert np.allclose(store.series("c1"), values)

    def test_rejects_negative_reading(self):
        store = ReadingStore()
        with pytest.raises(MeteringError):
            store.append("c1", -0.1)

    def test_series_unknown_consumer(self):
        with pytest.raises(DataError):
            ReadingStore().series("ghost")

    def test_week_matrix_shape(self, rng):
        store = ReadingStore()
        store.extend("c1", rng.uniform(0, 2, size=3 * SLOTS_PER_WEEK + 5))
        matrix = store.week_matrix("c1")
        assert matrix.shape == (3, SLOTS_PER_WEEK)

    def test_week_matrix_needs_full_week(self, rng):
        store = ReadingStore()
        store.extend("c1", rng.uniform(0, 2, size=100))
        with pytest.raises(DataError):
            store.week_matrix("c1")

    def test_latest_week(self, rng):
        store = ReadingStore()
        first = rng.uniform(0, 2, size=SLOTS_PER_WEEK)
        second = rng.uniform(0, 2, size=SLOTS_PER_WEEK)
        store.extend("c1", first)
        store.extend("c1", second)
        assert np.allclose(store.latest_week("c1"), second)

    def test_consumers_and_length(self):
        store = ReadingStore()
        store.append("a", 1.0)
        store.append("b", 2.0)
        assert set(store.consumers()) == {"a", "b"}
        assert store.length("a") == 1
        assert store.length("missing") == 0
