"""Unit tests for demand snapshots and eq (4) aggregation."""

import pytest

from repro.errors import TopologyError
from repro.grid.builder import build_figure2_topology
from repro.grid.snapshot import DemandSnapshot


@pytest.fixture
def fig2():
    return build_figure2_topology()


def make_snapshot(topo, **overrides):
    actual = {"C1": 1.0, "C2": 2.0, "C3": 3.0, "C4": 4.0, "C5": 5.0}
    losses = {"L1": 0.1, "L2": 0.2, "L3": 0.3}
    return DemandSnapshot(
        topology=topo, actual=actual, losses=losses, **overrides
    )


class TestAggregation:
    def test_equation4_at_root(self, fig2):
        snap = make_snapshot(fig2)
        # D_N1 = sum consumers + sum losses (Fig. 2 caption).
        assert snap.true_demand_at("N1") == pytest.approx(15.0 + 0.6)

    def test_equation4_at_n3(self, fig2):
        snap = make_snapshot(fig2)
        assert snap.true_demand_at("N3") == pytest.approx(4.0 + 5.0 + 0.3)

    def test_additivity_parent_equals_children(self, fig2):
        snap = make_snapshot(fig2)
        parent = snap.true_demand_at("N1")
        children = (
            snap.true_demand_at("N2")
            + snap.true_demand_at("N3")
            + snap.losses["L1"]
        )
        assert parent == pytest.approx(children)

    def test_leaf_demand(self, fig2):
        snap = make_snapshot(fig2)
        assert snap.true_demand_at("C4") == 4.0
        assert snap.true_demand_at("L2") == 0.2

    def test_reported_defaults_to_actual(self, fig2):
        snap = make_snapshot(fig2)
        assert snap.reported == snap.actual

    def test_reported_sum_uses_reported(self, fig2):
        snap = make_snapshot(fig2).with_reported({"C4": 10.0})
        assert snap.reported_sum_at("N3") == pytest.approx(10.0 + 5.0 + 0.3)
        # True demand unchanged.
        assert snap.true_demand_at("N3") == pytest.approx(9.3)


class TestValidation:
    def test_missing_consumer_rejected(self, fig2):
        with pytest.raises(TopologyError):
            DemandSnapshot(topology=fig2, actual={"C1": 1.0})

    def test_unknown_consumer_rejected(self, fig2):
        actual = {c: 1.0 for c in fig2.consumers()}
        actual["ghost"] = 1.0
        with pytest.raises(TopologyError):
            DemandSnapshot(topology=fig2, actual=actual)

    def test_negative_demand_rejected(self, fig2):
        actual = {c: 1.0 for c in fig2.consumers()}
        actual["C1"] = -1.0
        with pytest.raises(TopologyError):
            DemandSnapshot(topology=fig2, actual=actual)

    def test_missing_losses_default_zero(self, fig2):
        actual = {c: 1.0 for c in fig2.consumers()}
        snap = DemandSnapshot(topology=fig2, actual=actual)
        assert snap.losses == {"L1": 0.0, "L2": 0.0, "L3": 0.0}

    def test_with_reported_unknown_consumer(self, fig2):
        snap = make_snapshot(fig2)
        with pytest.raises(TopologyError):
            snap.with_reported({"ghost": 1.0})

    def test_with_actual_override(self, fig2):
        snap = make_snapshot(fig2).with_actual({"C1": 9.0})
        assert snap.actual["C1"] == 9.0
        assert snap.reported["C1"] == 1.0  # reported untouched
