"""Tests for ASCII topology rendering."""

from repro.grid.balance import BalanceAuditor
from repro.grid.builder import build_figure2_topology
from repro.grid.render import render_audit, render_tree
from repro.grid.snapshot import DemandSnapshot


class TestRenderTree:
    def test_all_nodes_present(self):
        topo = build_figure2_topology()
        text = render_tree(topo)
        for nid in topo.iter_breadth_first():
            assert nid in text

    def test_root_first_line(self):
        topo = build_figure2_topology()
        first = render_tree(topo).splitlines()[0]
        assert "N1" in first

    def test_ascii_mode(self):
        topo = build_figure2_topology()
        text = render_tree(topo, unicode_markers=False)
        assert "[#]" in text  # consumer marker
        assert "(o)" in text  # internal marker
        assert "○" not in text

    def test_annotation_mapping(self):
        topo = build_figure2_topology()
        text = render_tree(topo, annotate={"C4": "5.0 kW"})
        assert "5.0 kW" in text

    def test_annotation_callable(self):
        topo = build_figure2_topology()
        text = render_tree(topo, annotate=lambda nid: f"<{nid}>")
        assert "<C1>" in text

    def test_indentation_reflects_depth(self):
        topo = build_figure2_topology()
        lines = render_tree(topo).splitlines()
        c4_line = next(l for l in lines if "C4" in l)
        n3_line = next(l for l in lines if "N3" in l)
        assert len(c4_line) - len(c4_line.lstrip("│ ├└─")) >= 0
        assert c4_line.index("C4") > n3_line.index("N3")


class TestRenderAudit:
    def test_failures_marked(self):
        topo = build_figure2_topology()
        snap = DemandSnapshot(
            topology=topo, actual={c: 2.0 for c in topo.consumers()}
        ).with_reported({"C4": 0.5})
        report = BalanceAuditor(topo).audit(snap)
        text = render_audit(topo, report.failing_nodes())
        assert text.count("FAILED") == len(report.failing_nodes())
        n3_line = next(l for l in text.splitlines() if "N3" in l)
        assert "FAILED" in n3_line

    def test_clean_audit_unmarked(self):
        topo = build_figure2_topology()
        text = render_audit(topo, ())
        assert "FAILED" not in text
