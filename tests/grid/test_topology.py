"""Unit tests for the radial topology, including the exact Fig. 2 instance."""

import pytest

from repro.errors import TopologyError
from repro.grid.builder import build_figure2_topology
from repro.grid.topology import NodeKind, RadialTopology


@pytest.fixture
def fig2():
    return build_figure2_topology()


class TestConstruction:
    def test_root_exists(self):
        topo = RadialTopology(root_id="r")
        assert "r" in topo
        assert topo.node("r").kind is NodeKind.INTERNAL

    def test_add_consumer_under_internal(self):
        topo = RadialTopology()
        topo.add_consumer("c1", "root")
        assert topo.node("c1").kind is NodeKind.CONSUMER
        assert topo.parent("c1") == "root"

    def test_rejects_duplicate_id(self):
        topo = RadialTopology()
        topo.add_consumer("c1", "root")
        with pytest.raises(TopologyError):
            topo.add_consumer("c1", "root")

    def test_rejects_unknown_parent(self):
        topo = RadialTopology()
        with pytest.raises(TopologyError):
            topo.add_consumer("c1", "nope")

    def test_rejects_children_under_leaf(self):
        topo = RadialTopology()
        topo.add_consumer("c1", "root")
        with pytest.raises(TopologyError):
            topo.add_consumer("c2", "c1")

    def test_rejects_empty_node_id(self):
        topo = RadialTopology()
        with pytest.raises(TopologyError):
            topo.add_consumer("", "root")


class TestFigure2Instance:
    """The paper's Fig. 2: N1-N3, C1-C5, L1-L3."""

    def test_node_counts(self, fig2):
        assert len(fig2) == 11
        assert set(fig2.internal_nodes()) == {"N1", "N2", "N3"}
        assert set(fig2.consumers()) == {"C1", "C2", "C3", "C4", "C5"}
        assert set(fig2.losses()) == {"L1", "L2", "L3"}

    def test_n3_children(self, fig2):
        assert set(fig2.children("N3")) == {"C4", "C5", "L3"}

    def test_consumer_descendants_of_root(self, fig2):
        assert set(fig2.consumer_descendants("N1")) == {
            "C1", "C2", "C3", "C4", "C5",
        }

    def test_loss_descendants_of_n2(self, fig2):
        assert set(fig2.loss_descendants("N2")) == {"L2"}

    def test_depths(self, fig2):
        assert fig2.depth("N1") == 0
        assert fig2.depth("N2") == 1
        assert fig2.depth("C4") == 2

    def test_path_to_root(self, fig2):
        assert fig2.path_to_root("C4") == ("C4", "N3", "N1")

    def test_siblings_are_the_papers_neighbours(self, fig2):
        assert set(fig2.siblings("C1")) == {"C2", "C3"}
        assert set(fig2.siblings("C4")) == {"C5"}

    def test_root_has_no_siblings(self, fig2):
        assert fig2.siblings("N1") == ()

    def test_validate_passes(self, fig2):
        fig2.validate()

    def test_breadth_first_starts_at_root(self, fig2):
        order = list(fig2.iter_breadth_first())
        assert order[0] == "N1"
        assert set(order) == set(
            ["N1", "N2", "N3", "L1"]
            + ["C1", "C2", "C3", "L2", "C4", "C5", "L3"]
        )
        # BFS level property: all depth-1 nodes precede depth-2 nodes.
        depth_positions = {nid: order.index(nid) for nid in order}
        assert depth_positions["N2"] < depth_positions["C1"]

    def test_unknown_node_raises(self, fig2):
        with pytest.raises(TopologyError):
            fig2.node("X")
        with pytest.raises(TopologyError):
            fig2.children("X")
