"""Fig. 1 scenario: an upstream line tap under-reports without meter
compromise, and the balance check sees the shortfall."""

import pytest

from repro.grid.balance import BalanceAuditor
from repro.grid.builder import build_figure2_topology
from repro.metering.ami import AMINetwork
from repro.metering.errors_model import MeasurementErrorModel


@pytest.fixture
def fig2_ami():
    topo = build_figure2_topology()
    ami = AMINetwork.deploy(topo, error_model=MeasurementErrorModel.exact())
    return topo, ami


class TestUpstreamTap:
    def test_tap_reduces_reported_not_actual(self, fig2_ami, rng):
        topo, ami = fig2_ami
        ami.meter("C4").install_upstream_tap(2.0)
        demands = {c: 5.0 for c in topo.consumers()}
        snap = ami.snapshot(demands, rng)
        assert snap.actual["C4"] == 5.0
        assert snap.reported["C4"] == pytest.approx(3.0)
        assert not ami.meter("C4").is_compromised  # honest meter (Fig. 1)

    def test_balance_check_sees_tap(self, fig2_ami, rng):
        topo, ami = fig2_ami
        ami.meter("C4").install_upstream_tap(2.0)
        demands = {c: 5.0 for c in topo.consumers()}
        snap = ami.snapshot(demands, rng)
        auditor = BalanceAuditor(topo)
        report = auditor.audit(snap)
        assert report.w("N3")
        assert report.checks["N3"].discrepancy == pytest.approx(2.0)

    def test_tap_is_class_1a_pattern(self, fig2_ami, rng):
        """Tapping realises Attack Class 1A: reported readings look
        typical while actual consumption is higher."""
        topo, ami = fig2_ami
        ami.meter("C4").install_upstream_tap(3.0)
        # The attacker raises consumption by the tapped amount: her
        # metered (reported) value stays at the typical 5 kW.
        demands = {c: 5.0 for c in topo.consumers()}
        demands["C4"] = 8.0
        snap = ami.snapshot(demands, rng)
        assert snap.reported["C4"] == pytest.approx(5.0)

    def test_tap_cannot_be_negative(self, fig2_ami):
        _, ami = fig2_ami
        from repro.errors import MeteringError

        with pytest.raises(MeteringError):
            ami.meter("C4").install_upstream_tap(-1.0)

    def test_restore_removes_tap(self, fig2_ami, rng):
        topo, ami = fig2_ami
        meter = ami.meter("C4")
        meter.install_upstream_tap(2.0)
        meter.restore()
        assert meter.report(5.0, rng) == pytest.approx(5.0)
