"""Tests for topology JSON serialisation."""

import json

import pytest

from repro.errors import TopologyError
from repro.grid.builder import build_figure2_topology, build_random_topology
from repro.grid.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.grid.topology import NodeKind


class TestRoundTrip:
    def test_figure2_roundtrip(self):
        original = build_figure2_topology()
        rebuilt = topology_from_dict(topology_to_dict(original))
        assert rebuilt.root_id == original.root_id
        assert set(rebuilt.consumers()) == set(original.consumers())
        assert set(rebuilt.losses()) == set(original.losses())
        for nid in original.consumers():
            assert rebuilt.parent(nid) == original.parent(nid)

    def test_random_topology_roundtrip(self):
        original = build_random_topology(n_consumers=40, seed=6)
        rebuilt = topology_from_dict(topology_to_dict(original))
        assert len(rebuilt) == len(original)
        for nid in original.iter_breadth_first():
            assert rebuilt.node(nid).kind == original.node(nid).kind

    def test_file_roundtrip(self, tmp_path):
        original = build_figure2_topology()
        path = tmp_path / "topo.json"
        save_topology(original, path)
        rebuilt = load_topology(path)
        assert set(rebuilt.consumers()) == set(original.consumers())

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "topo.json"
        save_topology(build_figure2_topology(), path)
        payload = json.loads(path.read_text())
        assert payload["root"] == "N1"
        assert payload["version"] == 1


class TestValidation:
    def test_missing_file(self):
        with pytest.raises(TopologyError):
            load_topology("/nonexistent/topo.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TopologyError):
            load_topology(path)

    def test_unsupported_version(self):
        payload = topology_to_dict(build_figure2_topology())
        payload["version"] = 99
        with pytest.raises(TopologyError):
            topology_from_dict(payload)

    def test_missing_fields(self):
        with pytest.raises(TopologyError):
            topology_from_dict({"root": "r"})

    def test_unknown_kind(self):
        payload = topology_to_dict(build_figure2_topology())
        payload["nodes"][1]["kind"] = "mystery"
        with pytest.raises(TopologyError):
            topology_from_dict(payload)

    def test_orphan_node(self):
        payload = topology_to_dict(build_figure2_topology())
        payload["nodes"].append(
            {"id": "stray", "kind": NodeKind.CONSUMER.value, "parent": None}
        )
        with pytest.raises(TopologyError):
            topology_from_dict(payload)
