"""Unit tests for topology builders."""

import pytest

from repro.errors import ConfigurationError
from repro.grid.builder import (
    build_figure2_topology,
    build_linear_topology,
    build_random_topology,
)
from repro.grid.topology import NodeKind


class TestRandomTopology:
    def test_consumer_count(self):
        topo = build_random_topology(n_consumers=50, seed=0)
        assert len(topo.consumers()) == 50

    def test_all_valid(self):
        for seed in range(5):
            build_random_topology(n_consumers=30, seed=seed).validate()

    def test_branching_respected_for_consumers(self):
        topo = build_random_topology(n_consumers=64, branching=4, seed=1)
        for nid in topo.internal_nodes():
            consumer_children = [
                c
                for c in topo.children(nid)
                if topo.node(c).kind is NodeKind.CONSUMER
            ]
            assert len(consumer_children) <= 4

    def test_deterministic_given_seed(self):
        a = build_random_topology(n_consumers=20, seed=9)
        b = build_random_topology(n_consumers=20, seed=9)
        assert set(a.consumers()) == set(b.consumers())
        assert {c: a.parent(c) for c in a.consumers()} == {
            c: b.parent(c) for c in b.consumers()
        }

    def test_no_losses_when_probability_zero(self):
        topo = build_random_topology(n_consumers=10, loss_probability=0.0, seed=0)
        assert topo.losses() == ()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            build_random_topology(n_consumers=0)
        with pytest.raises(ConfigurationError):
            build_random_topology(n_consumers=5, branching=1)
        with pytest.raises(ConfigurationError):
            build_random_topology(n_consumers=5, loss_probability=2.0)


class TestLinearTopology:
    def test_depth_grows_linearly(self):
        topo = build_linear_topology(10)
        depths = [topo.depth(c) for c in topo.consumers()]
        assert max(depths) >= 9

    def test_one_consumer(self):
        topo = build_linear_topology(1)
        assert len(topo.consumers()) == 1

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            build_linear_topology(0)


class TestFigure2:
    def test_matches_paper_example(self):
        topo = build_figure2_topology()
        assert topo.root_id == "N1"
        assert len(topo.consumers()) == 5
        assert len(topo.losses()) == 3
