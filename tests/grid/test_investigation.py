"""Unit tests for theft-investigation procedures (Section V-C)."""

import pytest

from repro.errors import TopologyError
from repro.grid.balance import BalanceAuditor
from repro.grid.builder import (
    build_figure2_topology,
    build_linear_topology,
    build_random_topology,
)
from repro.grid.investigation import (
    deepest_failure_investigation,
    exhaustive_inspection_cost,
    run_case1,
    serviceman_search,
)
from repro.grid.snapshot import DemandSnapshot


def theft_snapshot(topo, thief, under_report=2.0):
    actual = {c: 3.0 for c in topo.consumers()}
    snap = DemandSnapshot(topology=topo, actual=actual)
    return snap.with_reported({thief: 3.0 - under_report})


class TestCase1DeepestFailure:
    def test_localises_thiefs_parent_neighbourhood(self):
        topo = build_figure2_topology()
        auditor = BalanceAuditor(topo)
        snap = theft_snapshot(topo, "C4")
        result = run_case1(auditor, snap)
        assert result.localized_node == "N3"
        assert set(result.suspect_consumers) == {"C4", "C5"}

    def test_requires_a_failure(self):
        topo = build_figure2_topology()
        auditor = BalanceAuditor(topo)
        snap = DemandSnapshot(
            topology=topo, actual={c: 1.0 for c in topo.consumers()}
        )
        report = auditor.audit(snap)
        with pytest.raises(TopologyError):
            deepest_failure_investigation(topo, report)

    def test_on_random_tree_thief_always_in_suspects(self, rng):
        topo = build_random_topology(n_consumers=40, seed=3)
        auditor = BalanceAuditor(topo)
        for thief in list(topo.consumers())[:10]:
            result = run_case1(auditor, theft_snapshot(topo, thief))
            assert thief in result.suspect_consumers

    def test_suspect_set_smaller_than_population(self):
        topo = build_random_topology(n_consumers=64, branching=4, seed=1)
        auditor = BalanceAuditor(topo)
        result = run_case1(auditor, theft_snapshot(topo, "c10"))
        assert len(result.suspect_consumers) < len(topo.consumers())


class TestCase2ServicemanSearch:
    def test_finds_thief_directly(self):
        topo = build_random_topology(n_consumers=32, branching=4, seed=7)
        result = serviceman_search(topo, theft_snapshot(topo, "c5"))
        assert result.suspect_consumers == ("c5",)

    def test_cost_logarithmic_on_balanced_tree(self):
        topo = build_random_topology(n_consumers=256, branching=4, seed=2)
        result = serviceman_search(topo, theft_snapshot(topo, "c100"))
        # BFS descent checks only one branch per level: far fewer checks
        # than inspecting all 256 consumers.
        assert result.checks_performed < exhaustive_inspection_cost(topo) / 4

    def test_cost_linear_on_path_topology(self):
        topo = build_linear_topology(32)
        result = serviceman_search(topo, theft_snapshot(topo, "c31"))
        assert "c31" in result.suspect_consumers
        assert result.checks_performed >= 32  # degenerate O(N) shape

    def test_no_theft_returns_no_suspect_narrowing(self):
        topo = build_figure2_topology()
        snap = DemandSnapshot(
            topology=topo, actual={c: 1.0 for c in topo.consumers()}
        )
        result = serviceman_search(topo, snap)
        assert result.localized_node == topo.root_id

    def test_rejects_start_at_leaf(self):
        topo = build_figure2_topology()
        with pytest.raises(TopologyError):
            serviceman_search(
                theft_snapshot(topo, "C1").topology,
                theft_snapshot(topo, "C1"),
                start="C1",
            )

    def test_multiple_thieves_in_different_subtrees(self):
        topo = build_figure2_topology()
        actual = {c: 3.0 for c in topo.consumers()}
        snap = DemandSnapshot(topology=topo, actual=actual).with_reported(
            {"C1": 1.0, "C4": 1.0}
        )
        result = serviceman_search(topo, snap)
        # Discrepancies in both subtrees: suspects must cover both thieves.
        assert "C1" in result.suspect_consumers
        assert "C4" in result.suspect_consumers
