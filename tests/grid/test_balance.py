"""Unit tests for the balance check and Section V-B alarm rules."""

import pytest

from repro.errors import TopologyError
from repro.grid.balance import BalanceAuditor
from repro.grid.builder import build_figure2_topology
from repro.grid.snapshot import DemandSnapshot


@pytest.fixture
def fig2():
    return build_figure2_topology()


def snapshot(topo, reported_overrides=None, actual_overrides=None):
    actual = {"C1": 1.0, "C2": 2.0, "C3": 3.0, "C4": 4.0, "C5": 5.0}
    snap = DemandSnapshot(topology=topo, actual=actual)
    if actual_overrides:
        snap = snap.with_actual(actual_overrides)
    if reported_overrides:
        snap = snap.with_reported(reported_overrides)
    return snap


class TestBalanceCheck:
    def test_honest_readings_pass_everywhere(self, fig2):
        auditor = BalanceAuditor(fig2)
        report = auditor.audit(snapshot(fig2))
        assert not report.any_failure

    def test_under_report_fails_on_path_to_root(self, fig2):
        auditor = BalanceAuditor(fig2)
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 1.0}))
        assert report.w("N3")
        assert report.w("N1")
        assert not report.w("N2")

    def test_w_propagates_to_all_ancestors(self, fig2):
        auditor = BalanceAuditor(fig2)
        report = auditor.audit(snapshot(fig2, reported_overrides={"C1": 0.0}))
        for nid in ("N2", "N1"):
            assert report.w(nid)

    def test_discrepancy_sign(self, fig2):
        auditor = BalanceAuditor(fig2)
        check = auditor.check_node(
            snapshot(fig2, reported_overrides={"C4": 1.0}), "N3"
        )
        # Measured exceeds reported: 3 kW unaccounted.
        assert check.discrepancy == pytest.approx(3.0)

    def test_tolerance_absorbs_meter_noise(self, fig2):
        auditor = BalanceAuditor(fig2, tolerance=0.5)
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 3.9}))
        assert not report.any_failure

    def test_only_instrumented_nodes_checked(self, fig2):
        auditor = BalanceAuditor(fig2, instrumented=("N1",))
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 1.0}))
        assert report.failing_nodes() == ("N1",)
        assert not report.w("N3")  # no meter there

    def test_rejects_balance_meter_on_leaf(self, fig2):
        with pytest.raises(TopologyError):
            BalanceAuditor(fig2, instrumented=("C1",))


class TestClass1BCircumvention:
    """Proposition 2 in action: over-reporting a neighbour hides theft."""

    def test_balanced_attack_evades_all_checks(self, fig2):
        # Mallory (C4) steals 3 kW: she consumes 7 but the pair C4+C5
        # still reports a total matching physical flow because C5 is
        # over-reported by the same 3 kW.
        snap = snapshot(
            fig2,
            actual_overrides={"C4": 7.0},
            reported_overrides={"C4": 4.0, "C5": 8.0},
        )
        auditor = BalanceAuditor(fig2)
        report = auditor.audit(snap)
        assert not report.any_failure  # the theft is invisible to eq (5)

    def test_unbalanced_attack_is_caught(self, fig2):
        snap = snapshot(
            fig2,
            actual_overrides={"C4": 7.0},
            reported_overrides={"C4": 4.0},
        )
        auditor = BalanceAuditor(fig2)
        assert auditor.audit(snap).any_failure


class TestCompromisedMeters:
    def test_compromised_meter_reports_pass(self, fig2):
        auditor = BalanceAuditor(fig2)
        auditor.compromise_meter("N3")
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 1.0}))
        assert not report.w("N3")
        assert report.w("N1")  # root still honest

    def test_compromise_path_spares_root(self, fig2):
        auditor = BalanceAuditor(fig2)
        count = auditor.compromise_path("C4")
        assert count == 1  # only N3; N1 (root) spared
        assert auditor.compromised_meters == ("N3",)

    def test_compromise_path_including_root(self, fig2):
        auditor = BalanceAuditor(fig2)
        count = auditor.compromise_path("C4", spare_root=False)
        assert count == 2
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 1.0}))
        assert not report.any_failure  # fully blinded

    def test_compromise_path_rejects_internal_node(self, fig2):
        auditor = BalanceAuditor(fig2)
        with pytest.raises(TopologyError):
            auditor.compromise_path("N3")

    def test_compromise_unknown_meter(self, fig2):
        auditor = BalanceAuditor(fig2, instrumented=("N1",))
        with pytest.raises(TopologyError):
            auditor.compromise_meter("N3")


class TestAlarmRules:
    def test_child_fails_parent_passes_alarm(self, fig2):
        """Section V-B rule 1: W true at a node, false at its parent."""
        auditor = BalanceAuditor(fig2)
        auditor.compromise_meter("N1")  # root forges a pass
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 1.0}))
        assert report.w("N3") and not report.w("N1")
        assert "N3" in auditor.inconsistency_alarms(report)

    def test_parent_fails_all_children_pass_alarm(self, fig2):
        """Section V-B rule 2: parent W true, all internal children pass."""
        auditor = BalanceAuditor(fig2)
        auditor.compromise_meter("N3")  # the child hides its failure
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 1.0}))
        assert report.w("N1") and not report.w("N3") and not report.w("N2")
        assert "N1" in auditor.inconsistency_alarms(report)

    def test_no_alarms_for_consistent_failures(self, fig2):
        auditor = BalanceAuditor(fig2)
        report = auditor.audit(snapshot(fig2, reported_overrides={"C4": 1.0}))
        assert auditor.inconsistency_alarms(report) == ()
