"""Tests for impedance-based loss modelling."""

import pytest

from repro.errors import TopologyError
from repro.grid.builder import build_figure2_topology
from repro.grid.losses import FeederSegment, ImpedanceLossModel


@pytest.fixture
def fig2():
    return build_figure2_topology()


class TestFeederSegment:
    def test_i2r_arithmetic(self):
        # 100 kW at 10 kV -> 10 A; loss = 100 * 0.5 / 1000 kW = 0.05 kW.
        segment = FeederSegment(resistance_ohm=0.5, voltage_kv=10.0)
        assert segment.loss_kw(100.0) == pytest.approx(0.05)

    def test_loss_quadratic_in_power(self):
        segment = FeederSegment(resistance_ohm=1.0, voltage_kv=11.0)
        assert segment.loss_kw(200.0) == pytest.approx(
            4.0 * segment.loss_kw(100.0)
        )

    def test_zero_power_zero_loss(self):
        segment = FeederSegment(resistance_ohm=1.0, voltage_kv=11.0)
        assert segment.loss_kw(0.0) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(TopologyError):
            FeederSegment(resistance_ohm=-1.0, voltage_kv=11.0)
        with pytest.raises(TopologyError):
            FeederSegment(resistance_ohm=1.0, voltage_kv=0.0)
        with pytest.raises(TopologyError):
            FeederSegment(resistance_ohm=1.0, voltage_kv=11.0).loss_kw(-5.0)


class TestImpedanceLossModel:
    def test_uniform_model_covers_internal_nodes(self, fig2):
        model = ImpedanceLossModel.uniform(fig2)
        assert set(model.segments) == {"N1", "N2", "N3"}

    def test_losses_assigned_to_loss_leaves(self, fig2):
        model = ImpedanceLossModel.uniform(
            fig2, resistance_ohm=1.0, voltage_kv=10.0
        )
        demands = {"C1": 10.0, "C2": 10.0, "C3": 10.0, "C4": 20.0, "C5": 20.0}
        losses = model.compute_losses(demands)
        assert set(losses) == {"L1", "L2", "L3"}
        # N3 feeds 40 kW -> I = 4 A -> 16 W = 0.016 kW.
        assert losses["L3"] == pytest.approx(0.016)
        # N2 feeds 30 kW -> 0.009 kW.
        assert losses["L2"] == pytest.approx(0.009)
        # N1 feeds 70 kW -> 0.049 kW.
        assert losses["L1"] == pytest.approx(0.049)

    def test_deeper_subtrees_lose_less(self, fig2):
        model = ImpedanceLossModel.uniform(fig2)
        demands = {c: 5.0 for c in fig2.consumers()}
        losses = model.compute_losses(demands)
        assert losses["L1"] > losses["L2"]

    def test_snapshot_balance_with_losses(self, fig2):
        """An honest grid with impedance losses still balances: the
        utility calculates the loss leaves (Section V-A)."""
        from repro.grid.balance import BalanceAuditor

        model = ImpedanceLossModel.uniform(fig2)
        demands = {c: 5.0 for c in fig2.consumers()}
        snapshot = model.snapshot_with_losses(demands)
        auditor = BalanceAuditor(fig2)
        assert not auditor.audit(snapshot).any_failure

    def test_rejects_segment_on_leaf(self, fig2):
        segment = FeederSegment(resistance_ohm=1.0, voltage_kv=11.0)
        with pytest.raises(TopologyError):
            ImpedanceLossModel(topology=fig2, segments={"C1": segment})

    def test_rejects_incomplete_demands(self, fig2):
        model = ImpedanceLossModel.uniform(fig2)
        with pytest.raises(TopologyError):
            model.compute_losses({"C1": 1.0})
