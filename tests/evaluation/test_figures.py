"""Tests for the Figure 3 / Figure 4 data builders."""

import numpy as np
import pytest

from repro.evaluation.config import EvaluationConfig
from repro.evaluation.figures import figure1_tap_demo, figure3_data, figure4_data
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def fig3(paper_dataset):
    cid = paper_dataset.consumers()[0]
    return figure3_data(paper_dataset, cid, EvaluationConfig(n_vectors=2))


@pytest.fixture(scope="module")
def fig4(paper_dataset):
    cid = paper_dataset.consumers()[0]
    return figure4_data(paper_dataset, cid, EvaluationConfig(n_vectors=2))


class TestFigure3:
    def test_series_lengths(self, fig3):
        for key in (
            "actual",
            "band_lower",
            "band_upper",
            "attack_1b",
            "attack_2a2b",
            "attack_3a3b",
        ):
            assert fig3[key].shape == (SLOTS_PER_WEEK,)

    def test_1b_over_reports(self, fig3):
        """Fig 3(a): the neighbour's consumption is over-reported."""
        assert fig3["attack_1b"].mean() > fig3["actual"].mean()

    def test_2a2b_under_reports(self, fig3):
        """Fig 3(b): Mallory's own consumption is under-reported."""
        assert fig3["attack_2a2b"].mean() < fig3["actual"].mean()

    def test_3a3b_preserves_distribution(self, fig3):
        """Fig 3(c): swapped week has the same readings, reordered."""
        assert np.allclose(
            np.sort(fig3["attack_3a3b"]), np.sort(fig3["actual"])
        )

    def test_attacks_respect_band(self, fig3):
        assert np.all(fig3["attack_1b"] <= fig3["band_upper"] + 1e-9)
        assert np.all(
            fig3["attack_2a2b"] >= np.minimum(fig3["band_lower"], 0.0) - 1e-9
        )


class TestFigure4:
    def test_distributions_normalised(self, fig4):
        for key in ("x_distribution", "x1_distribution", "attack_distribution"):
            assert fig4[key].sum() == pytest.approx(1.0)
            assert fig4[key].size == 10

    def test_x1_close_to_x(self, fig4):
        """Fig 4(a): a training week's distribution resembles X."""
        from repro.stats.divergence import kl_divergence

        d_train = kl_divergence(fig4["x1_distribution"], fig4["x_distribution"])
        d_attack = kl_divergence(
            fig4["attack_distribution"], fig4["x_distribution"]
        )
        assert d_attack > d_train

    def test_attack_kld_exceeds_95th_percentile(self, fig4):
        """The Fig 4 caption's headline: the attack week's divergence
        clears the detection threshold."""
        assert fig4["attack_kld"] > fig4["kld_p95"]

    def test_percentiles_ordered(self, fig4):
        assert fig4["kld_p90"] <= fig4["kld_p95"]

    def test_kld_samples_per_training_week(self, fig4, paper_dataset):
        assert fig4["kld_samples"].size == paper_dataset.train_weeks

    def test_bin_edges_count(self, fig4):
        assert fig4["bin_edges"].size == 11


class TestFigure1Demo:
    def test_tap_shortfall(self):
        demo = figure1_tap_demo(tap_kw=2.0)
        assert demo["true_demand_kw"] == 5.0
        assert demo["reported_kw"] == pytest.approx(3.0)
        assert demo["shortfall_kw"] == pytest.approx(2.0)
