"""Integration-grade tests for the per-consumer evaluation runner."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import ConfigurationError, DataError
from repro.evaluation.config import (
    ATTACK_ARIMA_OVER,
    ATTACK_INTEGRATED_OVER,
    ATTACK_SWAP,
    DETECTOR_ARIMA,
    DETECTOR_INTEGRATED,
    DETECTOR_KLD_5,
    EvaluationConfig,
)
from repro.evaluation.experiment import (
    evaluate_consumer,
    run_evaluation,
)


@pytest.fixture(scope="module")
def eval_dataset():
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=8, n_weeks=74, seed=21)
    )


@pytest.fixture(scope="module")
def results(eval_dataset):
    return run_evaluation(eval_dataset, EvaluationConfig(n_vectors=8))


class TestRunEvaluation:
    def test_covers_all_consumers(self, results, eval_dataset):
        assert results.n_consumers == eval_dataset.n_consumers

    def test_arima_detector_never_catches_band_hugging(self, results):
        """Table II row 1: the ARIMA detector detects nothing, because
        every injected vector lies inside its own band."""
        for attack in (ATTACK_ARIMA_OVER, ATTACK_INTEGRATED_OVER, ATTACK_SWAP):
            for evaluation in results.consumers.values():
                assert not evaluation.detected_all[(DETECTOR_ARIMA, attack)]

    def test_integrated_evaded_by_integrated_attack(self, results):
        """Table II row 2: near-zero detection of the 1B Integrated
        ARIMA attack (it is designed to pass the moment checks)."""
        successes = results.successes(DETECTOR_INTEGRATED, ATTACK_INTEGRATED_OVER)
        assert sum(successes) <= len(successes) * 0.25

    def test_integrated_catches_arima_attack(self, results):
        """The Integrated detector's raison d'etre: the plain band-pinned
        ARIMA attack trips its mean check for most consumers."""
        detected = [
            evaluation.detected_all[(DETECTOR_INTEGRATED, ATTACK_ARIMA_OVER)]
            for evaluation in results.consumers.values()
        ]
        assert sum(detected) >= len(detected) * 0.7

    def test_kld_beats_baselines_on_1b(self, results):
        kld = sum(results.successes(DETECTOR_KLD_5, ATTACK_INTEGRATED_OVER))
        integrated = sum(
            results.successes(DETECTOR_INTEGRATED, ATTACK_INTEGRATED_OVER)
        )
        assert kld > integrated

    def test_kld_detects_swap_via_conditioning(self, results):
        kld = sum(results.successes(DETECTOR_KLD_5, ATTACK_SWAP))
        arima = sum(results.successes(DETECTOR_ARIMA, ATTACK_SWAP))
        assert kld > arima

    def test_gains_zero_on_success(self, results):
        for evaluation in results.consumers.values():
            for key, gain in evaluation.worst_gain.items():
                if evaluation.detected_all[key] and not evaluation.false_positive[
                    _fp_key_of(*key)
                ]:
                    assert gain.stolen_kwh == 0.0
                    assert gain.profit_usd == 0.0

    def test_swap_steals_no_energy(self, results):
        for evaluation in results.consumers.values():
            for detector in (DETECTOR_ARIMA, DETECTOR_KLD_5):
                gain = evaluation.worst_gain[(detector, ATTACK_SWAP)]
                assert gain.stolen_kwh == 0.0

    def test_deterministic_across_runs(self, eval_dataset):
        cfg = EvaluationConfig(n_vectors=3)
        cid = eval_dataset.consumers()[0]
        a = evaluate_consumer(
            cid,
            eval_dataset.train_matrix(cid),
            eval_dataset.test_matrix(cid)[0],
            cfg,
        )
        b = evaluate_consumer(
            cid,
            eval_dataset.train_matrix(cid),
            eval_dataset.test_matrix(cid)[0],
            cfg,
        )
        assert a.worst_gain == b.worst_gain
        assert a.detected_all == b.detected_all

    def test_progress_callback(self, eval_dataset):
        seen = []
        run_evaluation(
            eval_dataset,
            EvaluationConfig(n_vectors=2),
            consumers=eval_dataset.consumers()[:2],
            progress=seen.append,
        )
        assert seen == list(eval_dataset.consumers()[:2])

    def test_rejects_empty_consumer_selection(self, eval_dataset):
        with pytest.raises(ConfigurationError):
            run_evaluation(eval_dataset, consumers=())

    def test_rejects_out_of_range_week(self, eval_dataset):
        with pytest.raises(DataError):
            run_evaluation(
                eval_dataset, EvaluationConfig(attack_week_index=99)
            )


def _fp_key_of(detector: str, attack: str) -> str:
    from repro.evaluation.experiment import _fp_key

    return _fp_key(detector, attack)


class TestFalsePositiveSemantics:
    def test_fp_penalty_maximises_gain(self, eval_dataset):
        """Section VIII-E: a false positive forfeits the consumer — the
        attacker's gain is the maximum over all vectors."""
        cfg = EvaluationConfig(n_vectors=4)
        results = run_evaluation(eval_dataset, cfg)
        for evaluation in results.consumers.values():
            for (detector, attack), gain in evaluation.worst_gain.items():
                fp = evaluation.false_positive[_fp_key_of(detector, attack)]
                detected = evaluation.detected_all[(detector, attack)]
                if detected and fp and attack != ATTACK_SWAP:
                    # failed via FP: gain must not be zero unless the
                    # attack itself yields nothing.
                    assert gain.stolen_kwh >= 0.0
