"""Tests for streaming time-to-detection (Section VII-D, X5)."""

import numpy as np
import pytest

from repro.attacks.injection.base import InjectionContext
from repro.attacks.injection.integrated_arima import IntegratedARIMAAttack
from repro.attacks.injection.naive import ScalingAttack
from repro.core.kld import KLDDetector
from repro.detectors.arima_detector import ARIMADetector
from repro.errors import ConfigurationError, DataError
from repro.evaluation.time_to_detection import (
    DetectionLatency,
    streaming_detection,
    summarise_latencies,
)
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def setting(paper_dataset):
    cid = paper_dataset.consumers_by_size()[0]
    train = paper_dataset.train_matrix(cid)
    detector = KLDDetector(significance=0.05).fit(train)
    arima = ARIMADetector(max_violations=16).fit(train)
    lower, upper = arima.confidence_band()
    context = InjectionContext(
        train_matrix=train,
        actual_week=paper_dataset.test_matrix(cid)[0],
        band_lower=lower,
        band_upper=upper,
    )
    return detector, context, train


class TestStreamingDetection:
    def test_strong_attack_detected_early(self, setting, rng):
        """A gross over-report should be caught well inside the week —
        the paper's counter to the 'full week needed' objection."""
        detector, context, train = setting
        attack = ScalingAttack(factor=4.0).inject(context, rng)
        latency = streaming_detection(detector, train[-1], attack.reported)
        assert latency.detected
        assert latency.slots_to_detection < SLOTS_PER_WEEK / 2
        assert latency.hours_to_detection < 84.0

    def test_integrated_attack_detected_within_week(self, setting, rng):
        detector, context, train = setting
        attack = IntegratedARIMAAttack(direction="over").inject(context, rng)
        latency = streaming_detection(detector, train[-1], attack.reported)
        # The week-long upper bound the paper accepts.
        if latency.detected:
            assert 1 <= latency.slots_to_detection <= SLOTS_PER_WEEK

    def test_normal_week_usually_silent(self, setting):
        detector, context, train = setting
        latency = streaming_detection(
            detector, train[-1], context.actual_week
        )
        # The seed week is clean training data; feeding in another
        # normal week should rarely fire (alpha-level behaviour).
        assert latency.scores.size == SLOTS_PER_WEEK

    def test_scores_recorded_per_slot(self, setting, rng):
        detector, context, train = setting
        attack = ScalingAttack(factor=3.0).inject(context, rng)
        latency = streaming_detection(detector, train[-1], attack.reported)
        assert np.all(np.isfinite(latency.scores))

    def test_rejects_wrong_lengths(self, setting):
        detector, _, train = setting
        with pytest.raises(DataError):
            streaming_detection(detector, train[-1][:10], train[-1])


class TestLatencySummary:
    def test_summary_of_mixed_outcomes(self):
        latencies = [
            DetectionLatency(slots_to_detection=10, scores=np.zeros(336)),
            DetectionLatency(slots_to_detection=50, scores=np.zeros(336)),
            DetectionLatency(slots_to_detection=None, scores=np.zeros(336)),
        ]
        summary = summarise_latencies(latencies)
        assert summary.detected_fraction == pytest.approx(2 / 3)
        assert summary.median_hours == pytest.approx(15.0)  # 30 slots
        assert summary.worst_hours == pytest.approx(25.0)

    def test_all_missed(self):
        latencies = [
            DetectionLatency(slots_to_detection=None, scores=np.zeros(336))
        ]
        summary = summarise_latencies(latencies)
        assert summary.detected_fraction == 0.0
        assert summary.median_hours is None

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarise_latencies([])
