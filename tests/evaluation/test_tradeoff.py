"""Tests for the significance-level operating curve."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import ConfigurationError
from repro.evaluation.config import EvaluationConfig
from repro.evaluation.tradeoff import (
    best_operating_point,
    significance_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=8, n_weeks=74, seed=44)
    )
    return significance_sweep(
        dataset,
        dataset.consumers(),
        significances=(0.02, 0.05, 0.10, 0.25),
        config=EvaluationConfig(n_vectors=2),
    )


class TestSignificanceSweep:
    def test_points_sorted_by_significance(self, sweep):
        sigs = [p.significance for p in sweep]
        assert sigs == sorted(sigs)

    def test_detection_monotone_in_aggressiveness(self, sweep):
        """A higher alpha lowers the threshold, so detection cannot
        decrease."""
        rates = [p.detection_rate for p in sweep]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_false_positives_monotone_too(self, sweep):
        rates = [p.false_positive_rate for p in sweep]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_rates_are_probabilities(self, sweep):
        for point in sweep:
            assert 0.0 <= point.detection_rate <= 1.0
            assert 0.0 <= point.false_positive_rate <= 1.0

    def test_operating_points_dominate_fp(self, sweep):
        """At every point the detector beats chance: detection rate
        exceeds the false-positive rate."""
        for point in sweep:
            assert point.detection_rate >= point.false_positive_rate

    def test_best_point_maximises_youden(self, sweep):
        best = best_operating_point(sweep)
        assert best.youden_j == max(p.youden_j for p in sweep)

    def test_rejects_bad_inputs(self):
        dataset = generate_cer_like_dataset(
            SyntheticCERConfig(n_consumers=2, n_weeks=20, seed=1)
        )
        with pytest.raises(ConfigurationError):
            significance_sweep(dataset, ())
        with pytest.raises(ConfigurationError):
            significance_sweep(
                dataset, dataset.consumers(), significances=(0.0,)
            )
        with pytest.raises(ConfigurationError):
            best_operating_point([])
