"""Tests for Table II / Table III builders and the headline statistics."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.evaluation.config import (
    ALL_COLUMNS,
    COLUMN_1B,
    COLUMN_2A2B,
    COLUMN_3A3B,
    DETECTOR_ARIMA,
    DETECTOR_INTEGRATED,
    DETECTOR_KLD_10,
    DETECTOR_KLD_5,
    EvaluationConfig,
)
from repro.evaluation.experiment import run_evaluation
from repro.evaluation.tables import (
    improvement_statistics,
    render_table2,
    render_table3,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def results():
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=12, n_weeks=74, seed=33)
    )
    return run_evaluation(dataset, EvaluationConfig(n_vectors=10))


@pytest.fixture(scope="module")
def rows2(results):
    return table2(results)


@pytest.fixture(scope="module")
def rows3(results):
    return table3(results)


class TestTable2Shape:
    """Assert the qualitative structure of the paper's Table II."""

    def _row(self, rows, detector):
        return next(r for r in rows if r.detector == detector)

    def test_four_rows_three_columns(self, rows2):
        assert len(rows2) == 4
        for row in rows2:
            assert set(row.values) == set(ALL_COLUMNS)

    def test_arima_row_all_zero(self, rows2):
        row = self._row(rows2, DETECTOR_ARIMA)
        assert all(v == 0.0 for v in row.values.values())

    def test_integrated_row_near_zero_on_1b(self, rows2):
        row = self._row(rows2, DETECTOR_INTEGRATED)
        assert row.values[COLUMN_1B] <= 20.0

    def test_kld_dominates_baselines_everywhere(self, rows2):
        kld5 = self._row(rows2, DETECTOR_KLD_5)
        integrated = self._row(rows2, DETECTOR_INTEGRATED)
        for column in (COLUMN_1B, COLUMN_3A3B):
            assert kld5.values[column] > integrated.values[column]

    def test_kld_majority_detection_on_1b(self, rows2):
        kld5 = self._row(rows2, DETECTOR_KLD_5)
        assert kld5.values[COLUMN_1B] >= 60.0


class TestTable3Shape:
    """Assert the qualitative structure of the paper's Table III."""

    def _row(self, rows, detector):
        return next(r for r in rows if r.detector == detector)

    def test_theft_ordering_1b(self, rows3):
        """ARIMA >> Integrated >> KLD in permitted theft (1B)."""
        arima = self._row(rows3, DETECTOR_ARIMA).values[COLUMN_1B].stolen_kwh
        integrated = (
            self._row(rows3, DETECTOR_INTEGRATED).values[COLUMN_1B].stolen_kwh
        )
        kld = min(
            self._row(rows3, DETECTOR_KLD_5).values[COLUMN_1B].stolen_kwh,
            self._row(rows3, DETECTOR_KLD_10).values[COLUMN_1B].stolen_kwh,
        )
        assert arima > integrated > kld

    def test_2a2b_order_of_magnitude_below_1b(self, rows3):
        """The paper's claim: 1B is the most advantageous class."""
        for detector in (DETECTOR_ARIMA, DETECTOR_INTEGRATED):
            row = self._row(rows3, detector)
            assert (
                row.values[COLUMN_1B].stolen_kwh
                > 3 * row.values[COLUMN_2A2B].stolen_kwh
            )

    def test_3a3b_steals_no_energy(self, rows3):
        for row in rows3:
            assert row.values[COLUMN_3A3B].stolen_kwh == 0.0

    def test_3a3b_profit_small(self, rows3):
        """Swap profits are tiny compared to 1B profits (14.3$ vs
        thousands in the paper)."""
        arima = self._row(rows3, DETECTOR_ARIMA)
        assert (
            arima.values[COLUMN_3A3B].profit_usd
            < 0.1 * arima.values[COLUMN_1B].profit_usd
        )


class TestImprovementStatistics:
    def test_staged_reductions(self, rows3):
        stats = improvement_statistics(rows3)
        # Paper: ~78% then ~94.8%.  Assert strong staged reductions.
        assert stats.integrated_over_arima > 50.0
        assert stats.kld_over_integrated > 50.0

    def test_best_detector_is_a_kld(self, rows3):
        stats = improvement_statistics(rows3)
        assert stats.best_kld_detector in (DETECTOR_KLD_5, DETECTOR_KLD_10)


class TestRendering:
    def test_table2_text(self, rows2):
        text = render_table2(rows2)
        assert "ARIMA detector" in text
        assert "KLD detector (5% significance)" in text
        assert "%" in text

    def test_table3_text(self, rows3):
        text = render_table3(rows3)
        assert "Stolen (kWh)" in text
        assert "Profit ($)" in text
        for column in ALL_COLUMNS:
            assert column in text
