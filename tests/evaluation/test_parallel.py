"""Tests for the process-parallel evaluation runner."""

import io
import json

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import ConfigurationError, DataError
from repro.evaluation.config import EvaluationConfig
from repro.evaluation.experiment import run_evaluation
from repro.evaluation.parallel import run_evaluation_parallel
from repro.observability.events import EventLogger
from repro.observability.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=4, n_weeks=74, seed=66)
    )


class TestParallelRunner:
    def test_identical_to_serial(self, tiny_dataset):
        """Per-consumer RNG derivation makes parallel results
        bit-identical to serial ones."""
        cfg = EvaluationConfig(n_vectors=3)
        serial = run_evaluation(tiny_dataset, cfg)
        parallel = run_evaluation_parallel(tiny_dataset, cfg, max_workers=2)
        assert set(serial.consumers) == set(parallel.consumers)
        for cid in serial.consumers:
            s = serial.consumers[cid]
            p = parallel.consumers[cid]
            assert s.detected_all == p.detected_all
            assert s.false_positive == p.false_positive
            assert s.worst_gain == p.worst_gain

    def test_single_worker_runs_inline(self, tiny_dataset):
        cfg = EvaluationConfig(n_vectors=2)
        results = run_evaluation_parallel(tiny_dataset, cfg, max_workers=1)
        assert results.n_consumers == tiny_dataset.n_consumers

    def test_consumer_subset(self, tiny_dataset):
        cfg = EvaluationConfig(n_vectors=2)
        subset = tiny_dataset.consumers()[:2]
        results = run_evaluation_parallel(
            tiny_dataset, cfg, consumers=subset, max_workers=2
        )
        assert set(results.consumers) == set(subset)

    def test_rejects_bad_worker_count(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            run_evaluation_parallel(tiny_dataset, max_workers=0)

    def test_rejects_empty_selection(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            run_evaluation_parallel(tiny_dataset, consumers=())

    def test_rejects_bad_week_index(self, tiny_dataset):
        with pytest.raises(DataError):
            run_evaluation_parallel(
                tiny_dataset, EvaluationConfig(attack_week_index=99)
            )

    def test_rejects_bad_timeouts(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            run_evaluation_parallel(tiny_dataset, job_timeout_s=0)
        with pytest.raises(ConfigurationError):
            run_evaluation_parallel(tiny_dataset, batch_deadline_s=-1.0)


class TestTimeoutFallback:
    def test_batch_deadline_falls_back_to_serial(self, tiny_dataset):
        """A batch deadline the pool cannot possibly meet must degrade
        parallelism, never coverage: every consumer still gets evaluated
        (serially, in the parent) and results match the serial runner."""
        cfg = EvaluationConfig(n_vectors=2)
        metrics = MetricsRegistry()
        stream = io.StringIO()
        events = EventLogger(stream=stream)
        results = run_evaluation_parallel(
            tiny_dataset,
            cfg,
            max_workers=2,
            batch_deadline_s=1e-6,
            metrics=metrics,
            events=events,
        )
        assert results.n_consumers == tiny_dataset.n_consumers
        serial = run_evaluation(tiny_dataset, cfg)
        for cid in serial.consumers:
            assert (
                results.consumers[cid].detected_all
                == serial.consumers[cid].detected_all
            )
        totals = metrics.totals()
        assert totals[("fdeta_parallel_eval_timeouts_total", ())] == 1
        assert (
            totals[("fdeta_parallel_eval_fallback_total", ())]
            == tiny_dataset.n_consumers
        )
        logged = [json.loads(line) for line in stream.getvalue().splitlines()]
        timeout_events = [
            e for e in logged if e["event"] == "parallel_eval_timeout"
        ]
        assert len(timeout_events) == 1
        assert timeout_events[0]["fallback"] == tiny_dataset.n_consumers

    def test_job_timeout_still_completes_every_consumer(self, tiny_dataset):
        # Whether the first future beats a microscopic timeout is a
        # race; either way the contract is completeness.
        results = run_evaluation_parallel(
            tiny_dataset,
            EvaluationConfig(n_vectors=2),
            max_workers=2,
            job_timeout_s=1e-9,
        )
        assert set(results.consumers) == set(tiny_dataset.consumers())

    def test_generous_deadline_never_triggers_fallback(self, tiny_dataset):
        metrics = MetricsRegistry()
        results = run_evaluation_parallel(
            tiny_dataset,
            EvaluationConfig(n_vectors=2),
            max_workers=2,
            job_timeout_s=600.0,
            batch_deadline_s=600.0,
            metrics=metrics,
        )
        assert results.n_consumers == tiny_dataset.n_consumers
        assert ("fdeta_parallel_eval_timeouts_total", ()) not in metrics.totals()
