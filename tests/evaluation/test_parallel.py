"""Tests for the process-parallel evaluation runner."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import ConfigurationError, DataError
from repro.evaluation.config import EvaluationConfig
from repro.evaluation.experiment import run_evaluation
from repro.evaluation.parallel import run_evaluation_parallel


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=4, n_weeks=74, seed=66)
    )


class TestParallelRunner:
    def test_identical_to_serial(self, tiny_dataset):
        """Per-consumer RNG derivation makes parallel results
        bit-identical to serial ones."""
        cfg = EvaluationConfig(n_vectors=3)
        serial = run_evaluation(tiny_dataset, cfg)
        parallel = run_evaluation_parallel(tiny_dataset, cfg, max_workers=2)
        assert set(serial.consumers) == set(parallel.consumers)
        for cid in serial.consumers:
            s = serial.consumers[cid]
            p = parallel.consumers[cid]
            assert s.detected_all == p.detected_all
            assert s.false_positive == p.false_positive
            assert s.worst_gain == p.worst_gain

    def test_single_worker_runs_inline(self, tiny_dataset):
        cfg = EvaluationConfig(n_vectors=2)
        results = run_evaluation_parallel(tiny_dataset, cfg, max_workers=1)
        assert results.n_consumers == tiny_dataset.n_consumers

    def test_consumer_subset(self, tiny_dataset):
        cfg = EvaluationConfig(n_vectors=2)
        subset = tiny_dataset.consumers()[:2]
        results = run_evaluation_parallel(
            tiny_dataset, cfg, consumers=subset, max_workers=2
        )
        assert set(results.consumers) == set(subset)

    def test_rejects_bad_worker_count(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            run_evaluation_parallel(tiny_dataset, max_workers=0)

    def test_rejects_empty_selection(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            run_evaluation_parallel(tiny_dataset, consumers=())

    def test_rejects_bad_week_index(self, tiny_dataset):
        with pytest.raises(DataError):
            run_evaluation_parallel(
                tiny_dataset, EvaluationConfig(attack_week_index=99)
            )
