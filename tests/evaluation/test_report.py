"""Tests for the markdown evaluation report."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.evaluation.config import EvaluationConfig
from repro.evaluation.experiment import run_evaluation
from repro.evaluation.report import render_markdown_report


@pytest.fixture(scope="module")
def report():
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=5, n_weeks=74, seed=88)
    )
    results = run_evaluation(dataset, EvaluationConfig(n_vectors=4))
    return render_markdown_report(results)


class TestReport:
    def test_has_title_and_sections(self, report):
        assert report.startswith("# F-DETA evaluation report")
        assert "## Table II" in report
        assert "## Table III" in report
        assert "## Headlines" in report
        assert "## Run configuration" in report

    def test_configuration_recorded(self, report):
        assert "consumers evaluated: 5" in report
        assert "attack trajectories per stochastic attack: 4" in report
        assert "peak 0.21 $/kWh" in report

    def test_all_detectors_listed(self, report):
        for label in (
            "ARIMA detector",
            "Integrated ARIMA detector",
            "KLD detector (5% significance)",
            "KLD detector (10% significance)",
        ):
            assert label in report

    def test_markdown_tables_well_formed(self, report):
        table_lines = [l for l in report.splitlines() if l.startswith("|")]
        assert table_lines, "expected markdown tables"
        # Consistent column counts within each table block.
        widths = {line.count("|") for line in table_lines}
        assert len(widths) <= 2  # Table II and Table III widths

    def test_headline_percentages_present(self, report):
        assert "%** relative to the ARIMA" in report
        assert "paper: ~94.8%" in report
