"""Cross-module consistency checks on the evaluation constants.

These guard the wiring between the config key universe, the table
builders, and the experiment runner — the places where adding a detector
or attack without updating a sibling constant would silently skew the
reproduced tables.
"""

from repro.evaluation.config import (
    ALL_ATTACKS,
    ALL_COLUMNS,
    ALL_DETECTORS,
    ATTACK_SWAP,
    COLUMN_3A3B,
)
from repro.evaluation.tables import (
    DETECTOR_LABELS,
    TABLE2_ATTACK_BY_COLUMN,
    _table3_attack,
)


class TestKeyUniverseConsistency:
    def test_every_detector_has_a_label(self):
        assert set(DETECTOR_LABELS) == set(ALL_DETECTORS)

    def test_table2_covers_every_column(self):
        assert set(TABLE2_ATTACK_BY_COLUMN) == set(ALL_COLUMNS)

    def test_table2_attacks_exist(self):
        for attack in TABLE2_ATTACK_BY_COLUMN.values():
            assert attack in ALL_ATTACKS

    def test_table3_attack_mapping_total(self):
        """Every (detector, column) pair resolves to a real attack key."""
        for detector in ALL_DETECTORS:
            for column in ALL_COLUMNS:
                assert _table3_attack(detector, column) in ALL_ATTACKS

    def test_swap_column_always_uses_swap_attack(self):
        for detector in ALL_DETECTORS:
            assert _table3_attack(detector, COLUMN_3A3B) == ATTACK_SWAP

    def test_labels_match_paper_rows(self):
        labels = list(DETECTOR_LABELS.values())
        assert "ARIMA detector" in labels
        assert "Integrated ARIMA detector" in labels
        assert sum("KLD detector" in label for label in labels) == 2
