"""Tests for the false-positive protocol study."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import ConfigurationError
from repro.evaluation.fp_protocols import false_positive_study


@pytest.fixture(scope="module")
def fp_dataset():
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=15, n_weeks=74, seed=99)
    )


class TestFalsePositiveProtocols:
    def test_rates_ordered(self, fp_dataset):
        study = false_positive_study(fp_dataset, significance=0.10)
        # Strict (any-week) >= single-week by definition.
        assert study.any_week_rate >= study.single_week_rate
        assert 0.0 <= study.per_week_rate <= 1.0

    def test_per_week_rate_near_alpha(self, fp_dataset):
        """Pooled over consumer-weeks, the KLD flag rate should sit in
        the neighbourhood of the significance level."""
        study = false_positive_study(fp_dataset, significance=0.10)
        assert study.per_week_rate == pytest.approx(0.10, abs=0.10)

    def test_strict_protocol_compounds(self, fp_dataset):
        """The EXPERIMENTS.md deviation claim, verified: scoring all 14
        test weeks inflates per-consumer false positives well beyond the
        single-week protocol."""
        study = false_positive_study(fp_dataset, significance=0.10)
        if study.single_week_rate > 0:
            assert study.compounding_factor >= 1.0
        # At alpha=10% over 14 weeks, most consumers trip at least once.
        assert study.any_week_rate >= 0.4

    def test_lower_alpha_fewer_fps(self, fp_dataset):
        strict = false_positive_study(fp_dataset, significance=0.02)
        loose = false_positive_study(fp_dataset, significance=0.20)
        assert strict.per_week_rate <= loose.per_week_rate

    def test_rejects_empty_consumers(self, fp_dataset):
        with pytest.raises(ConfigurationError):
            false_positive_study(fp_dataset, consumers=())
