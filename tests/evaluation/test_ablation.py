"""Tests for the ablation studies."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import ConfigurationError
from repro.evaluation.ablation import (
    bin_count_sweep,
    divergence_sweep,
    training_size_sweep,
)


@pytest.fixture(scope="module")
def ablation_dataset():
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=6, n_weeks=74, seed=55)
    )


@pytest.fixture(scope="module")
def consumers(ablation_dataset):
    return ablation_dataset.consumers()[:4]


class TestBinCountSweep:
    def test_sweep_shape(self, ablation_dataset, consumers):
        points = bin_count_sweep(
            ablation_dataset, consumers, bin_counts=(4, 10, 20)
        )
        assert [p.parameter for p in points] == [4.0, 10.0, 20.0]
        for point in points:
            assert 0.0 <= point.detection_rate <= 1.0
            assert 0.0 <= point.false_positive_rate <= 1.0

    def test_ten_bins_detects_majority(self, ablation_dataset, consumers):
        """The paper's operating point (B=10) must detect the Integrated
        ARIMA attack for most consumers."""
        points = bin_count_sweep(
            ablation_dataset, consumers, bin_counts=(10,)
        )
        assert points[0].detection_rate >= 0.5

    def test_rejects_empty_consumers(self, ablation_dataset):
        with pytest.raises(ConfigurationError):
            bin_count_sweep(ablation_dataset, ())


class TestDivergenceSweep:
    def test_both_divergences_evaluated(self, ablation_dataset, consumers):
        results = divergence_sweep(ablation_dataset, consumers)
        assert set(results) == {"kl", "js"}

    def test_kl_detects_majority(self, ablation_dataset, consumers):
        results = divergence_sweep(ablation_dataset, consumers)
        assert results["kl"].detection_rate >= 0.5


class TestTrainingSizeSweep:
    def test_points_for_feasible_sizes(self, ablation_dataset, consumers):
        points = training_size_sweep(
            ablation_dataset, consumers, training_weeks=(8, 30, 60)
        )
        assert [p.parameter for p in points] == [8.0, 30.0, 60.0]

    def test_infeasible_sizes_skipped(self, ablation_dataset, consumers):
        points = training_size_sweep(
            ablation_dataset, consumers, training_weeks=(1000,)
        )
        assert points == []
