"""Unit tests for the evaluation configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.config import (
    ALL_ATTACKS,
    ALL_COLUMNS,
    ALL_DETECTORS,
    EvaluationConfig,
)


class TestEvaluationConfig:
    def test_paper_defaults(self):
        cfg = EvaluationConfig()
        assert cfg.n_vectors == 50
        assert cfg.bins == 10
        assert cfg.significances == (0.05, 0.10)
        assert cfg.pricing.peak_rate == 0.21
        assert cfg.pricing.offpeak_rate == 0.18

    def test_rejects_zero_vectors(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(n_vectors=0)

    def test_rejects_negative_week_index(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(attack_week_index=-1)

    def test_rejects_bad_significances(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(significances=(0.05,))
        with pytest.raises(ConfigurationError):
            EvaluationConfig(significances=(0.0, 0.1))


class TestKeyUniverse:
    def test_four_detectors(self):
        assert len(ALL_DETECTORS) == 4

    def test_five_attacks(self):
        assert len(ALL_ATTACKS) == 5

    def test_three_columns(self):
        assert ALL_COLUMNS == ("1B", "2A/2B", "3A/3B")
