"""Tests for the multi-attacker study (paper's future work)."""

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.multi_attacker import run_multi_attacker_study


class TestMultiAttacker:
    def test_balance_silent_for_any_k(self, paper_dataset):
        for k in (1, 2, 3):
            outcome = run_multi_attacker_study(
                paper_dataset, n_attackers=k, seed=k
            )
            assert outcome.balance_check_silent
            assert outcome.n_attackers == k
            assert outcome.total_stolen_kwh > 0

    def test_strong_thefts_flag_victims(self, paper_dataset):
        outcome = run_multi_attacker_study(
            paper_dataset, n_attackers=3, steal_fraction=2.0, seed=1
        )
        # A 2x-mean constant over-report deforms the victims' weekly
        # distributions; the KLD layer should flag most of them.
        assert outcome.victims_flagged >= 2

    def test_attackers_themselves_look_normal(self, paper_dataset):
        """Class 1B: the attackers' *reported* weeks are untouched, so
        they should rarely be flagged — triage points at victims."""
        outcome = run_multi_attacker_study(
            paper_dataset, n_attackers=3, steal_fraction=2.0, seed=1
        )
        assert outcome.attackers_flagged <= outcome.victims_flagged

    def test_more_attackers_steal_more(self, paper_dataset):
        small = run_multi_attacker_study(paper_dataset, n_attackers=1, seed=4)
        large = run_multi_attacker_study(paper_dataset, n_attackers=4, seed=4)
        assert large.total_stolen_kwh > small.total_stolen_kwh

    def test_rejects_zero_attackers(self, paper_dataset):
        with pytest.raises(ConfigurationError):
            run_multi_attacker_study(paper_dataset, n_attackers=0)

    def test_rejects_too_many_attackers(self, paper_dataset):
        with pytest.raises(ConfigurationError):
            run_multi_attacker_study(
                paper_dataset, n_attackers=paper_dataset.n_consumers
            )

    def test_rejects_bad_fraction(self, paper_dataset):
        with pytest.raises(ConfigurationError):
            run_multi_attacker_study(
                paper_dataset, n_attackers=1, steal_fraction=0.0
            )
