"""Unit tests for Metric 1 / Metric 2 aggregation."""

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.config import COLUMN_1B, COLUMN_2A2B, COLUMN_3A3B
from repro.evaluation.metrics import GainRecord, ZERO_GAIN, metric1, metric2


class TestGainRecord:
    def test_max_with(self):
        a = GainRecord(stolen_kwh=10.0, profit_usd=1.0)
        b = GainRecord(stolen_kwh=5.0, profit_usd=2.0)
        combined = a.max_with(b)
        assert combined.stolen_kwh == 10.0
        assert combined.profit_usd == 2.0

    def test_plus(self):
        a = GainRecord(stolen_kwh=10.0, profit_usd=1.0)
        b = GainRecord(stolen_kwh=5.0, profit_usd=2.0)
        total = a.plus(b)
        assert total.stolen_kwh == 15.0
        assert total.profit_usd == 3.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            GainRecord(stolen_kwh=-1.0)

    def test_zero_gain_identity(self):
        a = GainRecord(stolen_kwh=3.0, profit_usd=4.0)
        assert ZERO_GAIN.plus(a) == a
        assert ZERO_GAIN.max_with(a) == a


class TestMetric1:
    def test_percentage(self):
        assert metric1([True, True, False, False]) == 50.0

    def test_all_success(self):
        assert metric1([True] * 10) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            metric1([])


class TestMetric2:
    GAINS = {
        "a": GainRecord(stolen_kwh=100.0, profit_usd=20.0),
        "b": GainRecord(stolen_kwh=50.0, profit_usd=30.0),
        "c": ZERO_GAIN,
    }

    def test_1b_sums_over_consumers(self):
        """1B steals from all neighbours simultaneously."""
        total = metric2(self.GAINS, COLUMN_1B)
        assert total.stolen_kwh == 150.0
        assert total.profit_usd == 50.0

    def test_2a2b_takes_maximum(self):
        worst = metric2(self.GAINS, COLUMN_2A2B)
        assert worst.stolen_kwh == 100.0
        assert worst.profit_usd == 30.0

    def test_3a3b_takes_maximum(self):
        worst = metric2(self.GAINS, COLUMN_3A3B)
        assert worst.profit_usd == 30.0

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigurationError):
            metric2(self.GAINS, "5C")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            metric2({}, COLUMN_1B)
