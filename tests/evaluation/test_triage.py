"""Tests for F-DETA step-3 triage quality."""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import ConfigurationError
from repro.evaluation.config import EvaluationConfig
from repro.evaluation.triage import run_triage_study


@pytest.fixture(scope="module")
def study():
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=10, n_weeks=74, seed=71)
    )
    return run_triage_study(dataset, config=EvaluationConfig(n_vectors=2))


class TestTriageStudy:
    def test_victims_triaged_as_victims(self, study):
        """Proposition 2 operationalised: over-reported weeks point at
        the robbed neighbour, not at the meter's owner as a thief."""
        assert study.victims.flagged >= study.victims.total * 0.5
        assert study.victims.triage_accuracy >= 0.8

    def test_attackers_triaged_as_attackers(self, study):
        assert study.attackers.flagged >= study.attackers.total * 0.4
        assert study.attackers.triage_accuracy >= 0.8

    def test_counts_consistent(self, study):
        for outcome in (study.victims, study.attackers, study.swaps):
            assert outcome.correctly_triaged <= outcome.flagged <= outcome.total

    def test_swap_rarely_flagged_by_level_detector(self, study):
        """A swap preserves the reading distribution, so the
        unconditioned KLD framework flags it only as often as it flags
        normal weeks — catching swaps is the conditional detector's job
        (Section VIII-F3).  Triage of such incidental flags tracks the
        week's natural level and is not asserted."""
        assert study.swaps.flagged <= study.swaps.total * 0.4

    def test_rejects_empty_consumers(self):
        dataset = generate_cer_like_dataset(
            SyntheticCERConfig(n_consumers=2, n_weeks=20, seed=1)
        )
        with pytest.raises(ConfigurationError):
            run_triage_study(dataset, consumers=())
