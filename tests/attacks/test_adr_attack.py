"""Unit tests for the Attack Class 4B ADR price attack."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.adr_attack import ADRPriceAttack
from repro.errors import InjectionError
from repro.pricing.adr import ElasticConsumer
from repro.pricing.billing import neighbour_loss, perceived_benefit
from repro.pricing.schemes import FlatRatePricing, RealTimePricing
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture
def rtp():
    return RealTimePricing.simulate(
        n_slots=SLOTS_PER_WEEK, update_period=2, seed=3
    )


class TestADRAttack:
    def test_victim_consumes_less_than_reported(
        self, injection_context, rtp, rng
    ):
        """The 4B condition: D_n(t) < D'_n(t) at every attacked slot."""
        attack = ADRPriceAttack(pricing=rtp, price_multiplier=1.5)
        vector = attack.inject(injection_context, rng)
        assert np.all(vector.actual < vector.reported)

    def test_classified_4b(self, injection_context, rtp, rng):
        vector = ADRPriceAttack(pricing=rtp).inject(injection_context, rng)
        assert vector.attack_class is AttackClass.CLASS_4B

    def test_mallory_gains_what_victim_loses(self, injection_context, rtp, rng):
        attack = ADRPriceAttack(pricing=rtp, price_multiplier=2.0)
        vector = attack.inject(injection_context, rng)
        loss = neighbour_loss(vector.actual, vector.reported, rtp)
        assert vector.profit(rtp) == pytest.approx(loss)
        assert loss > 0

    def test_victim_perceives_a_benefit(self, injection_context, rtp, rng):
        """Eq (11): billed at the true price, the victim thinks he won."""
        attack = ADRPriceAttack(pricing=rtp, price_multiplier=1.8)
        vector = attack.inject(injection_context, rng)
        forged = attack.compromised_prices()
        delta_b = perceived_benefit(
            vector.reported, rtp.price_vector(SLOTS_PER_WEEK), forged
        )
        assert delta_b > 0

    def test_stronger_multiplier_steals_more(self, injection_context, rtp, rng):
        weak = ADRPriceAttack(pricing=rtp, price_multiplier=1.2).inject(
            injection_context, rng
        )
        strong = ADRPriceAttack(pricing=rtp, price_multiplier=2.0).inject(
            injection_context, rng
        )
        assert strong.profit(rtp) > weak.profit(rtp)

    def test_elasticity_controls_suppression(self, injection_context, rtp, rng):
        inelastic = ADRPriceAttack(
            pricing=rtp,
            consumer=ElasticConsumer(elasticity=-0.1),
            price_multiplier=1.5,
        ).inject(injection_context, rng)
        elastic = ADRPriceAttack(
            pricing=rtp,
            consumer=ElasticConsumer(elasticity=-0.8),
            price_multiplier=1.5,
        ).inject(injection_context, rng)
        assert elastic.profit(rtp) > inelastic.profit(rtp)

    def test_balance_preserved_with_mallory_consumption(
        self, injection_context, rtp, rng
    ):
        """Mallory consumes exactly the suppressed load, so the parent
        node's aggregate matches the reported aggregate."""
        attack = ADRPriceAttack(pricing=rtp)
        vector = attack.inject(injection_context, rng)
        extra = attack.mallory_extra_consumption(vector)
        assert np.allclose(vector.actual + extra, vector.reported)

    def test_rejects_flat_rate(self):
        with pytest.raises(InjectionError):
            ADRPriceAttack(pricing=FlatRatePricing())

    def test_rejects_multiplier_below_one(self, rtp):
        with pytest.raises(InjectionError):
            ADRPriceAttack(pricing=rtp, price_multiplier=0.9)
