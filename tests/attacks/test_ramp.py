"""Tests for the boiling-frog ramp attack."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.ramp import BoilingFrogRampAttack
from repro.errors import InjectionError


class TestSchedule:
    def test_factors_decay_monotonically_to_the_floor(self):
        attack = BoilingFrogRampAttack(weekly_decay=0.9, floor=0.5)
        factors = attack.factors(20)
        assert factors[0] == 1.0
        assert np.all(np.diff(factors) <= 0)
        assert factors.min() == pytest.approx(0.5)
        assert factors[-1] == pytest.approx(0.5)

    def test_weeks_to_floor_matches_the_schedule(self):
        attack = BoilingFrogRampAttack(weekly_decay=0.9, floor=0.5)
        k = attack.weeks_to_floor()
        assert attack.factor_for_week(k) == pytest.approx(attack.floor)
        assert attack.factor_for_week(k - 1) > attack.floor

    def test_factor_before_start_is_honest(self):
        attack = BoilingFrogRampAttack()
        assert attack.factor_for_week(-3) == 1.0

    def test_each_step_is_individually_unremarkable(self):
        # The whole point of the ramp: consecutive weeks differ by at
        # most the decay factor, far inside benign weekly variation.
        attack = BoilingFrogRampAttack(weekly_decay=0.95, floor=0.4)
        factors = attack.factors(30)
        ratios = factors[1:] / factors[:-1]
        assert ratios.min() >= 0.95 - 1e-12


class TestPoisonSeries:
    def test_prefix_untouched_and_weeks_scaled(self):
        attack = BoilingFrogRampAttack(weekly_decay=0.9, floor=0.5)
        series = np.ones(5 * 4, dtype=float)
        poisoned = attack.poison_series(series, start_slot=8, slots_per_week=4)
        assert np.array_equal(poisoned[:8], np.ones(8))
        # Week counter starts at the week containing start_slot.
        assert np.allclose(poisoned[8:12], 1.0)  # k=0
        assert np.allclose(poisoned[12:16], 0.9)  # k=1
        assert np.allclose(poisoned[16:20], 0.81)  # k=2

    def test_mid_week_start_scales_the_containing_week(self):
        attack = BoilingFrogRampAttack(weekly_decay=0.9, floor=0.5)
        series = np.ones(12, dtype=float)
        poisoned = attack.poison_series(series, start_slot=6, slots_per_week=4)
        assert np.array_equal(poisoned[:6], np.ones(6))
        assert np.allclose(poisoned[6:8], 1.0)  # tail of week k=0
        assert np.allclose(poisoned[8:12], 0.9)

    def test_input_is_not_mutated(self):
        attack = BoilingFrogRampAttack()
        series = np.ones(672, dtype=float)
        attack.poison_series(series, start_slot=0)
        assert np.array_equal(series, np.ones(672))

    def test_bad_arguments_raise(self):
        attack = BoilingFrogRampAttack()
        with pytest.raises(InjectionError):
            attack.poison_series(np.ones(4), start_slot=-1)
        with pytest.raises(InjectionError):
            attack.poison_series(np.ones(4), start_slot=0, slots_per_week=0)
        with pytest.raises(InjectionError):
            attack.factors(-1)


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"weekly_decay": 0.0},
        {"weekly_decay": 1.0},
        {"floor": 0.0},
        {"floor": 1.0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(InjectionError):
            BoilingFrogRampAttack(**kwargs)

    def test_taxonomy_contract(self, injection_context, rng):
        attack = BoilingFrogRampAttack(weekly_decay=0.95, floor=0.6)
        assert attack.attack_class is AttackClass.CLASS_2A
        vector = attack.inject(injection_context, rng)
        assert np.allclose(
            vector.reported, injection_context.actual_week * 0.6
        )
        assert vector.attack_class is AttackClass.CLASS_2A
