"""Unit tests for Propositions 1 and 2 as executable checks."""

import numpy as np
import pytest

from repro.attacks.model import (
    balance_check_holds,
    proposition1_witnesses,
    proposition2_witnesses,
    verify_proposition1,
    verify_proposition2,
)
from repro.errors import ConfigurationError
from repro.pricing.schemes import FlatRatePricing, TimeOfUsePricing


class TestProposition1:
    def test_witnesses_found_under_theft(self):
        actual = np.array([2.0, 3.0, 2.0])
        reported = np.array([2.0, 1.0, 2.0])
        witnesses = proposition1_witnesses(actual, reported)
        assert witnesses.tolist() == [1]

    def test_holds_for_any_theft(self, rng):
        """Randomised check: whenever profit > 0, a witness exists."""
        for _ in range(100):
            actual = rng.uniform(0, 3, size=20)
            reported = rng.uniform(0, 3, size=20)
            assert verify_proposition1(actual, reported, FlatRatePricing(0.2))

    def test_holds_vacuously_without_theft(self):
        actual = np.array([1.0, 1.0])
        reported = np.array([2.0, 2.0])  # over-reporting: no theft
        assert verify_proposition1(actual, reported, FlatRatePricing())

    def test_holds_under_tou(self, rng):
        tariff = TimeOfUsePricing()
        for _ in range(50):
            actual = rng.uniform(0, 3, size=48)
            reported = rng.uniform(0, 3, size=48)
            assert verify_proposition1(actual, reported, tariff)

    def test_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            proposition1_witnesses(np.ones(2), np.ones(3))


class TestBalanceCheck:
    def test_balanced_attack(self):
        attacker_actual = np.array([5.0, 5.0])
        attacker_reported = np.array([2.0, 2.0])
        neighbours_actual = {"n1": np.array([1.0, 1.0])}
        neighbours_reported = {"n1": np.array([4.0, 4.0])}
        assert balance_check_holds(
            attacker_actual,
            attacker_reported,
            neighbours_actual,
            neighbours_reported,
        )

    def test_unbalanced_attack(self):
        assert not balance_check_holds(
            np.array([5.0]),
            np.array([2.0]),
            {"n1": np.array([1.0])},
            {"n1": np.array([1.0])},
        )


class TestProposition2:
    def test_witnesses_identify_victim(self):
        neighbours_actual = {"n1": np.array([1.0, 1.0]), "n2": np.array([2.0, 2.0])}
        neighbours_reported = {"n1": np.array([1.0, 3.0]), "n2": np.array([2.0, 2.0])}
        witnesses = proposition2_witnesses(neighbours_actual, neighbours_reported)
        assert set(witnesses) == {"n1"}
        assert witnesses["n1"].tolist() == [1]

    def test_holds_for_balanced_theft(self):
        attacker_actual = np.array([5.0, 6.0])
        attacker_reported = np.array([2.0, 2.0])
        neighbours_actual = {"n1": np.array([1.0, 1.0])}
        neighbours_reported = {"n1": np.array([4.0, 5.0])}
        assert verify_proposition2(
            attacker_actual,
            attacker_reported,
            neighbours_actual,
            neighbours_reported,
            FlatRatePricing(0.2),
        )

    def test_randomised_balanced_thefts_always_have_witness(self, rng):
        """Construct balanced thefts and confirm a neighbour is always
        over-reported, as Proposition 2 demands."""
        for _ in range(50):
            attacker_actual = rng.uniform(1, 3, size=10)
            steal = rng.uniform(0.1, 1.0, size=10)
            attacker_reported = np.maximum(attacker_actual - steal, 0.0)
            delta = attacker_actual - attacker_reported
            neighbours_actual = {"n1": rng.uniform(1, 2, size=10)}
            neighbours_reported = {"n1": neighbours_actual["n1"] + delta}
            assert verify_proposition2(
                attacker_actual,
                attacker_reported,
                neighbours_actual,
                neighbours_reported,
                FlatRatePricing(0.2),
            )
            witnesses = proposition2_witnesses(
                neighbours_actual, neighbours_reported
            )
            assert "n1" in witnesses

    def test_vacuous_when_unbalanced(self):
        assert verify_proposition2(
            np.array([5.0]),
            np.array([2.0]),
            {"n1": np.array([1.0])},
            {"n1": np.array([1.0])},  # no over-report, but also unbalanced
            FlatRatePricing(0.2),
        )

    def test_rejects_mismatched_neighbour_sets(self):
        with pytest.raises(ConfigurationError):
            proposition2_witnesses(
                {"n1": np.ones(2)}, {"n2": np.ones(2)}
            )
