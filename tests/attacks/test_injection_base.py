"""Unit tests for the injection framework value objects."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.base import AttackVector, InjectionContext
from repro.errors import InjectionError
from repro.pricing.schemes import FlatRatePricing, TimeOfUsePricing
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestInjectionContext:
    def test_valid_context(self, injection_context):
        assert injection_context.train_matrix.shape[1] == SLOTS_PER_WEEK
        assert injection_context.actual_week.size == SLOTS_PER_WEEK

    def test_weekly_moments(self, injection_context):
        means = injection_context.weekly_means
        assert means.size == injection_context.train_matrix.shape[0]
        assert np.all(injection_context.weekly_variances >= 0)

    def test_rejects_wrong_week_length(self, rng):
        with pytest.raises(InjectionError):
            InjectionContext(
                train_matrix=rng.uniform(size=(3, SLOTS_PER_WEEK)),
                actual_week=rng.uniform(size=10),
                band_lower=np.zeros(SLOTS_PER_WEEK),
                band_upper=np.ones(SLOTS_PER_WEEK),
            )

    def test_rejects_inverted_band(self, rng):
        with pytest.raises(InjectionError):
            InjectionContext(
                train_matrix=rng.uniform(size=(3, SLOTS_PER_WEEK)),
                actual_week=rng.uniform(size=SLOTS_PER_WEEK),
                band_lower=np.ones(SLOTS_PER_WEEK),
                band_upper=np.zeros(SLOTS_PER_WEEK),
            )


class TestAttackVector:
    def _vector(self, attack_class, reported, actual):
        return AttackVector(
            attack_class=attack_class, reported=reported, actual=actual
        )

    def test_stolen_kwh_1b_over_report(self):
        actual = np.full(SLOTS_PER_WEEK, 1.0)
        reported = np.full(SLOTS_PER_WEEK, 1.5)
        vector = self._vector(AttackClass.CLASS_1B, reported, actual)
        # 0.5 kW over-reported for 336 half-hours = 84 kWh.
        assert vector.stolen_kwh() == pytest.approx(84.0)

    def test_stolen_kwh_2a_under_report(self):
        actual = np.full(SLOTS_PER_WEEK, 2.0)
        reported = np.full(SLOTS_PER_WEEK, 1.0)
        vector = self._vector(AttackClass.CLASS_2A, reported, actual)
        assert vector.stolen_kwh() == pytest.approx(168.0)

    def test_stolen_kwh_3a_zero(self):
        actual = np.full(SLOTS_PER_WEEK, 2.0)
        reported = actual[::-1].copy()
        vector = self._vector(AttackClass.CLASS_3A, reported, actual)
        assert vector.stolen_kwh() == 0.0

    def test_profit_1b_equals_neighbour_loss(self):
        actual = np.full(SLOTS_PER_WEEK, 1.0)
        reported = np.full(SLOTS_PER_WEEK, 2.0)
        vector = self._vector(AttackClass.CLASS_1B, reported, actual)
        assert vector.profit(FlatRatePricing(0.2)) == pytest.approx(
            0.5 * 0.2 * SLOTS_PER_WEEK
        )

    def test_profit_2a_positive_when_under_reporting(self):
        actual = np.full(SLOTS_PER_WEEK, 2.0)
        reported = np.full(SLOTS_PER_WEEK, 0.5)
        vector = self._vector(AttackClass.CLASS_2A, reported, actual)
        assert vector.profit(FlatRatePricing(0.2)) > 0

    def test_profit_3a_from_swap(self):
        tariff = TimeOfUsePricing()
        actual = np.zeros(SLOTS_PER_WEEK)
        reported = np.zeros(SLOTS_PER_WEEK)
        actual[20] = 4.0  # peak slot
        reported[2] = 4.0  # moved to off-peak
        vector = self._vector(AttackClass.CLASS_3A, reported, actual)
        assert vector.profit(tariff) == pytest.approx(0.5 * 4.0 * 0.03)

    def test_rejects_negative_readings(self):
        with pytest.raises(InjectionError):
            AttackVector(
                attack_class=AttackClass.CLASS_2A,
                reported=np.full(SLOTS_PER_WEEK, -1.0),
                actual=np.ones(SLOTS_PER_WEEK),
            )

    def test_rejects_wrong_length(self):
        with pytest.raises(InjectionError):
            AttackVector(
                attack_class=AttackClass.CLASS_2A,
                reported=np.ones(5),
                actual=np.ones(5),
            )
