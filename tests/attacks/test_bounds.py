"""Tests for analytic theft bounds, cross-checked against empirical
attack vectors."""

import numpy as np
import pytest

from repro.attacks.bounds import (
    max_over_report_under_band,
    max_over_report_under_moment_checks,
    max_swap_profit,
    max_theft_under_band,
    max_theft_under_min_average,
)
from repro.attacks.injection import (
    ARIMAAttack,
    IntegratedARIMAAttack,
    OptimalSwapAttack,
)
from repro.errors import ConfigurationError
from repro.pricing.schemes import TimeOfUsePricing
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestMinAverageBound:
    def test_section_vi_a2_arithmetic(self):
        week = np.full(SLOTS_PER_WEEK, 2.0)
        # tau = 0.5: hideable demand is 1.5 kW x 336 slots x 0.5 h.
        bound = max_theft_under_min_average(week, tau=0.5)
        assert bound == pytest.approx(1.5 * SLOTS_PER_WEEK * 0.5)

    def test_tau_zero_gives_full_consumption(self):
        """Section VI-A2: 'the maximum electricity Mallory can steal is
        her typical consumption' when tau = 0."""
        week = np.full(SLOTS_PER_WEEK, 2.0)
        bound = max_theft_under_min_average(week, tau=0.0)
        assert bound == pytest.approx(week.sum() * 0.5)

    def test_consumption_below_tau_steals_nothing(self):
        week = np.full(SLOTS_PER_WEEK, 0.3)
        assert max_theft_under_min_average(week, tau=0.5) == 0.0

    def test_rejects_negative_tau(self):
        with pytest.raises(ConfigurationError):
            max_theft_under_min_average(np.ones(4), tau=-1.0)


class TestBandBounds:
    def test_arima_under_attack_respects_bound(self, injection_context, rng):
        vector = ARIMAAttack(direction="under", margin=0.0).inject(
            injection_context, rng
        )
        bound = max_theft_under_band(
            injection_context.actual_week, injection_context.band_lower
        )
        assert vector.stolen_kwh() <= bound + 1e-6

    def test_arima_over_attack_respects_bound(self, injection_context, rng):
        vector = ARIMAAttack(direction="over", margin=0.0).inject(
            injection_context, rng
        )
        bound = max_over_report_under_band(
            injection_context.actual_week, injection_context.band_upper
        )
        assert vector.stolen_kwh() <= bound + 1e-6

    def test_integrated_attack_respects_both_bounds(
        self, injection_context, rng
    ):
        vector = IntegratedARIMAAttack(direction="over").inject(
            injection_context, rng
        )
        band_bound = max_over_report_under_band(
            injection_context.actual_week, injection_context.band_upper
        )
        moment_bound = max_over_report_under_moment_checks(
            injection_context.actual_week,
            float(injection_context.weekly_means.max()),
            slack=0.05,
        )
        assert vector.stolen_kwh() <= band_bound + 1e-6
        assert vector.stolen_kwh() <= moment_bound + 1e-6

    def test_moment_bound_tighter_than_wide_band(self, injection_context):
        """The Integrated detector's whole point: its mean check caps the
        theft far below the raw band allowance."""
        band_bound = max_over_report_under_band(
            injection_context.actual_week, injection_context.band_upper
        )
        moment_bound = max_over_report_under_moment_checks(
            injection_context.actual_week,
            float(injection_context.weekly_means.max()),
            slack=0.05,
        )
        assert moment_bound < band_bound

    def test_rejects_mismatched_band(self):
        with pytest.raises(ConfigurationError):
            max_theft_under_band(np.ones(10), np.ones(5))


class TestSwapProfitBound:
    def test_optimal_swap_respects_bound(self, injection_context, rng):
        tariff = TimeOfUsePricing()
        vector = OptimalSwapAttack(
            pricing=tariff, respect_band=False
        ).inject(injection_context, rng)
        mask = tariff.peak_mask(SLOTS_PER_WEEK)
        bound = max_swap_profit(
            injection_context.actual_week,
            mask,
            tariff.peak_rate,
            tariff.offpeak_rate,
        )
        assert vector.profit(tariff) <= bound + 1e-9

    def test_flat_profile_yields_zero_bound(self):
        tariff = TimeOfUsePricing()
        week = np.full(SLOTS_PER_WEEK, 1.0)
        mask = tariff.peak_mask(SLOTS_PER_WEEK)
        assert max_swap_profit(week, mask, 0.21, 0.18) == pytest.approx(0.0)

    def test_bound_arithmetic_single_day(self):
        # One big peak reading, everything else zero: ideal reordering
        # moves it off-peak, saving (0.21-0.18)*value*dt.
        week = np.zeros(SLOTS_PER_WEEK)
        week[20] = 4.0  # peak slot
        mask = TimeOfUsePricing().peak_mask(SLOTS_PER_WEEK)
        bound = max_swap_profit(week, mask, 0.21, 0.18)
        assert bound == pytest.approx(4.0 * 0.03 * 0.5)

    def test_rejects_inverted_rates(self):
        with pytest.raises(ConfigurationError):
            max_swap_profit(np.ones(4), np.array([True, False, True, False]), 0.1, 0.2)
