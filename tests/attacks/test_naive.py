"""Unit tests for naive baseline attacks."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.naive import ScalingAttack, ZeroReportAttack
from repro.errors import InjectionError


class TestZeroReport:
    def test_all_zero(self, injection_context, rng):
        vector = ZeroReportAttack().inject(injection_context, rng)
        assert np.all(vector.reported == 0.0)

    def test_maximises_theft(self, injection_context, rng):
        vector = ZeroReportAttack().inject(injection_context, rng)
        assert vector.stolen_kwh() == pytest.approx(
            injection_context.actual_week.sum() * 0.5
        )

    def test_trivially_detected_by_minimum_average(
        self, injection_context, rng
    ):
        """The paper's point: maximal attacks are easy to catch."""
        from repro.detectors.threshold import MinimumAverageDetector

        detector = MinimumAverageDetector().fit(injection_context.train_matrix)
        vector = ZeroReportAttack().inject(injection_context, rng)
        assert detector.flags(vector.reported)


class TestScaling:
    def test_under_scaling_is_2a(self, injection_context, rng):
        attack = ScalingAttack(factor=0.5)
        assert attack.attack_class is AttackClass.CLASS_2A
        vector = attack.inject(injection_context, rng)
        assert np.allclose(vector.reported, vector.actual * 0.5)
        assert vector.stolen_kwh() > 0

    def test_over_scaling_is_1b(self, injection_context, rng):
        attack = ScalingAttack(factor=1.5)
        assert attack.attack_class is AttackClass.CLASS_1B
        vector = attack.inject(injection_context, rng)
        assert vector.stolen_kwh() > 0

    def test_rejects_identity_factor(self):
        with pytest.raises(InjectionError):
            ScalingAttack(factor=1.0)

    def test_rejects_negative_factor(self):
        with pytest.raises(InjectionError):
            ScalingAttack(factor=-0.5)
