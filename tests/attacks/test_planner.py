"""Tests for the adversarial attack planner."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.planner import DefensePosture, best_attack, plan_attack
from repro.errors import ConfigurationError
from repro.pricing.schemes import FlatRatePricing, TimeOfUsePricing
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture
def week(rng):
    return rng.uniform(0.5, 2.0, size=SLOTS_PER_WEEK)


@pytest.fixture
def band(week):
    return np.maximum(week - 1.0, 0.0), week + 2.0


class TestFeasibility:
    def test_balance_check_forces_b_classes(self, week, band):
        lower, upper = band
        posture = DefensePosture(
            balance_check=True, band_lower=lower, band_upper=upper
        )
        plans = plan_attack(week, TimeOfUsePricing(), posture)
        assert all(p.attack_class.circumvents_balance_check for p in plans)

    def test_no_balance_check_allows_a_classes(self, week, band):
        lower, upper = band
        posture = DefensePosture(
            balance_check=False, band_lower=lower, band_upper=upper
        )
        plans = plan_attack(week, TimeOfUsePricing(), posture)
        assert all(
            not p.attack_class.circumvents_balance_check for p in plans
        )

    def test_no_neighbours_blocks_b_classes(self, week, band):
        lower, upper = band
        posture = DefensePosture(
            balance_check=True,
            has_neighbours=False,
            band_lower=lower,
            band_upper=upper,
        )
        plans = plan_attack(week, TimeOfUsePricing(), posture)
        assert plans == []

    def test_flat_rate_excludes_load_shifting(self, week, band):
        lower, upper = band
        posture = DefensePosture(band_lower=lower, band_upper=upper)
        plans = plan_attack(week, FlatRatePricing(0.2), posture)
        classes = {p.attack_class for p in plans}
        assert AttackClass.CLASS_3B not in classes
        assert AttackClass.CLASS_3A not in classes


class TestRanking:
    def test_unbounded_1b_dominates_without_band(self, week):
        """No band detector: 1B is limited only by conductor capacity —
        the paper's 'most severe' class."""
        posture = DefensePosture(balance_check=True)
        plan = best_attack(week, TimeOfUsePricing(), posture)
        assert plan.attack_class is AttackClass.CLASS_1B
        assert plan.expected_weekly_gain_usd == float("inf")

    def test_1b_beats_swap_under_band(self, week, band):
        lower, upper = band
        posture = DefensePosture(band_lower=lower, band_upper=upper)
        plans = plan_attack(week, TimeOfUsePricing(), posture)
        gains = {p.attack_class: p.expected_weekly_gain_usd for p in plans}
        assert gains[AttackClass.CLASS_1B] > gains[AttackClass.CLASS_3B]

    def test_moment_check_tightens_1b(self, week, band):
        lower, upper = band
        loose = DefensePosture(band_lower=lower, band_upper=upper)
        tight = DefensePosture(
            band_lower=lower,
            band_upper=upper,
            max_weekly_mean=float(week.mean()) * 1.05,
        )
        loose_gain = best_attack(week, TimeOfUsePricing(), loose)
        tight_plans = plan_attack(week, TimeOfUsePricing(), tight)
        tight_1b = next(
            p
            for p in tight_plans
            if p.attack_class is AttackClass.CLASS_1B
        )
        assert tight_1b.expected_weekly_gain_usd < (
            loose_gain.expected_weekly_gain_usd
        )

    def test_tau_caps_2b(self, week):
        posture = DefensePosture(
            min_average_tau=float(week.mean()) * 0.8,
        )
        plans = plan_attack(week, TimeOfUsePricing(), posture)
        plan_2b = next(
            p for p in plans if p.attack_class is AttackClass.CLASS_2B
        )
        # Cap: only the demand above tau can be hidden.
        assert plan_2b.expected_weekly_gain_usd < float(
            week.sum() * 0.5 * 0.21
        )
        assert "tau" in plan_2b.rationale

    def test_ranking_descends(self, week, band):
        lower, upper = band
        posture = DefensePosture(band_lower=lower, band_upper=upper)
        plans = plan_attack(week, TimeOfUsePricing(), posture)
        gains = [p.expected_weekly_gain_usd for p in plans]
        assert gains == sorted(gains, reverse=True)

    def test_best_attack_raises_when_infeasible(self, week):
        posture = DefensePosture(balance_check=True, has_neighbours=False)
        with pytest.raises(ConfigurationError):
            best_attack(week, TimeOfUsePricing(), posture)

    def test_rejects_wrong_week_length(self):
        with pytest.raises(ConfigurationError):
            plan_attack(
                np.ones(10), TimeOfUsePricing(), DefensePosture()
            )
