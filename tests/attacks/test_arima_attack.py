"""Unit tests for the band-pinning ARIMA attack."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.arima_attack import ARIMAAttack
from repro.errors import InjectionError
from repro.pricing.schemes import TimeOfUsePricing


class TestOverReport:
    def test_stays_within_band(self, injection_context, rng):
        vector = ARIMAAttack(direction="over").inject(injection_context, rng)
        assert np.all(vector.reported <= injection_context.band_upper + 1e-12)
        assert np.all(vector.reported >= injection_context.band_lower - 1e-12)

    def test_classified_1b(self, injection_context, rng):
        vector = ARIMAAttack(direction="over").inject(injection_context, rng)
        assert vector.attack_class is AttackClass.CLASS_1B

    def test_steals_energy(self, injection_context, rng):
        vector = ARIMAAttack(direction="over").inject(injection_context, rng)
        assert vector.stolen_kwh() > 0
        assert vector.profit(TimeOfUsePricing()) > 0

    def test_deterministic(self, injection_context):
        a = ARIMAAttack(direction="over").inject(
            injection_context, np.random.default_rng(0)
        )
        b = ARIMAAttack(direction="over").inject(
            injection_context, np.random.default_rng(99)
        )
        assert np.array_equal(a.reported, b.reported)

    def test_margin_moves_inside_band(self, injection_context, rng):
        tight = ARIMAAttack(direction="over", margin=0.0).inject(
            injection_context, rng
        )
        safe = ARIMAAttack(direction="over", margin=0.1).inject(
            injection_context, rng
        )
        assert safe.reported.sum() < tight.reported.sum()


class TestUnderReport:
    def test_pins_at_lower_band_or_zero(self, injection_context, rng):
        vector = ARIMAAttack(direction="under", margin=0.0).inject(
            injection_context, rng
        )
        expected = np.maximum(injection_context.band_lower, 0.0)
        assert np.allclose(vector.reported, expected)

    def test_classified_2a(self, injection_context, rng):
        vector = ARIMAAttack(direction="under").inject(injection_context, rng)
        assert vector.attack_class is AttackClass.CLASS_2A

    def test_steals_energy(self, injection_context, rng):
        vector = ARIMAAttack(direction="under").inject(injection_context, rng)
        assert vector.stolen_kwh() > 0

    def test_never_negative(self, injection_context, rng):
        vector = ARIMAAttack(direction="under").inject(injection_context, rng)
        assert np.all(vector.reported >= 0)


class TestValidation:
    def test_rejects_bad_direction(self):
        with pytest.raises(InjectionError):
            ARIMAAttack(direction="sideways")

    def test_rejects_bad_margin(self):
        with pytest.raises(InjectionError):
            ARIMAAttack(margin=0.9)

    def test_over_steals_more_than_integrated(self, injection_context, rng):
        """The ARIMA attack is the stronger 1B realisation — the reason
        Table III's ARIMA-detector row dwarfs the others."""
        from repro.attacks.injection.integrated_arima import (
            IntegratedARIMAAttack,
        )

        arima_vec = ARIMAAttack(direction="over").inject(injection_context, rng)
        integrated_vec = IntegratedARIMAAttack(direction="over").inject(
            injection_context, rng
        )
        assert arima_vec.stolen_kwh() > integrated_vec.stolen_kwh()
