"""Unit tests for the attack classification engine."""

import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.taxonomy import (
    AttackDescriptor,
    classify_attack,
    render_table_i,
)
from repro.errors import ConfigurationError


class TestClassification:
    def test_class_1a(self):
        descriptor = AttackDescriptor(increases_consumption=True)
        assert classify_attack(descriptor) is AttackClass.CLASS_1A

    def test_class_1b(self):
        descriptor = AttackDescriptor(
            increases_consumption=True, over_reports_neighbour=True
        )
        assert classify_attack(descriptor) is AttackClass.CLASS_1B

    def test_class_2a(self):
        descriptor = AttackDescriptor(under_reports_own_readings=True)
        assert classify_attack(descriptor) is AttackClass.CLASS_2A

    def test_class_2b(self):
        descriptor = AttackDescriptor(
            under_reports_own_readings=True, over_reports_neighbour=True
        )
        assert classify_attack(descriptor) is AttackClass.CLASS_2B

    def test_class_3a(self):
        descriptor = AttackDescriptor(shifts_reported_load=True)
        assert classify_attack(descriptor) is AttackClass.CLASS_3A

    def test_class_3b(self):
        descriptor = AttackDescriptor(
            shifts_reported_load=True, over_reports_neighbour=True
        )
        assert classify_attack(descriptor) is AttackClass.CLASS_3B

    def test_class_4b(self):
        descriptor = AttackDescriptor(
            compromises_price_signal=True, over_reports_neighbour=True
        )
        assert classify_attack(descriptor) is AttackClass.CLASS_4B

    def test_price_attack_without_neighbour_is_invalid(self):
        with pytest.raises(ConfigurationError):
            classify_attack(AttackDescriptor(compromises_price_signal=True))

    def test_empty_descriptor_not_an_attack(self):
        with pytest.raises(ConfigurationError):
            classify_attack(AttackDescriptor())

    def test_combined_primitives_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_attack(
                AttackDescriptor(
                    increases_consumption=True,
                    under_reports_own_readings=True,
                )
            )


class TestRenderTableI:
    def test_contains_all_classes(self):
        text = render_table_i()
        for label in ("1A", "2A", "3A", "1B", "2B", "3B", "4B"):
            assert label in text

    def test_contains_all_rows(self):
        text = render_table_i()
        assert "Balance Check" in text
        assert "Flat Rate" in text
        assert "TOU" in text
        assert "RTP" in text
        assert "ADR" in text

    def test_row_values_match_paper(self):
        lines = render_table_i().splitlines()
        balance_line = next(l for l in lines if "Balance Check" in l)
        # Classes are ordered 1A 2A 3A 1B 2B 3B 4B: N N N Y Y Y Y.
        cells = balance_line.split()[-7:]
        assert cells == ["N", "N", "N", "Y", "Y", "Y", "Y"]
