"""Tests for combination attacks (Section VI / VIII-F3 hypothesis)."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.arima_attack import ARIMAAttack
from repro.attacks.injection.combination import CombinationAttack
from repro.attacks.injection.integrated_arima import IntegratedARIMAAttack
from repro.attacks.injection.naive import ScalingAttack
from repro.attacks.injection.optimal_swap import OptimalSwapAttack
from repro.errors import InjectionError
from repro.pricing.schemes import TimeOfUsePricing


class TestCombination:
    def test_under_report_plus_swap(self, injection_context, rng):
        """The paper's suggested 2B+3B combination: under-bill and
        re-price what remains."""
        combo = CombinationAttack(
            [
                ScalingAttack(factor=0.7),
                OptimalSwapAttack(respect_band=False),
            ]
        )
        vector = combo.inject(injection_context, rng)
        tariff = TimeOfUsePricing()
        under_only = ScalingAttack(factor=0.7).inject(injection_context, rng)
        # The combination strictly beats the single-stage attack.
        assert vector.profit(tariff) > under_only.profit(tariff)

    def test_actual_week_preserved(self, injection_context, rng):
        combo = CombinationAttack(
            [ScalingAttack(factor=0.5), OptimalSwapAttack(respect_band=False)]
        )
        vector = combo.inject(injection_context, rng)
        assert np.array_equal(vector.actual, injection_context.actual_week)

    def test_class_from_first_stage(self, injection_context, rng):
        combo = CombinationAttack(
            [
                IntegratedARIMAAttack(direction="over"),
                OptimalSwapAttack(respect_band=False),
            ]
        )
        assert combo.attack_class is AttackClass.CLASS_1B

    def test_description_names_stages(self, injection_context, rng):
        combo = CombinationAttack(
            [ScalingAttack(factor=0.5), OptimalSwapAttack(respect_band=False)]
        )
        vector = combo.inject(injection_context, rng)
        assert "Scaling attack" in vector.description
        assert "Optimal Swap" in vector.description

    def test_swap_stage_preserves_multiset_of_previous_stage(
        self, injection_context, rng
    ):
        combo = CombinationAttack(
            [ScalingAttack(factor=0.6), OptimalSwapAttack(respect_band=False)]
        )
        vector = combo.inject(injection_context, rng)
        assert np.allclose(
            np.sort(vector.reported),
            np.sort(injection_context.actual_week * 0.6),
        )

    def test_rejects_single_stage(self):
        with pytest.raises(InjectionError):
            CombinationAttack([ScalingAttack(factor=0.5)])

    def test_arima_band_combo_stays_in_band(self, injection_context, rng):
        combo = CombinationAttack(
            [
                ARIMAAttack(direction="under"),
                OptimalSwapAttack(respect_band=True),
            ]
        )
        vector = combo.inject(injection_context, rng)
        assert np.all(
            vector.reported <= injection_context.band_upper + 1e-9
        )
