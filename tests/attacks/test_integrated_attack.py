"""Unit tests for the Integrated ARIMA attack."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.integrated_arima import IntegratedARIMAAttack
from repro.errors import InjectionError


class TestOverReport:
    def test_within_band(self, injection_context, rng):
        vector = IntegratedARIMAAttack(direction="over").inject(
            injection_context, rng
        )
        assert np.all(
            vector.reported <= injection_context.band_upper + 1e-9
        )
        assert np.all(
            vector.reported >= np.maximum(injection_context.band_lower, 0.0) - 1e-9
        )

    def test_weekly_mean_within_training_range(self, injection_context, rng):
        """The attack's moment-evasion property: the injected week's mean
        must not exceed the maximum training weekly mean (the Integrated
        detector's upper check)."""
        means = injection_context.weekly_means
        for _ in range(10):
            vector = IntegratedARIMAAttack(direction="over").inject(
                injection_context, rng
            )
            assert vector.reported.mean() <= means.max() * 1.05

    def test_classified_1b(self, injection_context, rng):
        vector = IntegratedARIMAAttack(direction="over").inject(
            injection_context, rng
        )
        assert vector.attack_class is AttackClass.CLASS_1B

    def test_stochastic_vectors_differ(self, injection_context, rng):
        attack = IntegratedARIMAAttack(direction="over")
        vectors = attack.inject_many(injection_context, rng, count=3)
        assert not np.array_equal(vectors[0].reported, vectors[1].reported)
        assert not np.array_equal(vectors[1].reported, vectors[2].reported)

    def test_reproducible_with_seed(self, injection_context):
        attack = IntegratedARIMAAttack(direction="over")
        a = attack.inject(injection_context, np.random.default_rng(5))
        b = attack.inject(injection_context, np.random.default_rng(5))
        assert np.array_equal(a.reported, b.reported)


class TestUnderReport:
    def test_mean_near_minimum_training_mean(self, injection_context, rng):
        means = injection_context.weekly_means
        vector = IntegratedARIMAAttack(direction="under").inject(
            injection_context, rng
        )
        # Truncation can shift the realised mean, but it must sit near or
        # below the smallest training mean, never near the maximum.
        assert vector.reported.mean() < means.mean()

    def test_steals_energy(self, injection_context, rng):
        vector = IntegratedARIMAAttack(direction="under").inject(
            injection_context, rng
        )
        assert vector.stolen_kwh() > 0

    def test_under_mean_near_minimum_target(self, injection_context, rng):
        """With mean matching, the injected week's mean lands on the
        minimum training weekly mean whenever the band allows it."""
        means = injection_context.weekly_means
        vector = IntegratedARIMAAttack(direction="under").inject(
            injection_context, rng
        )
        assert vector.reported.mean() <= means.min() * 1.1


class TestValidation:
    def test_rejects_bad_direction(self):
        with pytest.raises(InjectionError):
            IntegratedARIMAAttack(direction="both")

    def test_rejects_bad_sigma_scale(self):
        with pytest.raises(InjectionError):
            IntegratedARIMAAttack(sigma_scale=0.0)

    def test_inject_many_count_validated(self, injection_context, rng):
        with pytest.raises(InjectionError):
            IntegratedARIMAAttack().inject_many(injection_context, rng, count=0)

    def test_inject_many_length(self, injection_context, rng):
        vectors = IntegratedARIMAAttack().inject_many(
            injection_context, rng, count=7
        )
        assert len(vectors) == 7
