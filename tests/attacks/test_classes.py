"""Unit tests for attack classes and Table I properties."""

import pytest

from repro.attacks.classes import TABLE_I, AttackClass


class TestTableIExactMatch:
    """Assert every cell of the paper's Table I."""

    EXPECTED = {
        # class: (despite_balance, flat, tou, rtp, adr)
        "1A": (False, True, True, True, False),
        "2A": (False, True, True, True, False),
        "3A": (False, False, True, True, False),
        "1B": (True, True, True, True, False),
        "2B": (True, True, True, True, False),
        "3B": (True, False, True, True, False),
        "4B": (True, False, False, True, True),
    }

    @pytest.mark.parametrize("row", TABLE_I, ids=lambda r: r.attack_class.value)
    def test_row(self, row):
        expected = self.EXPECTED[row.attack_class.value]
        assert row.despite_balance_check == expected[0]
        assert row.flat_rate == expected[1]
        assert row.tou == expected[2]
        assert row.rtp == expected[3]
        assert row.requires_adr == expected[4]

    def test_seven_classes(self):
        assert len(TABLE_I) == 7
        assert len({row.attack_class for row in TABLE_I}) == 7


class TestClassProperties:
    def test_b_classes_circumvent_balance_check(self):
        for cls in AttackClass:
            assert cls.circumvents_balance_check == cls.value.endswith("B")

    def test_every_class_possible_under_rtp(self):
        """Table I row 4: RTP admits every attack class."""
        assert all(cls.possible_rtp for cls in AttackClass)

    def test_only_4b_requires_adr(self):
        adr_classes = [cls for cls in AttackClass if cls.requires_adr]
        assert adr_classes == [AttackClass.CLASS_4B]

    def test_load_shift_needs_variable_pricing(self):
        assert not AttackClass.CLASS_3A.possible_flat_rate
        assert not AttackClass.CLASS_3B.possible_flat_rate

    def test_proposition1_under_reporting_universal(self):
        assert all(cls.under_reports_attacker for cls in AttackClass)

    def test_over_report_matches_b_classes(self):
        for cls in AttackClass:
            assert cls.over_reports_neighbour == cls.circumvents_balance_check
