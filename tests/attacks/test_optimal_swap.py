"""Unit tests for the Optimal Swap attack."""

import numpy as np
import pytest

from repro.attacks.classes import AttackClass
from repro.attacks.injection.optimal_swap import OptimalSwapAttack
from repro.errors import InjectionError
from repro.pricing.schemes import TimeOfUsePricing
from repro.timeseries.seasonal import SLOTS_PER_DAY


class TestDistributionInvariance:
    """The attack's defining property: only temporal ordering changes."""

    def test_multiset_of_readings_preserved(self, injection_context, rng):
        vector = OptimalSwapAttack().inject(injection_context, rng)
        assert np.allclose(
            np.sort(vector.reported), np.sort(vector.actual)
        )

    def test_weekly_mean_and_variance_unchanged(self, injection_context, rng):
        vector = OptimalSwapAttack().inject(injection_context, rng)
        assert vector.reported.mean() == pytest.approx(vector.actual.mean())
        assert vector.reported.var() == pytest.approx(vector.actual.var())

    def test_no_energy_stolen(self, injection_context, rng):
        vector = OptimalSwapAttack().inject(injection_context, rng)
        assert vector.stolen_kwh() == 0.0

    def test_profit_positive(self, injection_context, rng):
        vector = OptimalSwapAttack(respect_band=False).inject(
            injection_context, rng
        )
        assert vector.profit(TimeOfUsePricing()) > 0


class TestSwapMechanics:
    def test_daily_totals_preserved(self, injection_context, rng):
        vector = OptimalSwapAttack().inject(injection_context, rng)
        for day in range(7):
            s = slice(day * SLOTS_PER_DAY, (day + 1) * SLOTS_PER_DAY)
            assert vector.reported[s].sum() == pytest.approx(
                vector.actual[s].sum()
            )

    def test_reported_peak_consumption_decreases(self, injection_context, rng):
        tariff = TimeOfUsePricing()
        vector = OptimalSwapAttack(
            pricing=tariff, respect_band=False
        ).inject(injection_context, rng)
        mask = tariff.peak_mask(vector.reported.size)
        assert vector.reported[mask].sum() < vector.actual[mask].sum()

    def test_unprofitable_swaps_skipped(self, rng, injection_context):
        """If off-peak readings already exceed peak ones, no swap happens."""
        context = injection_context
        week = np.concatenate(
            [
                np.concatenate([np.full(18, 5.0), np.full(30, 0.1)])
                for _ in range(7)
            ]
        )
        from repro.attacks.injection.base import InjectionContext

        ctx = InjectionContext(
            train_matrix=context.train_matrix,
            actual_week=week,
            band_lower=np.zeros_like(week),
            band_upper=np.full_like(week, 100.0),
        )
        vector = OptimalSwapAttack(respect_band=False).inject(ctx, rng)
        assert np.array_equal(vector.reported, week)

    def test_respect_band_limits_swaps(self, injection_context, rng):
        free = OptimalSwapAttack(respect_band=False).inject(
            injection_context, rng
        )
        limited = OptimalSwapAttack(respect_band=True).inject(
            injection_context, rng
        )
        tariff = TimeOfUsePricing()
        assert limited.profit(tariff) <= free.profit(tariff) + 1e-9

    def test_classified_3a(self, injection_context, rng):
        vector = OptimalSwapAttack().inject(injection_context, rng)
        assert vector.attack_class is AttackClass.CLASS_3A

    def test_rejects_non_tou_pricing(self):
        from repro.pricing.schemes import FlatRatePricing

        with pytest.raises(InjectionError):
            OptimalSwapAttack(pricing=FlatRatePricing())


class TestDetectability:
    def test_plain_kld_blind_to_swap(self, injection_context, rng):
        """Section VIII-F3: the unconditioned KLD detector cannot see a
        pure reordering."""
        from repro.core.kld import KLDDetector

        detector = KLDDetector(significance=0.05).fit(
            injection_context.train_matrix
        )
        vector = OptimalSwapAttack(respect_band=False).inject(
            injection_context, rng
        )
        assert detector.divergence_of(vector.reported) == pytest.approx(
            detector.divergence_of(vector.actual)
        )
