"""ReorderBuffer: park out-of-order readings, release contiguous runs."""

from repro.eventtime import OfferOutcome, ReorderBuffer, StampedReading


def _offer(buffer, cid, slot, value=1.0):
    return buffer.offer(StampedReading(cid, slot, value))


class TestOffer:
    def test_first_reading_buffers(self):
        buffer = ReorderBuffer()
        assert _offer(buffer, "c1", 5) is OfferOutcome.BUFFERED
        assert buffer.pending_readings == 1

    def test_duplicate_key_updates_last_write_wins(self):
        buffer = ReorderBuffer()
        _offer(buffer, "c1", 5, 1.0)
        assert _offer(buffer, "c1", 5, 2.0) is OfferOutcome.UPDATED
        assert buffer.pending_readings == 1  # updates don't grow occupancy
        released = list(buffer.flush())  # slots 0-4 release empty
        assert released[-1] == (5, {"c1": 2.0})

    def test_released_slot_is_late(self):
        buffer = ReorderBuffer()
        _offer(buffer, "c1", 0)
        list(buffer.release_until(0))
        assert _offer(buffer, "c2", 0) is OfferOutcome.LATE

    def test_capacity_rejects_not_drops(self):
        buffer = ReorderBuffer(max_pending=2)
        assert _offer(buffer, "c1", 0) is OfferOutcome.BUFFERED
        assert _offer(buffer, "c2", 1) is OfferOutcome.BUFFERED
        assert _offer(buffer, "c3", 2) is OfferOutcome.REJECTED
        # Updates to an existing key still land at capacity.
        assert _offer(buffer, "c1", 0, 9.0) is OfferOutcome.UPDATED


class TestRelease:
    def test_release_is_contiguous_with_empty_slots(self):
        buffer = ReorderBuffer()
        _offer(buffer, "c1", 0)
        _offer(buffer, "c1", 3)  # slots 1 and 2 never reported
        released = list(buffer.release_until(3))
        assert [slot for slot, _ in released] == [0, 1, 2, 3]
        assert released[1][1] == {} and released[2][1] == {}
        assert buffer.pending_readings == 0

    def test_release_stops_at_watermark(self):
        buffer = ReorderBuffer()
        _offer(buffer, "c1", 0)
        _offer(buffer, "c1", 5)
        assert [s for s, _ in buffer.release_until(2)] == [0, 1, 2]
        assert buffer.next_slot == 3
        assert buffer.pending_readings == 1  # slot 5 still parked

    def test_negative_watermark_releases_nothing(self):
        buffer = ReorderBuffer()
        _offer(buffer, "c1", 0)
        assert list(buffer.release_until(-1)) == []

    def test_flush_releases_through_newest(self):
        buffer = ReorderBuffer()
        _offer(buffer, "c1", 2)
        _offer(buffer, "c1", 4)
        assert [s for s, _ in buffer.flush()] == [0, 1, 2, 3, 4]
        assert list(buffer.flush()) == []  # idempotent when empty

    def test_merged_slot_collects_all_consumers(self):
        buffer = ReorderBuffer()
        _offer(buffer, "b", 0, 2.0)
        _offer(buffer, "a", 0, 1.0)
        ((_, readings),) = list(buffer.release_until(0))
        assert readings == {"a": 1.0, "b": 2.0}


class TestOccupancy:
    def test_span_and_pending_slots(self):
        buffer = ReorderBuffer()
        assert buffer.span == 0
        _offer(buffer, "c1", 2)
        _offer(buffer, "c1", 7)
        assert buffer.pending_slots == 2
        assert buffer.span == 8  # cursor 0 through newest slot 7

    def test_state_roundtrip(self):
        buffer = ReorderBuffer(max_pending=10)
        _offer(buffer, "c1", 0)
        _offer(buffer, "c2", 4, 3.5)
        list(buffer.release_until(0))
        restored = ReorderBuffer.from_state(buffer.state_dict())
        assert restored.next_slot == buffer.next_slot
        assert restored.pending == buffer.pending
        assert restored.pending_readings == buffer.pending_readings
        assert restored.max_pending == buffer.max_pending
