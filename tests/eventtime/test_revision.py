"""RevisionLog: monotone versions, auditable report, state roundtrip."""

import json

from repro.eventtime import RevisionKind, RevisionLog


def _record(log, week=0, cid="c1", kind=RevisionKind.UPGRADE, **kwargs):
    defaults = dict(
        reason="late reading reconciled",
        cycle=700,
        flagged_before=kind is RevisionKind.DOWNGRADE,
        flagged_after=kind is RevisionKind.UPGRADE,
        score_before=0.01,
        score_after=0.21,
    )
    defaults.update(kwargs)
    return log.record(week, cid, kind, **defaults)


class TestVersioning:
    def test_versions_monotone_per_pair(self):
        log = RevisionLog()
        assert _record(log).version == 1
        assert _record(log).version == 2
        assert _record(log, cid="c2").version == 1
        assert _record(log, week=1).version == 1
        assert _record(log).version == 3

    def test_current_versions_keyed_week_consumer(self):
        log = RevisionLog()
        _record(log)
        _record(log)
        _record(log, week=2, cid="c9")
        assert log.current_versions() == {"0:c1": 2, "2:c9": 1}


class TestQueries:
    def test_for_week_and_for_consumer(self):
        log = RevisionLog()
        _record(log, week=0, cid="c1")
        _record(log, week=1, cid="c1", kind=RevisionKind.DOWNGRADE)
        _record(log, week=1, cid="c2")
        assert len(log.for_week(1)) == 2
        assert len(log.for_consumer("c1")) == 2
        assert log.counts_by_kind() == {"upgrade": 2, "downgrade": 1}
        assert len(log) == 3


class TestReport:
    def test_report_carries_before_after_evidence(self):
        log = RevisionLog()
        _record(log, score_before=0.02, score_after=0.4)
        report = log.report()
        assert report["total"] == 1
        (entry,) = report["revisions"]
        assert entry["kind"] == "upgrade"
        assert entry["score_before"] == 0.02
        assert entry["score_after"] == 0.4
        assert entry["version"] == 1

    def test_write_report_is_valid_json(self, tmp_path):
        log = RevisionLog()
        _record(log)
        _record(log, kind=RevisionKind.DOWNGRADE)
        path = tmp_path / "revisions.json"
        log.write_report(path)
        loaded = json.loads(path.read_text())
        assert loaded["total"] == 2
        assert loaded["by_kind"] == {"upgrade": 1, "downgrade": 1}

    def test_state_roundtrip(self):
        log = RevisionLog()
        _record(log)
        _record(log)
        _record(log, week=3, cid="c7", kind=RevisionKind.DOWNGRADE)
        restored = RevisionLog.from_state(log.state_dict())
        assert restored.report() == log.report()
        # Versioning continues from the restored state, no reuse.
        assert _record(restored).version == 3
