"""WatermarkTracker: fleet frontier, lateness bound, lag accounting."""

from repro.eventtime import WatermarkTracker


class TestWatermark:
    def test_empty_tracker_has_nothing_closed(self):
        tracker = WatermarkTracker(lateness_slots=8)
        assert tracker.frontier == -1
        assert tracker.watermark == -1 - 8

    def test_watermark_trails_frontier_by_lateness(self):
        tracker = WatermarkTracker(lateness_slots=8)
        tracker.observe("c1", 100)
        assert tracker.frontier == 100
        assert tracker.watermark == 92

    def test_frontier_is_fleet_maximum(self):
        tracker = WatermarkTracker(lateness_slots=0)
        tracker.observe("c1", 10)
        tracker.observe("c2", 50)
        tracker.observe("c3", 30)
        assert tracker.frontier == 50

    def test_high_mark_never_regresses(self):
        tracker = WatermarkTracker(lateness_slots=0)
        tracker.observe("c1", 50)
        tracker.observe("c1", 20)  # out-of-order arrival
        assert tracker.high_marks["c1"] == 50

    def test_consumer_lag(self):
        tracker = WatermarkTracker(lateness_slots=0)
        tracker.observe("c1", 50)
        tracker.observe("c2", 40)
        assert tracker.consumer_lag("c1") == 0
        assert tracker.consumer_lag("c2") == 10
        # A never-seen meter trails the whole frontier.
        assert tracker.consumer_lag("ghost") == 51

    def test_lagging_is_sorted_and_thresholded(self):
        tracker = WatermarkTracker(lateness_slots=0)
        tracker.observe("b", 10)
        tracker.observe("a", 10)
        tracker.observe("z", 100)
        assert tracker.lagging(50) == ("a", "b")
        assert tracker.lagging(90) == ()

    def test_state_roundtrip(self):
        tracker = WatermarkTracker(lateness_slots=4)
        tracker.observe("c1", 17)
        tracker.observe("c2", 3)
        restored = WatermarkTracker.from_state(tracker.state_dict())
        assert restored == tracker
        assert restored.watermark == tracker.watermark
