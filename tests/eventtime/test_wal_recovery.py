"""Durability of the event-time pipeline: WAL replay and crash recovery.

Delivery batches are appended to the write-ahead log *before* they touch
watermark or service state, so a replay reproduces the live run's
releases, reconciliations, and revisions bit-identically — including a
run cut down mid-reconciliation by an injected crash.
"""

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.durability.crash import CrashingWAL, CrashPoint, SimulatedCrash
from repro.durability.wal import WriteAheadLog
from repro.eventtime import (
    EventTimeConfig,
    EventTimeIngestor,
    StampedReading,
    replay_eventtime,
)
from repro.quarantine.firewall import FirewallPolicy, ReadingFirewall
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("c1", "c2", "c3")
WEEKS = 6
LATENESS = 8
MAX_DELAY = LATENESS + SLOTS_PER_WEEK
THEFT_START = 4 * SLOTS_PER_WEEK


def _service():
    return TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=3,
        retrain_every_weeks=2,
        resilience=ResilienceConfig(min_coverage=0.5, failure_threshold=10_000),
        population=CONSUMERS,
        firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
        eventtime=EventTimeConfig(lateness_slots=LATENESS, grace_weeks=1),
    )


def _batches():
    """A deterministic scrambled delivery schedule with late readings."""
    schedule = {}
    for t in range(WEEKS * SLOTS_PER_WEEK):
        rng = np.random.default_rng((7, t))
        for i, cid in enumerate(CONSUMERS):
            value = float(
                np.random.default_rng((3, t, i)).gamma(2.0, 0.5)
            ) + 0.05
            if cid == "c1" and t >= THEFT_START:
                value *= 0.05
            delay = int(rng.integers(0, MAX_DELAY))
            schedule.setdefault(t + delay, []).append(
                StampedReading(cid, t, value)
            )
    return [schedule[tick] for tick in sorted(schedule)]


@pytest.fixture(scope="module")
def batches():
    return _batches()


@pytest.fixture(scope="module")
def uninterrupted(batches):
    """The reference run: every batch delivered, no crash, no WAL."""
    service = _service()
    ingestor = EventTimeIngestor(service)
    for batch in batches:
        ingestor.deliver(batch)
    ingestor.finish()
    return service, ingestor


def _assert_same_state(service, reference):
    assert service.reports == reference.reports
    assert service.revisions.report() == reference.revisions.report()
    for cid in CONSUMERS:
        assert np.array_equal(
            service.store.series(cid),
            reference.store.series(cid),
            equal_nan=True,
        )


class TestReplay:
    def test_replay_reproduces_finished_run(
        self, tmp_path, batches, uninterrupted
    ):
        reference, ref_ingestor = uninterrupted
        service = _service()
        wal = WriteAheadLog(tmp_path / "wal", metrics=service.metrics)
        ingestor = EventTimeIngestor(service, wal=wal)
        for batch in batches:
            ingestor.deliver(batch)
        ingestor.finish()
        wal.close()

        replayed, replay = replay_eventtime(tmp_path / "wal", _service)
        assert replay.finished
        assert replayed.finished
        assert replayed.deliveries == len(batches)
        assert replayed.tracker.watermark == ref_ingestor.tracker.watermark
        _assert_same_state(replayed.service, reference)

    def test_resume_continues_where_the_log_stops(
        self, tmp_path, batches, uninterrupted
    ):
        reference, _ = uninterrupted
        half = len(batches) // 2
        service = _service()
        wal = WriteAheadLog(tmp_path / "wal", metrics=service.metrics)
        ingestor = EventTimeIngestor(service, wal=wal)
        for batch in batches[:half]:
            ingestor.deliver(batch)
        wal.sync()
        wal.close()  # process stops mid-stream (clean half of a crash)

        resumed, replay = replay_eventtime(
            tmp_path / "wal", _service, resume=True
        )
        assert not replay.finished
        assert resumed.deliveries == half
        assert resumed.wal is not None
        for batch in batches[half:]:
            resumed.deliver(batch)
        resumed.finish()
        resumed.wal.close()
        _assert_same_state(resumed.service, reference)
        # The resumed WAL now replays as one complete run.
        final, replay = replay_eventtime(tmp_path / "wal", _service)
        assert replay.finished
        _assert_same_state(final.service, reference)


class TestCrashDuringReconciliation:
    def test_injected_crash_recovers_to_equivalent_run(
        self, tmp_path, batches, uninterrupted
    ):
        """Kill the WAL mid-stream — after scoring has begun, so late
        readings are being reconciled — then recover and finish."""
        reference, _ = uninterrupted
        # Crash deep enough that weeks have been scored and revisions
        # may already have been published.
        crash_at = int(len(batches) * 0.8)
        service = _service()
        wal = CrashingWAL(
            tmp_path / "wal",
            CrashPoint(before_record=crash_at),
            metrics=service.metrics,
        )
        ingestor = EventTimeIngestor(service, wal=wal)
        delivered = 0
        with pytest.raises(SimulatedCrash):
            for batch in batches:
                ingestor.deliver(batch)
                delivered += 1
        assert delivered == crash_at  # append-before-process: the
        # crashed batch never reached watermark or service state.
        assert service.weeks_completed > 0

        resumed, replay = replay_eventtime(
            tmp_path / "wal", _service, resume=True
        )
        survived = resumed.deliveries
        assert survived <= crash_at
        for batch in batches[survived:]:
            resumed.deliver(batch)
        resumed.finish()
        resumed.wal.close()
        _assert_same_state(resumed.service, reference)

    def test_torn_tail_crash_recovers(self, tmp_path, batches, uninterrupted):
        """A byte-level torn write loses at most the unsynced tail."""
        reference, _ = uninterrupted
        service = _service()
        wal = CrashingWAL(
            tmp_path / "wal",
            CrashPoint(at_byte=200_000),
            metrics=service.metrics,
        )
        ingestor = EventTimeIngestor(service, wal=wal)
        with pytest.raises(SimulatedCrash):
            for batch in batches:
                ingestor.deliver(batch)

        resumed, replay = replay_eventtime(
            tmp_path / "wal", _service, resume=True
        )
        for batch in batches[resumed.deliveries :]:
            resumed.deliver(batch)
        resumed.finish()
        resumed.wal.close()
        _assert_same_state(resumed.service, reference)
