"""SlotClock and EventTimeConfig: the event-time coordinate system."""

import pytest

from repro.errors import ConfigurationError
from repro.eventtime import EventTimeConfig, SlotClock
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestSlotClock:
    def test_slot_of_timestamp_roundtrip(self):
        clock = SlotClock()
        for slot in (0, 1, 335, 336, 5000):
            assert clock.slot_of(clock.timestamp_of(slot)) == slot

    def test_slot_of_floors_within_slot(self):
        clock = SlotClock()
        assert clock.slot_of(0.0) == 0
        assert clock.slot_of(1799.9) == 0
        assert clock.slot_of(1800.0) == 1

    def test_epoch_offset(self):
        clock = SlotClock(epoch=3600.0)
        assert clock.slot_of(3600.0) == 0
        assert clock.slot_of(0.0) == -2

    def test_week_of_and_slot_in_week(self):
        clock = SlotClock()
        assert clock.week_of(0) == 0
        assert clock.week_of(SLOTS_PER_WEEK - 1) == 0
        assert clock.week_of(SLOTS_PER_WEEK) == 1
        assert clock.slot_in_week(SLOTS_PER_WEEK + 7) == 7

    def test_week_bounds_half_open(self):
        clock = SlotClock()
        start, end = clock.week_bounds(2)
        assert start == 2 * SLOTS_PER_WEEK
        assert end == 3 * SLOTS_PER_WEEK
        assert clock.week_of(end - 1) == 2
        assert clock.week_of(end) == 3

    def test_skew_sign_convention(self):
        clock = SlotClock()
        # Positive skew: the meter's declared slot is ahead of the
        # head-end's reference (a fast meter clock).
        assert clock.skew(12, 10) == 2
        assert clock.skew(8, 10) == -2
        assert clock.skew(10, 10) == 0

    def test_slot_seconds_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SlotClock(slot_seconds=0.0)
        with pytest.raises(ConfigurationError):
            SlotClock(slot_seconds=-1800.0)


class TestEventTimeConfig:
    def test_defaults(self):
        config = EventTimeConfig()
        assert config.lateness_slots == 48
        assert config.grace_weeks == 1
        assert config.grace_slots == SLOTS_PER_WEEK

    def test_finalization_slot(self):
        config = EventTimeConfig(grace_weeks=1)
        # Week 0 finalises once week 0 itself plus one grace week have
        # been fully released.
        assert config.finalization_slot(0) == 2 * SLOTS_PER_WEEK
        assert config.finalization_slot(3) == 5 * SLOTS_PER_WEEK

    def test_finalization_scales_with_grace(self):
        assert EventTimeConfig(grace_weeks=2).finalization_slot(0) == (
            3 * SLOTS_PER_WEEK
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EventTimeConfig(lateness_slots=-1)
        with pytest.raises(ConfigurationError):
            EventTimeConfig(grace_weeks=-1)
        with pytest.raises(ConfigurationError):
            EventTimeConfig(max_pending_readings=0)
