"""EventTimeIngestor: scrambled delivery converges to the in-order run.

The acceptance criterion for the event-time layer: delivering the same
readings out of order (within the lateness bound plus grace window)
produces byte-identical weekly reports and stores, with every
intermediate verdict change published as a versioned revision.
"""

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.errors import ConfigurationError, DataError
from repro.eventtime import (
    EventTimeConfig,
    EventTimeIngestor,
    StampedReading,
)
from repro.quarantine.firewall import FirewallPolicy, ReadingFirewall
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("c1", "c2", "c3", "c4")
LATENESS = 8
GRACE = 1
MAX_DELAY = LATENESS + GRACE * SLOTS_PER_WEEK


def _reading(cid, t, theft_start=None):
    rng = np.random.default_rng((11, t, CONSUMERS.index(cid)))
    value = float(rng.gamma(2.0, 0.5)) + 0.05
    if theft_start is not None and cid == "c1" and t >= theft_start:
        value *= 0.05
    return value


def _service(eventtime=None, max_pending=None):
    config = eventtime or EventTimeConfig(
        lateness_slots=LATENESS,
        grace_weeks=GRACE,
        max_pending_readings=max_pending,
    )
    return TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=3,
        retrain_every_weeks=2,
        # failure_threshold high: breaker trip order is delivery-order
        # dependent, which would break the equivalence being tested.
        resilience=ResilienceConfig(min_coverage=0.5, failure_threshold=10_000),
        population=CONSUMERS,
        firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
        eventtime=config,
    )


def _run(weeks, scramble, theft_start=None, seed=99):
    """Deliver ``weeks`` of readings, optionally scrambled within bound."""
    service = _service()
    ingestor = EventTimeIngestor(service)
    schedule = {}
    for t in range(weeks * SLOTS_PER_WEEK):
        rng = np.random.default_rng((seed, t))
        for cid in CONSUMERS:
            value = _reading(cid, t, theft_start)
            delay = int(rng.integers(0, MAX_DELAY)) if scramble else 0
            schedule.setdefault(t + delay, []).append(
                StampedReading(cid, t, value)
            )
            if scramble and rng.random() < 0.05:  # duplicate delivery
                dup = int(rng.integers(0, MAX_DELAY))
                schedule.setdefault(t + dup, []).append(
                    StampedReading(cid, t, value)
                )
    for tick in sorted(schedule):
        ingestor.deliver(schedule[tick])
    ingestor.finish()
    return service, ingestor


class TestConstruction:
    def test_requires_eventtime_config(self):
        service = TheftMonitoringService(
            detector_factory=KLDDetector,
            resilience=ResilienceConfig(),
            population=CONSUMERS,
            firewall=ReadingFirewall(),
        )
        with pytest.raises(ConfigurationError):
            EventTimeIngestor(service)

    def test_requires_declared_population(self):
        # The service itself tolerates an undeclared roster, but the
        # ingestor cannot: released slots may be partial, so the roster
        # can't be learned from a first cycle.
        service = TheftMonitoringService(
            detector_factory=KLDDetector,
            resilience=ResilienceConfig(),
            firewall=ReadingFirewall(),
            eventtime=EventTimeConfig(),
        )
        with pytest.raises(ConfigurationError):
            EventTimeIngestor(service)

    def test_eventtime_requires_firewall(self):
        with pytest.raises(ConfigurationError):
            TheftMonitoringService(
                detector_factory=KLDDetector,
                resilience=ResilienceConfig(),
                population=CONSUMERS,
                eventtime=EventTimeConfig(),
            )

    def test_unknown_consumer_rejected(self):
        ingestor = EventTimeIngestor(_service())
        with pytest.raises(DataError):
            ingestor.deliver([StampedReading("ghost", 0, 1.0)])

    def test_deliver_after_finish_rejected(self):
        ingestor = EventTimeIngestor(_service())
        ingestor.finish()
        with pytest.raises(DataError):
            ingestor.deliver([StampedReading("c1", 0, 1.0)])


class TestEquivalence:
    """Scrambled delivery == in-order delivery, modulo revision records."""

    def test_scrambled_run_converges_bit_identically(self):
        weeks = 8
        theft_start = 5 * SLOTS_PER_WEEK
        base_service, _ = _run(weeks, scramble=False, theft_start=theft_start)
        scr_service, _ = _run(weeks, scramble=True, theft_start=theft_start)
        assert base_service.weeks_completed == weeks
        assert scr_service.weeks_completed == weeks
        # The theft is detected in both runs ...
        assert any(len(r.alerts) > 0 for r in base_service.reports)
        # ... and every weekly report matches exactly: alerts, order,
        # coverage, quarantine and suppression sets.
        for base, scrambled in zip(base_service.reports, scr_service.reports):
            assert base == scrambled
        # Stores converge bit-identically (late true readings landed in
        # the same cells the in-order run filled directly).
        for cid in CONSUMERS:
            assert np.array_equal(
                base_service.store.series(cid),
                scr_service.store.series(cid),
                equal_nan=True,
            )
        # Nothing within the bound may fall off the grace window.
        too_late = scr_service.firewall.store.counts_by_reason().get(
            "too_late", 0
        )
        assert too_late == 0

    def test_scrambled_run_publishes_versioned_revisions(self):
        weeks = 8
        theft_start = 5 * SLOTS_PER_WEEK
        base_service, _ = _run(weeks, scramble=False, theft_start=theft_start)
        scr_service, _ = _run(weeks, scramble=True, theft_start=theft_start)
        # The in-order run never revises; the scrambled run documents
        # every flagged-state flip it made on the way to convergence.
        assert len(base_service.revisions) == 0
        assert len(scr_service.revisions) > 0
        for revision in scr_service.revisions.revisions:
            assert revision.flagged_before != revision.flagged_after
            assert revision.version >= 1
        report = scr_service.revisions.report()
        assert report["total"] == len(scr_service.revisions)


class TestLateRouting:
    def test_too_late_reading_quarantined(self):
        config = EventTimeConfig(lateness_slots=4, grace_weeks=0)
        service = _service(eventtime=config)
        ingestor = EventTimeIngestor(service)
        # Drive a full week plus the lateness bound so week 0 finalises.
        for t in range(SLOTS_PER_WEEK + 5):
            ingestor.deliver(
                [StampedReading(cid, t, 1.0) for cid in CONSUMERS]
            )
        assert service.weeks_completed == 1
        outcome = ingestor.deliver([StampedReading("c1", 3, 1.0)])
        assert outcome.too_late == 1
        counts = service.firewall.store.counts_by_reason()
        assert counts.get("too_late") == 1
        (record,) = service.firewall.store.for_consumer("c1")
        assert record.declared_slot == 3

    def test_late_reading_within_grace_reconciles(self):
        service = _service()
        ingestor = EventTimeIngestor(service)
        # Slot 0 releases once the frontier passes the lateness bound.
        for t in range(LATENESS + 1):
            ingestor.deliver(
                [StampedReading(cid, t, 1.0) for cid in CONSUMERS]
            )
        outcome = ingestor.deliver([StampedReading("c1", 0, 2.0)])
        assert outcome.reconciled == 1
        assert outcome.too_late == 0
        assert service.store.series("c1")[0] == 2.0

    def test_late_malformed_reading_screened_out(self):
        service = _service()
        ingestor = EventTimeIngestor(service)
        for t in range(LATENESS + 1):
            ingestor.deliver(
                [StampedReading(cid, t, 1.0) for cid in CONSUMERS]
            )
        outcome = ingestor.deliver([StampedReading("c1", 0, float("nan"))])
        assert outcome.screened_out == 1
        assert outcome.reconciled == 0
        assert service.store.series("c1")[0] == 1.0  # untouched


class TestBackpressure:
    def test_capacity_rejections_engage_signal(self):
        service = _service(max_pending=4)
        ingestor = EventTimeIngestor(service)
        # 5th distinct buffered reading overflows the bound of 4.
        outcome = ingestor.deliver(
            [StampedReading("c1", slot, 1.0) for slot in range(10, 15)]
        )
        assert len(outcome.rejected) == 1
        assert ingestor.signal.engaged
        assert service.backpressure is ingestor.signal

    def test_signal_releases_after_drain(self):
        service = _service(max_pending=4)
        ingestor = EventTimeIngestor(service)
        ingestor.deliver(
            [StampedReading("c1", slot, 1.0) for slot in range(10, 15)]
        )
        assert ingestor.signal.engaged
        # Advancing the frontier drains the buffer below the low mark.
        ingestor.deliver([StampedReading("c1", 40, 1.0)])
        assert not ingestor.signal.engaged


class TestTelemetry:
    def test_gauges_published(self):
        service = _service()
        ingestor = EventTimeIngestor(service)
        ingestor.deliver([StampedReading("c1", 5, 1.0)])
        metrics = service.metrics
        assert (
            metrics.gauge("fdeta_eventtime_buffer_readings").value() == 1.0
        )
        # Frontier 5, nothing released: 6 open slots.
        assert (
            metrics.gauge("fdeta_eventtime_watermark_lag_slots").value()
            == 6.0
        )

    def test_delivery_counter_by_outcome(self):
        service = _service()
        ingestor = EventTimeIngestor(service)
        ingestor.deliver([StampedReading("c1", 0, 1.0)])
        ingestor.deliver([StampedReading("c1", 0, 2.0)])  # update
        counter = service.metrics.counter(
            "fdeta_eventtime_deliveries_total", labels=("outcome",)
        )
        assert counter.value(outcome="buffered") == 1.0
        assert counter.value(outcome="updated") == 1.0
