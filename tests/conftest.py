"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import SmartMeterDataset
from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset() -> SmartMeterDataset:
    """A quick 6-consumer, 20-week dataset for unit tests."""
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=6, n_weeks=20, seed=11)
    )


@pytest.fixture(scope="session")
def paper_dataset() -> SmartMeterDataset:
    """A paper-shaped dataset: 74 weeks, 60 training, 10 consumers."""
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=10, n_weeks=74, seed=5)
    )


@pytest.fixture(scope="session")
def train_matrix(paper_dataset: SmartMeterDataset) -> np.ndarray:
    """One consumer's 60-week training matrix."""
    cid = paper_dataset.consumers()[0]
    return paper_dataset.train_matrix(cid)


def make_week(
    rng: np.random.Generator, mean: float = 1.0, sigma: float = 0.3
) -> np.ndarray:
    """A synthetic 336-slot week of lognormal readings."""
    return rng.lognormal(np.log(max(mean, 1e-6)), sigma, size=SLOTS_PER_WEEK)


@pytest.fixture(scope="session")
def injection_context(paper_dataset: SmartMeterDataset):
    """A realistic attack context: 60 training weeks + a replicated band."""
    from repro.attacks.injection.base import InjectionContext
    from repro.detectors.arima_detector import ARIMADetector

    cid = paper_dataset.consumers()[0]
    train = paper_dataset.train_matrix(cid)
    actual_week = paper_dataset.test_matrix(cid)[0]
    arima = ARIMADetector(max_violations=16).fit(train)
    lower, upper = arima.confidence_band()
    return InjectionContext(
        train_matrix=train,
        actual_week=actual_week,
        band_lower=lower,
        band_upper=upper,
    )
