"""Unit tests for the CER-format reader/writer."""

import numpy as np
import pytest

from repro.data.loader import (
    _format_timecode,
    _parse_timecode,
    load_cer_file,
    save_cer_file,
)
from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.errors import DataError


class TestTimecodes:
    def test_parse(self):
        assert _parse_timecode("19503") == (195, 2)

    def test_format_roundtrip(self):
        for day, slot in [(0, 0), (195, 2), (517, 47)]:
            code = _format_timecode(day, slot)
            assert _parse_timecode(code) == (day, slot)

    def test_rejects_malformed(self):
        with pytest.raises(DataError):
            _parse_timecode("1234")
        with pytest.raises(DataError):
            _parse_timecode("abcde")
        with pytest.raises(DataError):
            _parse_timecode("00160")  # slot 60 invalid

    def test_rejects_out_of_range_format(self):
        with pytest.raises(DataError):
            _format_timecode(1000, 0)
        with pytest.raises(DataError):
            _format_timecode(0, 48)


class TestRoundTrip:
    def test_save_load_preserves_readings(self, tmp_path):
        dataset = generate_cer_like_dataset(
            SyntheticCERConfig(n_consumers=3, n_weeks=4, seed=8)
        )
        path = tmp_path / "cer.txt"
        save_cer_file(dataset, path)
        loaded = load_cer_file(path, train_weeks=dataset.train_weeks)
        assert set(loaded.consumers()) == set(dataset.consumers())
        for cid in dataset.consumers():
            assert np.allclose(
                loaded.series(cid), dataset.series(cid), atol=1e-4
            )

    def test_load_converts_kwh_to_kw(self, tmp_path):
        path = tmp_path / "mini.txt"
        lines = []
        # Two weeks of constant 0.5 kWh per half-hour = 1 kW.
        for day in range(14):
            for slot in range(48):
                lines.append(f"9001 {day:03d}{slot + 1:02d} 0.5")
        path.write_text("\n".join(lines))
        ds = load_cer_file(path, train_weeks=1)
        assert np.allclose(ds.series("9001"), 1.0)

    def test_gappy_consumer_dropped(self, tmp_path):
        path = tmp_path / "gap.txt"
        lines = []
        for day in range(14):
            for slot in range(48):
                lines.append(f"9001 {day:03d}{slot + 1:02d} 0.5")
                if not (day == 3 and slot == 10):  # 9002 has one gap
                    lines.append(f"9002 {day:03d}{slot + 1:02d} 0.5")
        path.write_text("\n".join(lines))
        ds = load_cer_file(path, train_weeks=1)
        assert ds.consumers() == ("9001",)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        lines = ["# header", ""]
        for day in range(14):
            for slot in range(48):
                lines.append(f"9001 {day:03d}{slot + 1:02d} 0.25")
        path.write_text("\n".join(lines))
        ds = load_cer_file(path, train_weeks=1)
        assert np.allclose(ds.series("9001"), 0.5)

    def test_missing_file(self):
        with pytest.raises(DataError):
            load_cer_file("/nonexistent/file.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("9001 00101\n")
        with pytest.raises(DataError):
            load_cer_file(path)

    def test_negative_reading_rejected(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("9001 00101 -0.5\n")
        with pytest.raises(DataError):
            load_cer_file(path)

    def test_too_short_record_rejected(self, tmp_path):
        path = tmp_path / "short.txt"
        lines = [f"9001 000{slot + 1:02d} 0.5" for slot in range(48)]
        path.write_text("\n".join(lines))
        with pytest.raises(DataError):
            load_cer_file(path)
