"""Unit tests validating the synthetic CER-like generator against the
statistical properties the paper's evaluation depends on."""

import numpy as np
import pytest

from repro.data.consumers import ConsumerProfile, ConsumerType
from repro.data.synthetic import (
    SyntheticCERConfig,
    generate_cer_like_dataset,
    generate_consumer_series,
)
from repro.errors import ConfigurationError
from repro.pricing.schemes import TimeOfUsePricing
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SyntheticCERConfig()
        assert cfg.n_consumers == 500
        assert cfg.n_weeks == 74
        assert cfg.effective_train_weeks == 60

    def test_scaled_split(self):
        cfg = SyntheticCERConfig(n_weeks=37)
        assert cfg.effective_train_weeks == 30

    def test_explicit_train_weeks(self):
        cfg = SyntheticCERConfig(n_weeks=20, train_weeks=15)
        assert cfg.effective_train_weeks == 15

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            SyntheticCERConfig(n_consumers=0)
        with pytest.raises(ConfigurationError):
            SyntheticCERConfig(n_weeks=1)
        with pytest.raises(ConfigurationError):
            SyntheticCERConfig(n_weeks=10, train_weeks=10)


class TestGenerator:
    def test_series_length(self, rng):
        profile = ConsumerProfile(
            consumer_id="x", kind=ConsumerType.RESIDENTIAL, scale_kw=1.0
        )
        series = generate_consumer_series(profile, n_weeks=5, rng=rng)
        assert series.size == 5 * SLOTS_PER_WEEK

    def test_nonnegative(self, rng):
        profile = ConsumerProfile(
            consumer_id="x", kind=ConsumerType.SME, scale_kw=2.0
        )
        series = generate_consumer_series(profile, n_weeks=10, rng=rng)
        assert np.all(series >= 0)

    def test_scale_controls_level(self, rng):
        small = ConsumerProfile(
            consumer_id="a", kind=ConsumerType.RESIDENTIAL, scale_kw=0.5
        )
        big = ConsumerProfile(
            consumer_id="b", kind=ConsumerType.RESIDENTIAL, scale_kw=5.0
        )
        s = generate_consumer_series(small, 8, np.random.default_rng(1))
        b = generate_consumer_series(big, 8, np.random.default_rng(1))
        assert b.mean() == pytest.approx(10 * s.mean(), rel=0.05)

    def test_weekly_pattern_repeats(self, rng):
        """Weekly autocorrelation must dominate — the KLD detector's
        336-slot standardisation rests on it (Section VII-D)."""
        profile = ConsumerProfile(
            consumer_id="x",
            kind=ConsumerType.RESIDENTIAL,
            scale_kw=1.0,
            noise_sigma=0.15,
            vacation_rate=0.0,
            party_rate=0.0,
        )
        series = generate_consumer_series(profile, 20, rng)
        weeks = series.reshape(20, SLOTS_PER_WEEK)
        mean_profile = weeks.mean(axis=0)
        correlations = [
            np.corrcoef(week, mean_profile)[0, 1] for week in weeks
        ]
        assert np.mean(correlations) > 0.5

    def test_weekday_weekend_asymmetry(self, rng):
        profile = ConsumerProfile(
            consumer_id="x", kind=ConsumerType.SME, scale_kw=4.0,
            vacation_rate=0.0, party_rate=0.0,
        )
        series = generate_consumer_series(profile, 12, rng)
        weeks = series.reshape(12, 7, 48)
        weekday_mean = weeks[:, :5].mean()
        weekend_mean = weeks[:, 5:].mean()
        assert weekday_mean > 1.5 * weekend_mean  # SMEs closed weekends


class TestDatasetProperties:
    def test_type_mix_matches_cer(self):
        ds = generate_cer_like_dataset(SyntheticCERConfig(n_consumers=500, n_weeks=2, train_weeks=1))
        counts = ds.type_counts()
        assert counts[ConsumerType.RESIDENTIAL] == 404
        assert counts[ConsumerType.SME] == 36
        assert counts[ConsumerType.UNCLASSIFIED] == 60

    def test_peak_heaviness_matches_paper(self, small_dataset):
        """Section VIII-B3: ~94.4% of consumers are peak-heavier on >90%
        of days.  Assert a strong majority in the synthetic data."""
        mask = TimeOfUsePricing().peak_mask(SLOTS_PER_WEEK)
        fraction = small_dataset.peak_heaviness(mask)
        assert fraction >= 0.8

    def test_consumer_ids_cer_style(self, small_dataset):
        for cid in small_dataset.consumers():
            assert cid.isdigit()
            assert int(cid) >= 1000

    def test_deterministic(self):
        cfg = SyntheticCERConfig(n_consumers=3, n_weeks=4, seed=42)
        a = generate_cer_like_dataset(cfg)
        b = generate_cer_like_dataset(cfg)
        for cid in a.consumers():
            assert np.array_equal(a.series(cid), b.series(cid))

    def test_different_seeds_differ(self):
        a = generate_cer_like_dataset(
            SyntheticCERConfig(n_consumers=2, n_weeks=4, seed=1)
        )
        b = generate_cer_like_dataset(
            SyntheticCERConfig(n_consumers=2, n_weeks=4, seed=2)
        )
        cid = a.consumers()[0]
        assert not np.array_equal(a.series(cid), b.series(cid))
