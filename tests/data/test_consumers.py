"""Unit tests for consumer profiles."""

import numpy as np
import pytest

from repro.data.consumers import (
    CER_TYPE_FRACTIONS,
    ConsumerProfile,
    ConsumerType,
    sample_profile,
)
from repro.errors import ConfigurationError


class TestConsumerProfile:
    def test_valid_profile(self):
        profile = ConsumerProfile(
            consumer_id="1000", kind=ConsumerType.RESIDENTIAL, scale_kw=1.0
        )
        assert profile.scale_kw == 1.0

    def test_rejects_empty_id(self):
        with pytest.raises(ConfigurationError):
            ConsumerProfile(
                consumer_id="", kind=ConsumerType.SME, scale_kw=1.0
            )

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigurationError):
            ConsumerProfile(
                consumer_id="x", kind=ConsumerType.SME, scale_kw=0.0
            )

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            ConsumerProfile(
                consumer_id="x",
                kind=ConsumerType.SME,
                scale_kw=1.0,
                vacation_rate=1.5,
            )


class TestSampleProfile:
    def test_sme_larger_than_residential_on_average(self, rng):
        res = [
            sample_profile(f"r{i}", ConsumerType.RESIDENTIAL, rng).scale_kw
            for i in range(200)
        ]
        sme = [
            sample_profile(f"s{i}", ConsumerType.SME, rng).scale_kw
            for i in range(200)
        ]
        assert np.mean(sme) > 2 * np.mean(res)

    def test_heavy_tail_exists(self, rng):
        scales = [
            sample_profile(f"c{i}", ConsumerType.SME, rng).scale_kw
            for i in range(500)
        ]
        assert max(scales) > 5 * np.median(scales)

    def test_deterministic_given_rng_state(self):
        a = sample_profile("c", ConsumerType.RESIDENTIAL, np.random.default_rng(4))
        b = sample_profile("c", ConsumerType.RESIDENTIAL, np.random.default_rng(4))
        assert a == b


class TestCERFractions:
    def test_fractions_sum_to_one(self):
        assert sum(CER_TYPE_FRACTIONS.values()) == pytest.approx(1.0)

    def test_matches_paper_counts(self):
        assert CER_TYPE_FRACTIONS[ConsumerType.RESIDENTIAL] == pytest.approx(
            404 / 500
        )
        assert CER_TYPE_FRACTIONS[ConsumerType.SME] == pytest.approx(36 / 500)
        assert CER_TYPE_FRACTIONS[ConsumerType.UNCLASSIFIED] == pytest.approx(
            60 / 500
        )
