"""Streamed dataset generation: exact iterator + per-cycle stream."""

import numpy as np
import pytest

from repro.data import (
    StreamedCERPopulation,
    SyntheticCERConfig,
    generate_cer_like_dataset,
    iter_cer_like_series,
)
from repro.errors import ConfigurationError
from repro.timeseries.seasonal import SLOTS_PER_DAY, SLOTS_PER_WEEK

CFG = SyntheticCERConfig(n_consumers=20, n_weeks=3)


class TestIterator:
    def test_bit_identical_to_materialised_dataset(self):
        """The iterator is the dataset, one consumer at a time."""
        dataset = generate_cer_like_dataset(CFG)
        seen = []
        for cid, kind, series in iter_cer_like_series(CFG):
            seen.append(cid)
            assert np.array_equal(dataset.readings[cid], series)
            assert dataset.consumer_types[cid] is kind
        assert seen == sorted(dataset.readings, key=int)

    def test_lazy_consumption(self):
        """Taking one consumer does not generate the rest."""
        iterator = iter_cer_like_series(CFG)
        cid, _, series = next(iterator)
        assert cid == str(CFG.first_consumer_id)
        assert len(series) == CFG.n_weeks * SLOTS_PER_WEEK


class TestStreamedPopulation:
    def test_pure_function_of_seed_and_cycle(self):
        one = StreamedCERPopulation(CFG)
        two = StreamedCERPopulation(CFG)
        for cycle in (0, 7, 336, 500):
            assert np.array_equal(one.values_at(cycle), two.values_at(cycle))
        # Re-asking for an *older* cycle after moving forward (a chaos
        # re-feed) returns exactly the original values.
        replay = one.values_at(7)
        assert np.array_equal(replay, two.values_at(7))

    def test_different_seed_different_stream(self):
        base = StreamedCERPopulation(CFG)
        other = StreamedCERPopulation(
            SyntheticCERConfig(n_consumers=20, n_weeks=3, seed=99)
        )
        assert not np.array_equal(base.values_at(10), other.values_at(10))

    def test_values_are_finite_and_nonnegative(self):
        pop = StreamedCERPopulation(CFG)
        for cycle in range(0, 3 * SLOTS_PER_WEEK, 97):
            values = pop.values_at(cycle)
            assert values.shape == (20,)
            assert np.isfinite(values).all()
            assert (values >= 0).all()

    def test_readings_keyed_by_consumer_id(self):
        pop = StreamedCERPopulation(CFG)
        readings = pop.readings_at(0)
        assert set(readings) == set(pop.consumer_ids)
        assert len(pop) == 20
        assert all(isinstance(v, float) for v in readings.values())

    def test_iter_cycles_defaults_to_config_length(self):
        pop = StreamedCERPopulation(
            SyntheticCERConfig(n_consumers=3, n_weeks=2)
        )
        cycles = list(pop.iter_cycles())
        assert len(cycles) == 2 * SLOTS_PER_WEEK
        assert cycles[0][0] == 0 and cycles[-1][0] == 2 * SLOTS_PER_WEEK - 1

    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamedCERPopulation(CFG).values_at(-1)

    def test_diurnal_shape_present(self):
        """Evening residential load beats overnight standby on average."""
        pop = StreamedCERPopulation(
            SyntheticCERConfig(n_consumers=50, n_weeks=2)
        )
        night = np.mean(
            [pop.values_at(w * SLOTS_PER_WEEK + 6).mean() for w in range(2)]
        )  # 3am Monday
        evening = np.mean(
            [pop.values_at(w * SLOTS_PER_WEEK + 39).mean() for w in range(2)]
        )  # 7:30pm Monday
        assert evening > night

    def test_memory_stays_linear_in_population(self):
        """O(n_consumers) state: no per-week or per-slot accumulation."""
        import tracemalloc

        tracemalloc.start()
        pop = StreamedCERPopulation(
            SyntheticCERConfig(n_consumers=5000, n_weeks=2)
        )
        for cycle in range(0, 40):
            pop.values_at(cycle)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # ~10 float64 arrays of 5000 plus transients; far below the
        # ~27 MB the materialised series for 5000 consumers would take.
        assert peak < 8_000_000

    def test_party_spike_window_is_evening(self):
        """Anomaly spikes land in the 6pm+ window like the batch path."""
        cfg = SyntheticCERConfig(n_consumers=400, n_weeks=2)
        pop = StreamedCERPopulation(cfg)
        pop._anomalies_for(0)
        spiked = np.flatnonzero(pop._party_day >= 0)
        assert spiked.size > 0  # 400 consumers make one near-certain
        starts = pop._party_day[spiked] * SLOTS_PER_DAY + 36
        assert ((starts % SLOTS_PER_DAY) == 36).all()
