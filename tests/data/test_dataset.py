"""Unit tests for the SmartMeterDataset container."""

import numpy as np
import pytest

from repro.data.consumers import ConsumerType
from repro.data.dataset import SmartMeterDataset
from repro.errors import DataError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def make_dataset(n_consumers=3, n_weeks=5, train_weeks=3, seed=0):
    rng = np.random.default_rng(seed)
    readings = {
        f"c{i}": rng.uniform(0.1, 2.0, size=n_weeks * SLOTS_PER_WEEK)
        for i in range(n_consumers)
    }
    return SmartMeterDataset(readings=readings, train_weeks=train_weeks)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            SmartMeterDataset(readings={})

    def test_rejects_partial_week(self):
        with pytest.raises(DataError):
            SmartMeterDataset(readings={"c": np.ones(100)}, train_weeks=1)

    def test_rejects_negative_readings(self):
        series = np.ones(2 * SLOTS_PER_WEEK)
        series[0] = -1.0
        with pytest.raises(DataError):
            SmartMeterDataset(readings={"c": series}, train_weeks=1)

    def test_rejects_unequal_lengths(self):
        with pytest.raises(DataError):
            SmartMeterDataset(
                readings={
                    "a": np.ones(2 * SLOTS_PER_WEEK),
                    "b": np.ones(3 * SLOTS_PER_WEEK),
                },
                train_weeks=1,
            )

    def test_rejects_bad_split(self):
        with pytest.raises(DataError):
            SmartMeterDataset(
                readings={"a": np.ones(2 * SLOTS_PER_WEEK)}, train_weeks=2
            )

    def test_default_type_unclassified(self):
        ds = make_dataset()
        assert ds.type_of("c0") is ConsumerType.UNCLASSIFIED


class TestAccess:
    def test_shapes(self):
        ds = make_dataset(n_weeks=5, train_weeks=3)
        assert ds.n_weeks == 5
        assert ds.n_test_weeks == 2
        assert ds.train_matrix("c0").shape == (3, SLOTS_PER_WEEK)
        assert ds.test_matrix("c0").shape == (2, SLOTS_PER_WEEK)
        assert ds.week_matrix("c0").shape == (5, SLOTS_PER_WEEK)

    def test_train_test_partition(self):
        ds = make_dataset()
        cid = "c1"
        joined = np.concatenate([ds.train_series(cid), ds.test_series(cid)])
        assert np.array_equal(joined, ds.series(cid))

    def test_unknown_consumer(self):
        ds = make_dataset()
        with pytest.raises(DataError):
            ds.series("ghost")
        with pytest.raises(DataError):
            ds.type_of("ghost")

    def test_consumers_sorted(self):
        ds = make_dataset(n_consumers=5)
        assert list(ds.consumers()) == sorted(ds.consumers())

    def test_consumers_by_size_descending(self):
        rng = np.random.default_rng(0)
        readings = {
            "small": rng.uniform(0.1, 0.2, size=2 * SLOTS_PER_WEEK),
            "large": rng.uniform(5.0, 6.0, size=2 * SLOTS_PER_WEEK),
            "medium": rng.uniform(1.0, 2.0, size=2 * SLOTS_PER_WEEK),
        }
        ds = SmartMeterDataset(readings=readings, train_weeks=1)
        assert ds.consumers_by_size() == ("large", "medium", "small")

    def test_mean_demand(self):
        ds = SmartMeterDataset(
            readings={"c": np.full(2 * SLOTS_PER_WEEK, 1.5)}, train_weeks=1
        )
        assert ds.mean_demand("c") == pytest.approx(1.5)

    def test_subset(self):
        ds = make_dataset(n_consumers=4)
        sub = ds.subset(("c0", "c2"))
        assert set(sub.consumers()) == {"c0", "c2"}
        assert sub.train_weeks == ds.train_weeks

    def test_subset_unknown(self):
        ds = make_dataset()
        with pytest.raises(DataError):
            ds.subset(("ghost",))

    def test_peak_heaviness_rejects_bad_mask(self):
        ds = make_dataset()
        with pytest.raises(DataError):
            ds.peak_heaviness(np.ones(10, dtype=bool))
