"""Delivery-latency model: scrambled traces from synthetic datasets."""

import numpy as np
import pytest

from repro.data import DeliveryLatencyConfig, generate_delivery_trace
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def trace(small_dataset):
    readings = {
        cid: small_dataset.series(cid)[: 2 * 336]
        for cid in small_dataset.consumers()[:3]
    }
    return readings, generate_delivery_trace(
        readings, DeliveryLatencyConfig(max_delay_slots=16, seed=5)
    )


class TestConfig:
    def test_invalid_parameters_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            DeliveryLatencyConfig(duplicate_rate=2.0)
        with pytest.raises(ConfigurationError):
            DeliveryLatencyConfig(max_delay_slots=-1)

    def test_channel_reflects_config(self):
        channel = DeliveryLatencyConfig(
            median_delay_slots=7.0, max_delay_slots=9
        ).channel()
        assert channel.median_delay_slots == 7.0
        assert channel.max_delay_slots == 9


class TestTrace:
    def test_every_reading_delivered_at_least_once(self, trace):
        readings, batches = trace
        n_slots = 2 * 336
        keys = {(r.consumer_id, r.slot) for batch in batches for r in batch}
        expected = {
            (cid, t) for cid in readings for t in range(n_slots)
        }
        assert keys == expected  # nothing lost, nothing invented

    def test_values_are_the_true_readings(self, trace):
        readings, batches = trace
        for batch in batches:
            for r in batch:
                assert r.value == float(readings[r.consumer_id][r.slot])

    def test_delays_respect_the_cap(self, trace):
        _, batches = trace
        last = len(batches) - 1  # the drain batch may carry anything held
        for t, batch in enumerate(batches[:last]):
            for r in batch:
                assert 0 <= t - r.slot <= 16

    def test_trace_is_pure_function_of_seed(self, trace):
        readings, batches = trace
        again = generate_delivery_trace(
            readings, DeliveryLatencyConfig(max_delay_slots=16, seed=5)
        )
        assert again == batches
        different = generate_delivery_trace(
            readings, DeliveryLatencyConfig(max_delay_slots=16, seed=6)
        )
        assert different != batches
