"""Tests for raw-data preprocessing."""

import numpy as np
import pytest

from repro.data.preprocessing import (
    clip_spikes,
    detect_stuck_meter,
    interpolate_gaps,
    observed_fraction,
    preprocess_series,
)
from repro.errors import ConfigurationError, DataError


class TestInterpolateGaps:
    def test_fills_short_gap_linearly(self):
        series = np.array([1.0, np.nan, np.nan, 4.0])
        out = interpolate_gaps(series, max_gap=3)
        assert np.allclose(out, [1.0, 2.0, 3.0, 4.0])

    def test_leaves_long_gap(self):
        series = np.array([1.0, np.nan, np.nan, np.nan, 5.0])
        out = interpolate_gaps(series, max_gap=2)
        assert np.isnan(out[1:4]).all()

    def test_leading_gap_backfilled(self):
        series = np.array([np.nan, np.nan, 3.0, 4.0])
        out = interpolate_gaps(series, max_gap=2)
        assert np.allclose(out, [3.0, 3.0, 3.0, 4.0])

    def test_trailing_gap_forward_filled(self):
        series = np.array([1.0, 2.0, np.nan])
        out = interpolate_gaps(series, max_gap=2)
        assert np.allclose(out, [1.0, 2.0, 2.0])

    def test_no_gaps_is_identity(self, rng):
        series = rng.uniform(0, 2, size=50)
        assert np.array_equal(interpolate_gaps(series), series)

    def test_all_missing_rejected(self):
        with pytest.raises(DataError):
            interpolate_gaps(np.array([np.nan, np.nan]))

    def test_rejects_bad_max_gap(self):
        with pytest.raises(ConfigurationError):
            interpolate_gaps(np.array([1.0]), max_gap=0)

    def test_gap_exactly_at_max_gap_is_filled(self):
        """The boundary is inclusive: a run of exactly max_gap heals."""
        series = np.array([1.0, np.nan, np.nan, np.nan, 5.0])
        out = interpolate_gaps(series, max_gap=3)
        assert np.allclose(out, [1.0, 2.0, 3.0, 4.0, 5.0])
        # One slot longer is left alone.
        longer = np.array([1.0, np.nan, np.nan, np.nan, np.nan, 6.0])
        assert np.isnan(interpolate_gaps(longer, max_gap=3)[1:5]).all()

    def test_leading_and_trailing_gaps_together(self):
        series = np.array([np.nan, np.nan, 3.0, 7.0, np.nan])
        out = interpolate_gaps(series, max_gap=2)
        assert np.allclose(out, [3.0, 3.0, 3.0, 7.0, 7.0])

    def test_long_leading_gap_left_missing(self):
        series = np.array([np.nan, np.nan, np.nan, 4.0, 5.0])
        out = interpolate_gaps(series, max_gap=2)
        assert np.isnan(out[:3]).all()
        assert np.allclose(out[3:], [4.0, 5.0])

    def test_single_observation_island(self):
        """One reading surrounded by short gaps repairs to a constant."""
        series = np.array([np.nan, 2.0, np.nan])
        out = interpolate_gaps(series, max_gap=1)
        assert np.allclose(out, [2.0, 2.0, 2.0])


class TestClipSpikes:
    def test_clips_extreme_spike(self, rng):
        series = rng.uniform(0.5, 1.5, size=1000)
        series[10] = 500.0
        out = clip_spikes(series, max_multiple_of_p99=3.0)
        assert out[10] < 10.0
        assert np.array_equal(out[:10], series[:10])

    def test_normal_data_untouched(self, rng):
        series = rng.uniform(0.5, 1.5, size=1000)
        assert np.array_equal(clip_spikes(series), series)

    def test_rejects_bad_multiple(self):
        with pytest.raises(ConfigurationError):
            clip_spikes(np.ones(10), max_multiple_of_p99=1.0)


class TestStuckMeter:
    def test_detects_plateau(self, rng):
        series = rng.uniform(0.5, 1.5, size=500)
        series[100:160] = 0.777
        hit = detect_stuck_meter(series, min_run=48)
        assert hit == (100, 60)

    def test_zero_runs_ignored(self):
        """Long zero runs are vacancy, not a stuck register."""
        series = np.concatenate([np.zeros(100), np.ones(10)])
        assert detect_stuck_meter(series, min_run=48) is None

    def test_short_plateau_ignored(self, rng):
        series = rng.uniform(0.5, 1.5, size=200)
        series[10:20] = 0.9
        assert detect_stuck_meter(series, min_run=48) is None

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            detect_stuck_meter(np.array([]))

    def test_constant_zero_series_is_not_stuck(self):
        """An all-zero record is a vacant property, never a stuck meter."""
        assert detect_stuck_meter(np.zeros(1000), min_run=48) is None

    def test_constant_nonzero_series_is_stuck(self):
        series = np.full(100, 1.5)
        assert detect_stuck_meter(series, min_run=48) == (0, 100)

    def test_zero_run_followed_by_stuck_run(self):
        series = np.concatenate([np.zeros(60), np.full(60, 2.0), np.ones(5)])
        assert detect_stuck_meter(series, min_run=48) == (60, 60)

    def test_run_at_series_end_detected(self):
        series = np.concatenate([np.arange(1, 11, dtype=float), np.full(48, 0.4)])
        assert detect_stuck_meter(series, min_run=48) == (10, 48)

    def test_rejects_bad_min_run(self):
        with pytest.raises(ConfigurationError):
            detect_stuck_meter(np.ones(10), min_run=1)


class TestObservedFraction:
    def test_fully_observed(self):
        assert observed_fraction(np.ones(10)) == 1.0

    def test_half_observed(self):
        series = np.array([1.0, np.nan, 2.0, np.nan])
        assert observed_fraction(series) == 0.5

    def test_all_missing_is_zero(self):
        assert observed_fraction(np.array([np.nan, np.nan])) == 0.0

    def test_inf_counts_as_unobserved(self):
        series = np.array([1.0, np.inf, -np.inf, 2.0])
        assert observed_fraction(series) == 0.5

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            observed_fraction(np.array([]))


class TestPipeline:
    def test_clean_series_passes_through(self, rng):
        series = rng.uniform(0.5, 1.5, size=1000)
        out, summary = preprocess_series(series)
        assert not summary.dropped
        assert summary.interpolated_slots == 0
        assert np.array_equal(out, series)

    def test_gap_and_spike_repaired(self, rng):
        series = rng.uniform(0.5, 1.5, size=1000)
        series[5] = np.nan
        series[300] = 900.0
        out, summary = preprocess_series(series)
        assert not summary.dropped
        assert summary.interpolated_slots == 1
        assert summary.clipped_slots == 1
        assert np.isfinite(out).all()

    def test_unrecoverable_gap_drops_consumer(self, rng):
        series = rng.uniform(0.5, 1.5, size=1000)
        series[100:200] = np.nan
        _, summary = preprocess_series(series, max_gap=4)
        assert summary.dropped

    def test_stuck_meter_drops_consumer(self, rng):
        series = rng.uniform(0.5, 1.5, size=1000)
        series[500:600] = 1.234
        _, summary = preprocess_series(series)
        assert summary.dropped
        assert summary.stuck_run == (500, 100)
