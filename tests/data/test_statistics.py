"""Tests for dataset descriptive statistics."""

import numpy as np
import pytest

from repro.data.statistics import (
    render_population_summary,
    summarise_consumer,
    summarise_population,
    weekly_pattern_strength,
)
from repro.errors import DataError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestWeeklyPatternStrength:
    def test_identical_weeks_score_one(self):
        week = np.sin(np.linspace(0, 6 * np.pi, SLOTS_PER_WEEK)) + 2.0
        matrix = np.tile(week, (5, 1))
        assert weekly_pattern_strength(matrix) == pytest.approx(1.0)

    def test_random_weeks_score_low(self, rng):
        matrix = rng.uniform(0, 2, size=(10, SLOTS_PER_WEEK))
        assert weekly_pattern_strength(matrix) < 0.5

    def test_constant_weeks_score_zero(self):
        matrix = np.full((4, SLOTS_PER_WEEK), 1.0)
        assert weekly_pattern_strength(matrix) == 0.0

    def test_synthetic_consumers_strongly_periodic(self, paper_dataset):
        """The generator must produce the repeating weekly patterns the
        paper's detector design relies on."""
        strengths = [
            weekly_pattern_strength(paper_dataset.train_matrix(cid))
            for cid in paper_dataset.consumers()
        ]
        assert np.median(strengths) > 0.5

    def test_rejects_single_week(self):
        with pytest.raises(DataError):
            weekly_pattern_strength(np.ones((1, SLOTS_PER_WEEK)))


class TestConsumerSummary:
    def test_fields_consistent(self, paper_dataset):
        cid = paper_dataset.consumers()[0]
        summary = summarise_consumer(paper_dataset, cid)
        assert summary.consumer_id == cid
        assert 0 < summary.mean_kw <= summary.peak_kw
        assert 0 < summary.load_factor <= 1.0
        assert 0 <= summary.peak_window_share <= 1.0

    def test_peak_window_share_majority(self, paper_dataset):
        """Consumption concentrates in the 9am-midnight window."""
        cid = paper_dataset.consumers()[0]
        summary = summarise_consumer(paper_dataset, cid)
        assert summary.peak_window_share > 0.5


class TestPopulationSummary:
    def test_aggregates(self, paper_dataset):
        summary = summarise_population(paper_dataset)
        assert summary.n_consumers == paper_dataset.n_consumers
        assert summary.largest_consumer == paper_dataset.consumers_by_size()[0]
        assert summary.total_mean_kw > 0
        assert 0 <= summary.peak_heavy_fraction <= 1.0

    def test_render(self, paper_dataset):
        text = render_population_summary(summarise_population(paper_dataset))
        assert "consumers:" in text
        assert "largest consumer:" in text
        assert "%" in text
