"""ElasticFleet: dispatch, lag isolation, healing, epochs, cold start."""

import pytest
from _fixtures import (
    CONSUMERS,
    WEEKS,
    detector_factory,
    readings,
    service_factory,
)

from repro.core.online import TheftMonitoringService
from repro.errors import ConfigurationError, SupervisorError
from repro.eventtime.config import EventTimeConfig
from repro.observability.metrics import MetricsRegistry
from repro.resilience.config import ResilienceConfig
from repro.scaleout import ElasticFleet
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def _fleet(base_dir, **kwargs):
    kwargs.setdefault("n_shards", 2)
    return ElasticFleet(
        CONSUMERS, base_dir, service_factory, detector_factory, **kwargs
    )


class TestConstruction:
    def test_placement_comes_from_the_ring(self, tmp_path):
        from repro.scaleout import HashRing, balanced_assignments

        with _fleet(tmp_path) as fleet:
            expected = balanced_assignments(
                HashRing(fleet.shards), sorted(CONSUMERS)
            )
            assert {
                w.name: w.consumers for w in fleet.workers()
            } == expected

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ElasticFleet((), tmp_path, service_factory, detector_factory)
        with pytest.raises(ConfigurationError):
            _fleet(tmp_path / "a", n_shards=0)
        with pytest.raises(ConfigurationError):
            _fleet(tmp_path / "b", n_shards=7)  # more shards than meters
        with pytest.raises(ConfigurationError):
            _fleet(tmp_path / "c", hang_tolerance_cycles=0)

    def test_eventtime_services_rejected(self, tmp_path):
        def eventtime_factory(consumers):
            return TheftMonitoringService(
                detector_factory=detector_factory,
                min_training_weeks=2,
                resilience=ResilienceConfig(),
                eventtime=EventTimeConfig(lateness_slots=4),
                population=consumers,
            )

        with pytest.raises(ConfigurationError, match="event-time"):
            ElasticFleet(
                CONSUMERS, tmp_path, eventtime_factory, detector_factory
            )

    def test_close_is_idempotent(self, tmp_path):
        fleet = _fleet(tmp_path)
        fleet.close()
        fleet.close()
        with pytest.raises(SupervisorError):
            fleet.ingest_cycle(readings(0))

    def test_partial_build_failure_closes_cleanly(self, tmp_path):
        calls = []

        def exploding(consumers):
            calls.append(consumers)
            if len(calls) > 1:
                raise RuntimeError("boom building shard 2")
            return service_factory(consumers)

        with pytest.raises(RuntimeError, match="boom"):
            ElasticFleet(CONSUMERS, tmp_path, exploding, detector_factory)
        # The base_dir is fully released; a fresh fleet starts cleanly.
        with _fleet(tmp_path) as retry:
            retry.ingest_cycle(readings(0))


class TestDispatchAndWatermarks:
    def test_week_boundary_reports_every_shard(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            for t in range(SLOTS_PER_WEEK):
                reports = fleet.ingest_cycle(readings(t))
            assert set(reports) == set(fleet.shards)
            assert all(
                r is not None and r.week_index == 0
                for r in reports.values()
            )
            assert fleet.frontier == SLOTS_PER_WEEK - 1
            assert fleet.low_watermark == SLOTS_PER_WEEK - 1

    def test_hung_shard_lags_alone(self, tmp_path):
        with _fleet(tmp_path, hang_tolerance_cycles=5) as fleet:
            for t in range(3):
                fleet.ingest_cycle(readings(t))
            victim = fleet.shards[0]
            fleet.hang(victim)
            for t in range(3, 6):
                fleet.ingest_cycle(readings(t))
            # Healthy shards kept ingesting at the frontier; only the
            # hung one trails it.  No fleet-wide lockstep stall.
            assert fleet.frontier == 5
            assert fleet.low_watermark == 2
            assert fleet.shard_lag(victim) == 3
            assert fleet.lagging_shards(0) == (victim,)
            other = [s for s in fleet.shards if s != victim]
            assert all(fleet.shard_lag(s) == 0 for s in other)

    def test_hung_shard_heals_and_catches_up(self, tmp_path):
        with _fleet(tmp_path, hang_tolerance_cycles=2) as fleet:
            fleet.hang(fleet.shards[1])
            for t in range(2 * SLOTS_PER_WEEK):
                fleet.ingest_cycle(readings(t))
            # Healed (pending exceeded tolerance), fully caught up.
            assert fleet.low_watermark == 2 * SLOTS_PER_WEEK - 1
            assert fleet.restarts_total == 1
            streams = fleet.weekly_reports()
            assert all(len(reports) == 2 for reports in streams.values())

    def test_pending_queue_is_bounded_by_tolerance(self, tmp_path):
        with _fleet(tmp_path, hang_tolerance_cycles=3) as fleet:
            victim = fleet.shards[0]
            fleet.hang(victim)
            for t in range(50):
                fleet.ingest_cycle(readings(t))
                backlog = len(
                    next(
                        w for w in fleet.workers() if w.name == victim
                    ).pending
                )
                assert backlog <= 4  # tolerance + the cycle in flight


class TestHealing:
    def test_killed_shard_restarts_with_epoch_bump(self, tmp_path):
        metrics = MetricsRegistry()
        with _fleet(tmp_path, metrics=metrics) as fleet:
            victim = fleet.shards[0]
            before = fleet.epoch(victim)
            for t in range(10):
                fleet.ingest_cycle(readings(t))
            fleet.kill(victim)
            for t in range(10, SLOTS_PER_WEEK):
                fleet.ingest_cycle(readings(t))
            assert fleet.epoch(victim) == before + 1
            assert fleet.restarts_total == 1
            totals = metrics.totals()
            assert totals[("fdeta_fleet_restarts_total", ("killed",))] == 1.0
            # The dead worker's history was durable: week 0 is complete.
            assert [
                r.week_index for r in fleet.service(victim).reports
            ] == [0]

    def test_stale_wrapper_is_fenced_after_restart(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            victim = fleet.shards[0]
            for t in range(3):
                fleet.ingest_cycle(readings(t))
            stale = next(
                w for w in fleet.workers() if w.name == victim
            ).monitor
            fleet.kill(victim)
            fleet.ingest_cycle(readings(3))  # triggers the restart
            from repro.errors import StaleWriterError

            with pytest.raises(StaleWriterError):
                stale.ingest_cycle(readings(4))


class TestColdStart:
    def test_reopen_resumes_topology_and_epochs(self, tmp_path):
        fleet = _fleet(tmp_path)
        for t in range(SLOTS_PER_WEEK + 10):
            fleet.ingest_cycle(readings(t))
        shards = fleet.shards
        epochs = {name: fleet.epoch(name) for name in shards}
        fleet.close()

        reopened = ElasticFleet(
            (), tmp_path, service_factory, detector_factory
        )
        try:
            # Topology from the manifest; every epoch bumped so any
            # survivor of the previous incarnation is fenced out.
            assert reopened.shards == shards
            assert all(
                reopened.epoch(name) == epochs[name] + 1
                for name in shards
            )
            assert reopened.cycle == SLOTS_PER_WEEK + 10
            for t in range(reopened.cycle, WEEKS * SLOTS_PER_WEEK):
                reopened.ingest_cycle(readings(t))
            merged = reopened.merged_reports()
            assert [r.week_index for r in merged] == [0, 1, 2]
        finally:
            reopened.close()

    def test_refeed_overlap_is_skipped_not_double_counted(self, tmp_path):
        fleet = _fleet(tmp_path)
        for t in range(20):
            fleet.ingest_cycle(readings(t))
        fleet.close()
        reopened = ElasticFleet(
            (), tmp_path, service_factory, detector_factory
        )
        try:
            assert reopened.cycle == 20
            # A head-end that replays from 0 after the fleet recovered:
            # covered cycles are dropped before the durable layer, so
            # duplicate counters stay serial-equal to an undisturbed run.
            before = reopened.merged_metrics().totals()
            for worker in reopened.workers():
                worker.pending.extend(
                    (t, readings(t), None) for t in range(5)
                )
            reopened.ingest_cycle(readings(20))
            after = reopened.merged_metrics().totals()
            dup_keys = [
                k for k in after if "duplicate" in k[0] and after[k] > 0
            ]
            assert dup_keys == [
                k for k in before if "duplicate" in k[0] and before[k] > 0
            ]
        finally:
            reopened.close()
