"""Consistent-hash ring: determinism, balance, minimal movement."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.scaleout import (
    HashRing,
    balanced_assignments,
    moved_consumers,
)

ROSTER = tuple(f"m{i:04d}" for i in range(200))
SHARDS = tuple(f"shard-{i:04d}" for i in range(4))


class TestRingMembership:
    def test_shards_sorted_and_order_insensitive(self):
        a = HashRing(("b", "a", "c"))
        b = HashRing(("c", "b", "a"))
        assert a.shards == b.shards == ("a", "b", "c")
        assert len(a) == 3 and "b" in a and "z" not in a

    def test_duplicate_and_empty_names_rejected(self):
        ring = HashRing(("a",))
        with pytest.raises(ConfigurationError):
            ring.add_shard("a")
        with pytest.raises(ConfigurationError):
            ring.add_shard("")
        with pytest.raises(ConfigurationError):
            HashRing((), vnodes=0)

    def test_remove_unknown_shard_raises(self):
        with pytest.raises(ConfigurationError):
            HashRing(("a",)).remove_shard("b")

    def test_owner_requires_shards(self):
        with pytest.raises(ConfigurationError):
            HashRing(()).owner("m0001")


class TestPlacementDeterminism:
    def test_pure_function_of_seed_and_membership(self):
        one = HashRing(SHARDS).assignments(ROSTER)
        two = HashRing(tuple(reversed(SHARDS))).assignments(ROSTER)
        assert one == two

    def test_different_seed_different_placement(self):
        base = HashRing(SHARDS).assignments(ROSTER)
        other = HashRing(SHARDS, seed=7).assignments(ROSTER)
        assert base != other

    def test_add_then_remove_round_trips(self):
        ring = HashRing(SHARDS)
        before = ring.assignments(ROSTER)
        ring.add_shard("shard-0099")
        ring.remove_shard("shard-0099")
        assert ring.assignments(ROSTER) == before

    def test_every_shard_keyed_even_when_empty(self):
        ring = HashRing(SHARDS)
        assignment = ring.assignments(("m0000",))
        assert set(assignment) == set(SHARDS)
        assert sum(len(v) for v in assignment.values()) == 1


class TestBalance:
    def test_roster_partitioned_exactly(self):
        assignment = balanced_assignments(HashRing(SHARDS), ROSTER)
        everyone = sorted(
            cid for members in assignment.values() for cid in members
        )
        assert everyone == sorted(ROSTER)

    def test_vnodes_keep_imbalance_bounded(self):
        assignment = balanced_assignments(HashRing(SHARDS), ROSTER)
        sizes = [len(members) for members in assignment.values()]
        mean = len(ROSTER) / len(SHARDS)
        # 64 vnodes/shard keeps every shard within ~2x of fair share.
        assert min(sizes) >= mean * 0.4
        assert max(sizes) <= mean * 2.0

    def test_no_shard_left_empty(self):
        # Tiny rosters can leave raw ring arcs empty; the correction
        # must fill every shard deterministically.
        roster = ("a", "b", "c", "d", "e")
        ring = HashRing(SHARDS)
        one = balanced_assignments(ring, roster)
        two = balanced_assignments(HashRing(SHARDS), roster)
        assert one == two
        assert all(len(members) >= 1 for members in one.values())

    def test_validation(self):
        ring = HashRing(SHARDS)
        with pytest.raises(ConfigurationError):
            balanced_assignments(ring, ("a", "a", "b", "c", "d"))
        with pytest.raises(ConfigurationError):
            balanced_assignments(HashRing(()), ROSTER)
        with pytest.raises(ConfigurationError):
            balanced_assignments(ring, ("a", "b"))


class TestMinimalMovement:
    def test_single_shard_add_moves_at_most_fair_share(self):
        """The acceptance bound: one shard added moves <= ceil(n/shards)
        * (1 + eps) consumers."""
        ring = HashRing(SHARDS)
        before = balanced_assignments(ring, ROSTER)
        ring.add_shard("shard-0004")
        after = balanced_assignments(ring, ROSTER)
        moved = moved_consumers(before, after)
        bound = math.ceil(len(ROSTER) / 5) * 1.5
        assert 0 < len(moved) <= bound
        # Every mover landed on the new shard; nobody else changed home.
        assert set(moved) == set(after["shard-0004"])

    def test_single_shard_remove_moves_only_its_consumers(self):
        ring = HashRing(SHARDS)
        before = balanced_assignments(ring, ROSTER)
        ring.remove_shard("shard-0002")
        after = balanced_assignments(ring, ROSTER)
        moved = moved_consumers(before, after)
        assert set(moved) == set(before["shard-0002"])
        bound = math.ceil(len(ROSTER) / len(SHARDS)) * 1.5
        assert len(moved) <= bound

    def test_moved_consumers_requires_same_roster(self):
        with pytest.raises(ConfigurationError):
            moved_consumers({"a": ("x",)}, {"a": ("x", "y")})


class TestEdgeCases:
    """Degenerate fleets: empty ring, one shard, removing the last shard."""

    def test_empty_ring_has_no_shards_and_refuses_placement(self):
        ring = HashRing(())
        assert ring.shards == () and len(ring) == 0
        with pytest.raises(ConfigurationError, match="no shards"):
            ring.owner("m0001")
        with pytest.raises(ConfigurationError, match="no shards"):
            balanced_assignments(ring, ROSTER)
        with pytest.raises(ConfigurationError, match="no shards"):
            ring.assignments(ROSTER)
        # Only the empty roster has a (vacuous) placement on no shards.
        assert ring.assignments(()) == {}

    def test_single_shard_owns_everything(self):
        ring = HashRing(("only",))
        assign = balanced_assignments(ring, ROSTER)
        assert assign == {"only": tuple(sorted(ROSTER))}
        assert all(ring.owner(cid) == "only" for cid in ROSTER[:10])

    def test_remove_last_shard_leaves_a_working_empty_ring(self):
        ring = HashRing(("only",))
        ring.remove_shard("only")
        assert ring.shards == () and "only" not in ring
        with pytest.raises(ConfigurationError, match="no shards"):
            ring.owner("m0001")
        # The emptied ring is still a live object: re-adding restores
        # the exact placement a fresh ring would produce.
        ring.add_shard("only")
        assert ring.assignments(ROSTER) == HashRing(("only",)).assignments(
            ROSTER
        )

    def test_single_consumer_single_shard(self):
        ring = HashRing(("only",))
        assert balanced_assignments(ring, ("m0001",)) == {"only": ("m0001",)}

    def test_fewer_consumers_than_shards_refused(self):
        ring = HashRing(SHARDS)
        with pytest.raises(ConfigurationError, match="at least one consumer"):
            balanced_assignments(ring, ("m0001", "m0002"))

    def test_consumers_equal_shards_places_one_each(self):
        ring = HashRing(SHARDS)
        assign = balanced_assignments(ring, ROSTER[: len(SHARDS)])
        assert sorted(len(v) for v in assign.values()) == [1, 1, 1, 1]

    def test_empty_roster_on_empty_ring_still_refused(self):
        with pytest.raises(ConfigurationError, match="no shards"):
            balanced_assignments(HashRing(()), ())
