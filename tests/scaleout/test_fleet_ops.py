"""Ops-plane acceptance: health verdicts, SLO burn, stitched traces.

The fleet ops plane must answer three operator questions during the
kill–rebalance–heal chaos scenarios the fleet already survives:

* *which shard is the problem?* — a killed shard flags dead/unready
  with a reason, and flips back to ready once the next drain heals it;
* *are we burning error budget?* — an induced lag drives the
  ``verdict_staleness`` objective's burn rate above 1x;
* *what did that handoff actually do?* — the fleet tracer plus every
  shard tracer stitch into ONE tree rooted at ``shard_handoff``
  spanning all five protocol phases, even across a coordinator crash.
"""

import json

from _fixtures import (
    CONSUMERS,
    detector_factory,
    readings,
    service_factory,
)

from repro.observability.metrics import MetricsRegistry
from repro.observability.ops import SLOTracker, default_fleet_objectives
from repro.observability.tracing import Tracer, stitch_traces
from repro.scaleout import ElasticFleet

HANDOFF_PHASE_NAMES = [
    "quiesce",
    "snapshot",
    "commit",
    "install",
    "finalize",
]


class SimulatedCrash(Exception):
    """Raised from a phase hook to model the coordinator dying."""


def _fleet(base_dir, **kwargs):
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ElasticFleet(
        CONSUMERS, base_dir, service_factory, detector_factory, **kwargs
    )


def _feed(fleet, cycles, start=None):
    start = fleet.cycle if start is None else start
    for t in range(start, start + cycles):
        fleet.ingest_cycle(readings(t))


class TestHealthVerdicts:
    def test_killed_shard_flags_unready_then_heals(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            _feed(fleet, 3)
            fleet.kill("shard-0000")

            report = fleet.health_report()
            shard = report.shard("shard-0000")
            assert shard.state == "dead"
            assert not shard.live and not shard.ready
            assert "no running monitor" in shard.reasons
            assert report.unready() == ("shard-0000",)
            assert not report.fleet_live and not report.fleet_ready
            assert report.states == {
                "running": 1,
                "hung": 0,
                "dead": 1,
                "unreachable": 0,
            }
            ready_gauge = fleet.metrics.gauge(
                "fdeta_fleet_shard_ready", labels=("shard",)
            )
            assert ready_gauge.value(shard="shard-0000") == 0.0

            _feed(fleet, 1)  # the next drain heals the killed shard
            healed = fleet.health_report()
            shard = healed.shard("shard-0000")
            assert shard.state == "running"
            assert shard.live and shard.ready
            assert shard.reasons == ()
            assert shard.restarts == 1
            assert healed.fleet_live and healed.fleet_ready
            assert ready_gauge.value(shard="shard-0000") == 1.0

    def test_lagging_shard_is_live_but_unready(self, tmp_path):
        with _fleet(tmp_path, hang_tolerance_cycles=6) as fleet:
            _feed(fleet, 2)
            fleet.hang("shard-0001")
            _feed(fleet, 4)  # within tolerance: lags, not healed

            report = fleet.health_report(ready_lag_cycles=2)
            shard = report.shard("shard-0001")
            assert shard.state == "hung"
            assert shard.live  # liveness: don't replace a slow shard
            assert not shard.ready  # readiness: don't trust its verdicts
            assert shard.lag_cycles == 4
            assert shard.pending_cycles == 4
            assert any("lag 4 cycles" in r for r in shard.reasons)
            assert report.backlog_cycles == 4
            assert report.low_watermark < report.frontier

    def test_rollups_and_json_round_trip(self, tmp_path):
        with _fleet(tmp_path / "fleet") as fleet:
            _feed(fleet, 3)
            report = fleet.health_report()
            assert report.wal_bytes > 0  # every shard has WAL segments
            assert report.frontier == report.low_watermark == 2
            out = tmp_path / "health.json"
            report.write(out)
            payload = json.loads(out.read_text())
            assert payload["fleet_ready"] is True
            assert len(payload["shards"]) == 2
            gauge = fleet.metrics.gauge("fdeta_fleet_ready")
            assert gauge.value() == 1.0


class TestSLOBurnUnderChaos:
    def test_induced_lag_burns_the_staleness_budget(self, tmp_path):
        tracker = SLOTracker(default_fleet_objectives())
        with _fleet(
            tmp_path, hang_tolerance_cycles=8, slo=tracker
        ) as fleet:
            for _ in range(3):  # clean baseline points
                _feed(fleet, 1)
                fleet.observe_slo()
            baseline = fleet.slo_report().objective("verdict_staleness")
            assert baseline["burn_rate_short"] == 0.0

            fleet.hang("shard-0001")
            for _ in range(5):  # lag climbs past the 2-cycle threshold
                _feed(fleet, 1)
                fleet.observe_slo()

            report = fleet.slo_report()
            entry = report.objective("verdict_staleness")
            assert entry["burn_rate_short"] > 1.0
            assert entry["violated"]
            assert not report.healthy
            # Burn gauges mirror onto the fleet registry for scraping.
            burn = fleet.metrics.gauge(
                "fdeta_slo_burn_rate", labels=("objective", "window")
            )
            assert (
                burn.value(objective="verdict_staleness", window="short")
                > 1.0
            )

    def test_healthy_fleet_spends_no_budget(self, tmp_path):
        tracker = SLOTracker(default_fleet_objectives())
        with _fleet(tmp_path, slo=tracker) as fleet:
            for _ in range(4):
                _feed(fleet, 1)
                fleet.observe_slo()
            report = fleet.slo_report()
            assert report.healthy
            entry = report.objective("verdict_staleness")
            assert entry["budget_remaining"] == 1.0


class TestStitchedHandoffTraces:
    def test_live_add_shard_yields_one_five_phase_tree(self, tmp_path):
        with _fleet(tmp_path, tracer=Tracer(name="fleet")) as fleet:
            _feed(fleet, 2)
            name = fleet.add_shard()
            _feed(fleet, 1)

            roots = stitch_traces(fleet.tracers())
            assert len(roots) == 1
            root = roots[0]
            assert root["name"] == "shard_handoff"
            assert root["fields"]["kind"] == "add"
            phases = [c["name"] for c in root["children"]]
            assert phases == HANDOFF_PHASE_NAMES
            (install,) = [
                c for c in root["children"] if c["name"] == "install"
            ]
            moved = [c for c in install["children"]]
            assert {c["name"] for c in moved} == {
                "extract_consumer",
                "adopt_consumer",
            }
            # Every adoption landed on the new shard's own tracer.
            adopts = [
                c for c in moved if c["name"] == "adopt_consumer"
            ]
            assert adopts and all(
                c["fields"]["shard"] == name for c in adopts
            )
            assert all(
                c["span_id"].startswith(name + ":") for c in adopts
            )

    def test_crash_roll_forward_joins_the_original_trace(self, tmp_path):
        base = tmp_path / "fleet"
        crashed_tracer = Tracer(name="fleet")

        def crash_at_install(phase):
            if phase == "install":
                raise SimulatedCrash(phase)

        fleet = _fleet(base, tracer=crashed_tracer)
        try:
            _feed(fleet, 2)
            try:
                fleet.add_shard(on_phase=crash_at_install)
            except SimulatedCrash:
                pass
            else:  # pragma: no cover - the hook must fire
                raise AssertionError("crash hook did not fire")
        finally:
            fleet.close()

        recovery_tracer = Tracer(name="fleet-recovered")
        with ElasticFleet(
            (),
            base,
            service_factory,
            detector_factory,
            tracer=recovery_tracer,
        ) as healed:
            tracers = [crashed_tracer, *healed.tracers()]
            roots = stitch_traces(tracers)
            assert len(roots) == 1
            root = roots[0]
            assert root["name"] == "shard_handoff"
            # The crashed attempt got as far as starting install...
            attempted = [c["name"] for c in root["children"]]
            assert attempted[:4] == HANDOFF_PHASE_NAMES[:4]
            # ...and the cold-start roll-forward linked itself back to
            # the interrupted handoff via the manifest's trace context.
            (forward,) = [
                c
                for c in root["children"]
                if c["name"] == "handoff_roll_forward"
            ]
            replayed = [c["name"] for c in forward["children"]]
            assert replayed == ["install", "finalize"]
            (install,) = forward["children"][:1]
            assert {c["name"] for c in install["children"]} == {
                "extract_consumer",
                "adopt_consumer",
            }
            # The healed fleet is whole: three shards, all ready.
            _feed(healed, 1, start=healed.cycle)
            report = healed.health_report()
            assert len(report.shards) == 3
            assert report.fleet_ready
