"""Shared fixtures for the elastic-fleet suites.

A 6-consumer, 3-week world: readings are a pure function of the cycle
index (so chaos tests can re-feed any cycle after a crash), and ``c1``
starts under-reporting in week 2 so scored weeks have a known thief.
"""

import numpy as np

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = tuple(f"c{i}" for i in range(1, 7))
WEEKS = 3
THEFT_START = 2 * SLOTS_PER_WEEK


def detector_factory():
    return KLDDetector(significance=0.05)


def service_factory(consumers):
    """An ElasticFleet factory: ``consumers is None`` defers population."""
    return TheftMonitoringService(
        detector_factory=detector_factory,
        min_training_weeks=2,
        resilience=ResilienceConfig(),
        population=consumers,
    )


def readings(t):
    rng = np.random.default_rng((17, t))
    out = {cid: float(rng.gamma(2.0, 0.5)) for cid in CONSUMERS}
    if t >= THEFT_START:
        out["c1"] *= 0.05
    return out
