"""Kill–rebalance–heal chaos proofs.

The load-bearing claims of the elastic fleet:

* **placement neutrality** — an elastic fleet that grows and shrinks
  mid-run produces merged weekly verdicts bit-identical to one
  unsharded service over the same roster;
* **crash neutrality** — a coordinator crash at *any* handoff phase,
  plus worker kills and hangs around it, recovers (roll-back before the
  manifest commit, roll-forward after) to verdicts, revision logs, and
  reading stores bit-identical to an undisturbed fleet running the same
  topology schedule;
* **minimal movement** — a live shard add/remove migrates at most
  ~``n/shards`` consumers.
"""

import math

import numpy as np
import pytest
from _fixtures import (
    CONSUMERS,
    WEEKS,
    detector_factory,
    readings,
    service_factory,
)

from repro.scaleout import HANDOFF_PHASES, ElasticFleet, merged_signature
from repro.timeseries.seasonal import SLOTS_PER_WEEK

T = WEEKS * SLOTS_PER_WEEK
GROW_AT = SLOTS_PER_WEEK + 30
SHRINK_AT = 2 * SLOTS_PER_WEEK + 10


class SimulatedCrash(Exception):
    """Raised from a phase hook to model the coordinator dying."""


def _fleet(base_dir, **kwargs):
    kwargs.setdefault("n_shards", 2)
    return ElasticFleet(
        CONSUMERS, base_dir, service_factory, detector_factory, **kwargs
    )


def _reopen(base_dir):
    return ElasticFleet((), base_dir, service_factory, detector_factory)


def _series_equal(a, b):
    """Bit-equal reading stores, treating NaN gaps as equal."""
    if set(a) != set(b):
        return False
    return all(
        np.array_equal(
            np.asarray(a[cid], dtype=float),
            np.asarray(b[cid], dtype=float),
            equal_nan=True,
        )
        for cid in a
    )


def _revision_tuples(log):
    return [
        (
            r.week_index,
            r.consumer_id,
            r.version,
            r.kind.value,
            r.flagged_before,
            r.flagged_after,
        )
        for r in log.revisions
    ]


def _run_baseline(base_dir, grow=True, shrink=True):
    """An undisturbed fleet following the canonical topology schedule."""
    fleet = _fleet(base_dir)
    try:
        for t in range(T):
            if grow and t == GROW_AT:
                fleet.add_shard()
            if shrink and t == SHRINK_AT:
                fleet.remove_shard(fleet.shards[0])
            fleet.ingest_cycle(readings(t))
        return (
            fleet.merged_signature(),
            _revision_tuples(fleet.merged_revisions()),
            fleet.reading_series(),
        )
    finally:
        fleet.close()


class TestPlacementNeutrality:
    def test_elastic_fleet_matches_unsharded_service(self, tmp_path):
        """Grow + shrink mid-run; merged verdicts == one big service."""
        sig, revs, series = _run_baseline(tmp_path / "fleet")

        solo = service_factory(CONSUMERS)
        for t in range(T):
            solo.ingest_cycle(readings(t))
        assert sig == merged_signature({"solo": solo.reports})
        assert revs == _revision_tuples(solo.revisions)
        assert _series_equal(series, dict(solo.store._series))

    def test_handoff_moves_at_most_fair_share(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            for t in range(GROW_AT):
                fleet.ingest_cycle(readings(t))
            before = {w.name: w.consumers for w in fleet.workers()}
            new_shard = fleet.add_shard()
            after = {w.name: w.consumers for w in fleet.workers()}
            # Everyone previously placed either stayed home or moved to
            # the new shard; movement is bounded by the fair share.
            movers = [
                cid
                for name, members in before.items()
                for cid in members
                if cid not in after.get(name, ())
            ]
            bound = math.ceil(len(CONSUMERS) / len(after)) * 1.5
            assert 0 < len(movers) <= bound
            assert set(movers) == set(after[new_shard])


class TestKillRebalanceHeal:
    def test_kill_hang_and_rebalance_bit_identical(self, tmp_path):
        baseline = _run_baseline(tmp_path / "baseline")

        fleet = _fleet(tmp_path / "chaos")
        try:
            for t in range(T):
                if t == 40:
                    fleet.kill(fleet.shards[0])
                if t == SLOTS_PER_WEEK - 20:
                    fleet.hang(fleet.shards[1])
                if t == GROW_AT:
                    fleet.add_shard()
                if t == SHRINK_AT:
                    fleet.remove_shard(fleet.shards[0])
                if t == SHRINK_AT + 25:
                    fleet.kill(fleet.shards[-1])  # kill a handoff dest
                fleet.ingest_cycle(readings(t))
            assert fleet.restarts_total >= 3
            assert fleet.merged_signature() == baseline[0]
            assert _revision_tuples(fleet.merged_revisions()) == baseline[1]
            assert _series_equal(fleet.reading_series(), baseline[2])
        finally:
            fleet.close()


class TestCrashMidHandoff:
    @pytest.mark.parametrize("crash_phase", HANDOFF_PHASES)
    def test_crash_at_each_phase_recovers_bit_identical(
        self, tmp_path, crash_phase
    ):
        """Kill the coordinator at every handoff phase in turn.

        A crash before the manifest commit rolls the handoff back (the
        reopened fleet still has 2 shards and the add is redone); a
        crash at or after install rolls it forward (the reopened fleet
        already has 3).  Either way the final merged verdicts, revision
        log, and reading stores are bit-identical to an undisturbed
        fleet that performed the same grow — with a worker kill and a
        hang thrown in before the handoff for good measure.
        """
        baseline = _run_baseline(tmp_path / "baseline", shrink=False)

        def crash(phase):
            if phase == crash_phase:
                raise SimulatedCrash(phase)

        fleet = _fleet(tmp_path / "chaos")
        try:
            t = 0
            while t < T:
                if t == 40:
                    fleet.kill(fleet.shards[0])
                if t == 80:
                    fleet.hang(fleet.shards[1])
                if t == GROW_AT:
                    try:
                        fleet.add_shard(on_phase=crash)
                    except SimulatedCrash:
                        # The in-memory fleet is dead.  Reopen the same
                        # base_dir: recovery rolls the half-finished
                        # handoff back or forward off the manifest.
                        fleet.close()
                        fleet = _reopen(tmp_path / "chaos")
                        if len(fleet.shards) == 2:
                            fleet.add_shard()  # rolled back: redo it
                        assert len(fleet.shards) == 3
                        # Head-end re-feeds from the recovery cycle.
                        for tt in range(fleet.cycle, t):
                            fleet.ingest_cycle(readings(tt))
                fleet.ingest_cycle(readings(t))
                t += 1
            assert fleet.merged_signature() == baseline[0]
            assert _revision_tuples(fleet.merged_revisions()) == baseline[1]
            assert _series_equal(fleet.reading_series(), baseline[2])
        finally:
            fleet.close()

    def test_crash_then_cold_restart_still_bit_identical(self, tmp_path):
        """Crash mid-install, recover, then cold-restart at the end."""
        baseline = _run_baseline(tmp_path / "baseline", shrink=False)

        def crash(phase):
            if phase == "install":
                raise SimulatedCrash(phase)

        fleet = _fleet(tmp_path / "chaos")
        t = 0
        while t < T - 50:
            if t == GROW_AT:
                try:
                    fleet.add_shard(on_phase=crash)
                except SimulatedCrash:
                    fleet.close()
                    fleet = _reopen(tmp_path / "chaos")
                    for tt in range(fleet.cycle, t):
                        fleet.ingest_cycle(readings(tt))
            fleet.ingest_cycle(readings(t))
            t += 1
        fleet.close()  # clean shutdown ... then a fresh incarnation
        fleet = _reopen(tmp_path / "chaos")
        try:
            for t in range(fleet.cycle, T):
                fleet.ingest_cycle(readings(t))
            assert fleet.merged_signature() == baseline[0]
            assert _series_equal(fleet.reading_series(), baseline[2])
        finally:
            fleet.close()
