"""Merged verdict/metrics plane: >2 shards, collisions, restarts."""

import pytest
from _fixtures import (
    CONSUMERS,
    detector_factory,
    readings,
    service_factory,
)

from repro.eventtime.revision import RevisionLog, VerdictRevision
from repro.observability.metrics import MetricsRegistry
from repro.scaleout import (
    ElasticFleet,
    merge_metrics,
    merge_revisions,
    merge_weekly_reports,
    merged_signature,
    report_signature,
)
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestMetricsMerge:
    def test_three_registries_counters_add(self):
        registries = []
        for n in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("fdeta_test_total", "t").inc(n)
            registries.append(registry)
        merged = merge_metrics(registries)
        assert merged.totals()[("fdeta_test_total", ())] == 6.0

    def test_label_collisions_merge_per_sample(self):
        """The same metric name with different label values must merge
        sample-by-sample, and identical label sets must add."""
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for registry, shard in ((a, "s0"), (b, "s1"), (c, "s0")):
            registry.counter(
                "fdeta_shard_total", "t", labels=("shard",)
            ).inc(2, shard=shard)
        totals = merge_metrics((a, b, c)).totals()
        assert totals[("fdeta_shard_total", ("s0",))] == 4.0
        assert totals[("fdeta_shard_total", ("s1",))] == 2.0

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("fdeta_depth", "t").set(3.0)
        b.gauge("fdeta_depth", "t").set(7.0)
        merged = merge_metrics((a, b))
        [family] = [
            f
            for f in merged.snapshot()["families"]
            if f["name"] == "fdeta_depth"
        ]
        assert [s["value"] for s in family["samples"]] == [7.0]

    def test_merge_order_invariant_for_totals(self):
        registries = []
        for n in (5, 11, 2):
            registry = MetricsRegistry()
            registry.counter("fdeta_x_total", "t").inc(n)
            registry.histogram("fdeta_lat_seconds", "t").observe(0.01 * n)
            registries.append(registry)
        forward = merge_metrics(registries).totals()
        backward = merge_metrics(tuple(reversed(registries))).totals()
        assert forward == backward


class TestFleetMetricsMerge:
    def _run(self, base_dir, n_shards, cycles, chaos=None):
        fleet = ElasticFleet(
            CONSUMERS,
            base_dir,
            service_factory,
            detector_factory,
            n_shards=n_shards,
        )
        try:
            for t in range(cycles):
                if chaos is not None:
                    chaos(fleet, t)
                fleet.ingest_cycle(readings(t))
            return fleet.merged_metrics().totals()
        finally:
            fleet.close()

    def test_three_shard_merge_counts_every_reading(self, tmp_path):
        totals = self._run(tmp_path, 3, SLOTS_PER_WEEK)
        accepted = [
            value
            for (name, _), value in totals.items()
            if name == "fdeta_readings_total"
        ]
        assert accepted and sum(accepted) == len(CONSUMERS) * SLOTS_PER_WEEK

    @staticmethod
    def _reading_scoped(totals):
        """Counters proportional to readings/consumers/weeks — the ones
        that must be *identical* between a sharded and unsharded run.
        Per-cycle structural counters (each shard runs its own ingest
        loop) and WAL/fleet plumbing are inherently per-worker."""
        structural = (
            "fdeta_wal_",
            "fdeta_storage_",
            "fdeta_fleet_",
            "fdeta_recovery_",
            "fdeta_ingest_cycle",
            "fdeta_ingest_cycles_total",
            "fdeta_stage_seconds",
            "fdeta_weeks_completed_total",
        )
        return {
            key: value
            for key, value in totals.items()
            if not key[0].startswith(structural)
        }

    def test_sharded_counters_serial_equal_to_unsharded(self, tmp_path):
        """Reading-scoped counter totals across 3 shards == one
        unsharded service over the same roster and cycles."""
        totals = self._run(tmp_path / "fleet", 3, SLOTS_PER_WEEK)
        solo = service_factory(CONSUMERS)
        for t in range(SLOTS_PER_WEEK):
            solo.ingest_cycle(readings(t))
        assert self._reading_scoped(totals) == self._reading_scoped(
            solo.metrics.totals()
        )

    def test_merge_after_restart_is_serial_equal(self, tmp_path):
        """A killed-and-healed shard must not skew merged counters."""

        def chaos(fleet, t):
            if t == 30:
                fleet.kill(fleet.shards[1])

        disturbed = self._run(
            tmp_path / "disturbed", 3, SLOTS_PER_WEEK, chaos=chaos
        )
        undisturbed = self._run(tmp_path / "undisturbed", 3, SLOTS_PER_WEEK)

        def counting(totals):
            return {
                key: value
                for key, value in totals.items()
                if not key[0].startswith(
                    (
                        "fdeta_wal_",
                        "fdeta_storage_",
                        "fdeta_fleet_",
                        "fdeta_recovery_",
                    )
                )
                and "latency" not in key[0]
            }

        assert counting(disturbed) == counting(undisturbed)


class TestReportMerge:
    def test_merge_groups_by_week_and_sorts_by_roster(self, tmp_path):
        fleet = ElasticFleet(
            CONSUMERS,
            tmp_path,
            service_factory,
            detector_factory,
            n_shards=3,
        )
        try:
            for t in range(2 * SLOTS_PER_WEEK):
                fleet.ingest_cycle(readings(t))
            merged = merge_weekly_reports(
                fleet.weekly_reports(), roster=sorted(CONSUMERS)
            )
            assert [r.week_index for r in merged] == [0, 1]
            assert len(merged[0].shards) == 3
            assert sorted(merged[0].coverage) == sorted(CONSUMERS)
        finally:
            fleet.close()

    def test_signature_is_placement_invariant(self):
        """Same reports split differently -> identical signatures."""
        solo = service_factory(CONSUMERS)
        for t in range(SLOTS_PER_WEEK):
            solo.ingest_cycle(readings(t))
        [report] = solo.reports
        whole = merged_signature({"one": [report]})
        assert report_signature(report) == whole[0]


class TestRevisionMerge:
    def test_merge_orders_and_tracks_versions(self):
        from repro.eventtime.revision import RevisionKind

        a, b = RevisionLog(), RevisionLog()
        one = a.record(
            week_index=1,
            consumer_id="c2",
            kind=RevisionKind.UPGRADE,
            reason="late_data",
            cycle=400,
            flagged_before=False,
            flagged_after=True,
        )
        two = b.record(
            week_index=0,
            consumer_id="c1",
            kind=RevisionKind.DOWNGRADE,
            reason="late_data",
            cycle=350,
            flagged_before=True,
            flagged_after=False,
        )
        merged = merge_revisions((a, b))
        assert [r.consumer_id for r in merged.revisions] == ["c1", "c2"]
        assert isinstance(one, VerdictRevision)
        assert isinstance(two, VerdictRevision)
        # Version bookkeeping survives the merge: the next revision of
        # the same (week, consumer) continues the sequence.
        after = merged.record(
            week_index=1,
            consumer_id="c2",
            kind=RevisionKind.DOWNGRADE,
            reason="late_data",
            cycle=500,
            flagged_before=True,
            flagged_after=False,
        )
        assert after.version == one.version + 1
