"""Deterministic partition chaos: degrade, buffer, heal, fence zombies.

The storage chaos suites prove the fleet survives a lying disk; these
prove it survives a lying *network*: a severed shard degrades instead
of crashing the fleet, its cycles buffer for replay, reconnection heals
it back to bit-identical merged verdicts, and a coordinator that lost
ownership is refused at the wire.
"""

import pytest
from _fixtures import (
    CONSUMERS,
    WEEKS,
    detector_factory,
    readings,
    service_factory,
)

from repro.errors import StaleLeaseError, SupervisorError
from repro.observability.metrics import MetricsRegistry
from repro.scaleout.fleet import ElasticFleet
from repro.timeseries.seasonal import SLOTS_PER_WEEK
from repro.transport import FaultyTransport, InProcTransport, NetworkFaultSchedule

T = WEEKS * SLOTS_PER_WEEK


def _fleet(base_dir, transport=None, **kw):
    if transport is not None:
        kw["transport"] = transport
    return ElasticFleet(
        CONSUMERS,
        base_dir,
        service_factory,
        detector_factory,
        n_shards=2,
        **kw,
    )


def _baseline_signature(tmp_path_factory):
    with _fleet(tmp_path_factory.mktemp("baseline")) as fleet:
        for t in range(T):
            fleet.ingest_cycle(readings(t))
        return fleet.merged_signature()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    return _baseline_signature(tmp_path_factory)


class TestPartitionLifecycle:
    def test_partition_degrades_buffers_and_heals_bit_identical(
        self, tmp_path, baseline
    ):
        schedule = NetworkFaultSchedule.parse(
            "shard-0000:ingest@30=partition"
        )
        transport = FaultyTransport(schedule)
        metrics = MetricsRegistry()
        with _fleet(tmp_path, transport, metrics=metrics) as fleet:
            for t in range(60):
                fleet.ingest_cycle(readings(t))
            # Mid-partition: the severed shard is degraded, not dead —
            # its cycles buffer while the healthy shard ingests at the
            # frontier.
            assert fleet.unreachable_shards() == ("shard-0000",)
            worker = fleet._workers["shard-0000"]
            assert worker.monitor is not None and not worker.hung
            assert len(worker.pending) > 0
            assert fleet.watermarks.high_marks["shard-0001"] == 59

            report = fleet.health_report()
            shard = report.shard("shard-0000")
            assert shard.state == "unreachable" and shard.unreachable
            assert not shard.ready
            assert any("partition" in r for r in shard.reasons)
            assert any("buffered for replay" in r for r in shard.reasons)
            assert report.states["unreachable"] == 1
            gauge = metrics.gauge(
                "fdeta_fleet_shard_unreachable",
                "1 while the shard's transport link is severed.",
                labels=("shard",),
            )
            assert gauge.value(shard="shard-0000") == 1.0

            # Heal the link; the backlog replays and the fleet converges.
            transport.heal_all()
            drained = fleet.drain_backlog()
            assert drained > 0  # the partition buffer replayed
            assert fleet.unreachable_shards() == ()
            for t in range(60, T):
                fleet.ingest_cycle(readings(t))
            assert fleet.low_watermark == T - 1
            assert fleet.merged_signature() == baseline

    def test_scheduled_heal_reconnects_without_operator(self, tmp_path, baseline):
        schedule = NetworkFaultSchedule.parse(
            "shard-0001:*@25=partition,shard-0001:*@40=heal"
        )
        with _fleet(tmp_path, FaultyTransport(schedule)) as fleet:
            for t in range(T):
                fleet.ingest_cycle(readings(t))
            # The heal fired off this coordinator's own probes: no
            # manual heal_all() was ever needed.
            assert schedule.exhausted
            assert fleet.unreachable_shards() == ()
            fleet.drain_backlog()
            assert fleet.low_watermark == T - 1
            assert fleet.merged_signature() == baseline

    def test_transient_faults_invisible_in_verdicts(self, tmp_path, baseline):
        schedule = NetworkFaultSchedule.parse(
            "shard-*:ingest@7=drop,shard-*:ingest@19=delay,"
            "shard-*:ingest@31=dup,shard-*:ingest@43=reorder,"
            "shard-*:ingest@57=garble"
        )
        transport = FaultyTransport(schedule)
        with _fleet(tmp_path, transport) as fleet:
            for t in range(T):
                fleet.ingest_cycle(readings(t))
            assert schedule.exhausted
            assert fleet.low_watermark == T - 1
            assert fleet.merged_signature() == baseline
            # The injection ledger is complete evidence for the run.
            assert [e["kind"] for e in schedule.ledger] == [
                "drop", "delay", "dup", "reorder", "garble",
            ]

    def test_rebalance_refused_across_partition(self, tmp_path):
        transport = FaultyTransport(
            NetworkFaultSchedule.parse("shard-0000:ingest@10=partition")
        )
        with _fleet(tmp_path, transport) as fleet:
            for t in range(12):
                fleet.ingest_cycle(readings(t))
            assert fleet.unreachable_shards() == ("shard-0000",)
            with pytest.raises(SupervisorError, match="partition"):
                fleet.add_shard()
            # Heal, drain, and the same handoff goes through.
            transport.heal_all()
            fleet.drain_backlog()
            name = fleet.add_shard()
            assert name in fleet.shards


class TestLeaseFencing:
    def test_zombie_coordinator_refused_at_the_wire(self, tmp_path):
        transport = InProcTransport()
        old = _fleet(tmp_path, transport)
        try:
            for t in range(10):
                old.ingest_cycle(readings(t))
            # A new incarnation reopens the same durable state over the
            # same wire; its manifest epochs exceed the zombie's.
            new = ElasticFleet(
                (),
                tmp_path,
                service_factory,
                detector_factory,
                transport=transport,
            )
            try:
                with pytest.raises(StaleLeaseError):
                    old.ingest_cycle(readings(10))
                for t in range(new.cycle, 15):
                    new.ingest_cycle(readings(t))
                assert new.low_watermark == 14
                for name in new.shards:
                    lease = new.shard_lease(name)
                    assert lease is not None
                    assert lease.holder == new.holder
            finally:
                new.close()
        finally:
            old.close()

    def test_leases_renewed_by_writes_never_expire_under_load(self, tmp_path):
        with _fleet(tmp_path, lease_ttl_cycles=2) as fleet:
            for t in range(20):
                fleet.ingest_cycle(readings(t))
            for name in fleet.shards:
                lease = fleet.shard_lease(name)
                assert lease is not None
                assert not lease.expired(fleet.cycle)

    def test_health_reports_leased_out_shard(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            for t in range(5):
                fleet.ingest_cycle(readings(t))
            # Another coordinator takes one shard over the same wire.
            endpoint = fleet.transport.endpoint("shard-0000")
            endpoint.acquire_lease(
                "usurper", epoch=fleet.epoch("shard-0000") + 10, seq=5, ttl=8
            )
            report = fleet.health_report()
            shard = report.shard("shard-0000")
            assert shard.lease_holder == "usurper"
            assert any("leased out" in r for r in shard.reasons)

    def test_lease_ttl_validated(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="lease_ttl_cycles"):
            _fleet(tmp_path, lease_ttl_cycles=0)


class TestRestartsUnderTransport:
    def test_crash_restart_still_heals_through_the_seam(self, tmp_path, baseline):
        with _fleet(tmp_path) as fleet:
            for t in range(40):
                fleet.ingest_cycle(readings(t))
            fleet.kill("shard-0000")
            for t in range(40, T):
                fleet.ingest_cycle(readings(t))
            assert fleet.low_watermark == T - 1
            assert fleet.merged_signature() == baseline
            # The restart re-acquired the lease at the bumped epoch.
            lease = fleet.shard_lease("shard-0000")
            assert lease is not None and lease.holder == fleet.holder
            assert lease.epoch == fleet.epoch("shard-0000")
