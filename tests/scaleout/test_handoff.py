"""Handoff primitives: manifest atomicity, epoch fencing, records."""

import json
import os

import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.durability.recovery import DurableTheftMonitor
from repro.durability.wal import WriteAheadLog
from repro.errors import HandoffError, StaleWriterError
from repro.resilience.config import ResilienceConfig
from repro.scaleout import (
    HANDOFF_PHASES,
    FencedMonitor,
    HandoffRecord,
    read_manifest,
    write_manifest,
)


def _factory():
    return KLDDetector(significance=0.05)


def _service(consumers=("c1", "c2")):
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=2,
        resilience=ResilienceConfig(),
        population=consumers,
    )


def _fenced(tmp_path, shard="shard-0000", epoch=1, fence=None):
    service = _service()
    wal = WriteAheadLog(tmp_path / shard)
    inner = DurableTheftMonitor(
        service, wal, checkpoint_path=str(tmp_path / f"{shard}.ckpt")
    )
    fence = fence if fence is not None else {shard: epoch}
    return FencedMonitor(inner, shard, epoch, fence), fence


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fleet.json"
        state = {"shards": {"shard-0000": {"epoch": 3}}, "cycle": 42}
        write_manifest(path, state)
        loaded = read_manifest(path)
        assert loaded["shards"] == state["shards"]
        assert loaded["cycle"] == 42

    def test_missing_manifest_reads_none(self, tmp_path):
        assert read_manifest(tmp_path / "absent.json") is None

    def test_write_replaces_atomically(self, tmp_path):
        path = tmp_path / "fleet.json"
        write_manifest(path, {"cycle": 1})
        write_manifest(path, {"cycle": 2})
        assert read_manifest(path)["cycle"] == 2
        assert not os.path.exists(f"{path}.tmp")

    def test_corrupt_manifest_raises(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("{ torn json", encoding="utf-8")
        with pytest.raises(HandoffError, match="corrupt"):
            read_manifest(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(HandoffError, match="version"):
            read_manifest(path)


class TestHandoffRecord:
    def test_json_round_trip(self):
        record = HandoffRecord(
            moves=(("c1", "shard-0000", "shard-0002"),),
            added=("shard-0002",),
            retiring=("shard-0001",),
            cycle=336,
            retiring_dirs=(("shard-0001", "/wal", "/ckpt"),),
        )
        assert HandoffRecord.from_json(record.to_json()) == record

    def test_phase_names_are_stable(self):
        # Chaos suites and operators key off these exact names.
        assert HANDOFF_PHASES == (
            "quiesce",
            "snapshot",
            "commit",
            "install",
            "finalize",
        )


class TestFencing:
    def test_current_epoch_writes_pass(self, tmp_path):
        monitor, _ = _fenced(tmp_path)
        try:
            report = monitor.ingest_cycle({"c1": 1.0, "c2": 2.0})
            assert report is None
            assert monitor.service.cycles_ingested == 1
        finally:
            monitor.close()

    def test_superseded_epoch_raises_stale_writer(self, tmp_path):
        monitor, fence = _fenced(tmp_path)
        try:
            fence["shard-0000"] += 1  # ownership moved on
            with pytest.raises(StaleWriterError):
                monitor.ingest_cycle({"c1": 1.0, "c2": 2.0})
            with pytest.raises(StaleWriterError):
                monitor.checkpoint_now()
        finally:
            monitor.close()

    def test_removed_shard_fences_writer(self, tmp_path):
        monitor, fence = _fenced(tmp_path)
        try:
            del fence["shard-0000"]  # shard retired from the fleet
            with pytest.raises(StaleWriterError):
                monitor.ingest_cycle({"c1": 1.0, "c2": 2.0})
        finally:
            monitor.close()

    def test_checkpoint_now_compacts_to_a_self_contained_state(
        self, tmp_path
    ):
        monitor, _ = _fenced(tmp_path)
        try:
            for t in range(5):
                monitor.ingest_cycle({"c1": 1.0, "c2": 2.0})
            monitor.checkpoint_now()
            assert os.path.exists(tmp_path / "shard-0000.ckpt")
        finally:
            monitor.close()
        restored = TheftMonitoringService.restore(
            tmp_path / "shard-0000.ckpt", _factory
        )
        assert restored.cycles_ingested == 5

    def test_checkpoint_now_requires_checkpoint_path(self, tmp_path):
        service = _service()
        wal = WriteAheadLog(tmp_path / "shard-0000")
        inner = DurableTheftMonitor(service, wal, checkpoint_path=None)
        monitor = FencedMonitor(inner, "shard-0000", 1, {"shard-0000": 1})
        try:
            with pytest.raises(HandoffError, match="checkpoint"):
                monitor.checkpoint_now()
        finally:
            monitor.close()
