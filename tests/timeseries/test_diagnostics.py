"""Tests for the Ljung-Box residual diagnostic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.timeseries.arima import ARIMA
from repro.timeseries.diagnostics import ljung_box


class TestLjungBox:
    def test_white_noise_not_rejected(self, rng):
        result = ljung_box(rng.normal(size=2000), lags=20)
        assert result.p_value > 0.01
        assert result.residuals_look_white or result.p_value > 0.01

    def test_autocorrelated_series_rejected(self, rng):
        noise = rng.normal(size=2000)
        series = np.zeros(2000)
        for t in range(1, 2000):
            series[t] = 0.7 * series[t - 1] + noise[t]
        result = ljung_box(series, lags=10)
        assert result.p_value < 0.001
        assert not result.residuals_look_white

    def test_good_arima_fit_leaves_whiter_residuals(self, rng):
        noise = rng.normal(size=3000)
        series = np.zeros(3000)
        for t in range(1, 3000):
            series[t] = 0.6 * series[t - 1] + noise[t]
        model = ARIMA(order=(1, 0, 0), refine=False).fit(series)
        raw = ljung_box(series, lags=10)
        fitted = ljung_box(model.residuals()[5:], lags=10, n_fitted_params=1)
        assert fitted.statistic < raw.statistic

    def test_dof_accounts_for_parameters(self, rng):
        residuals = rng.normal(size=500)
        plain = ljung_box(residuals, lags=10, n_fitted_params=0)
        adjusted = ljung_box(residuals, lags=10, n_fitted_params=3)
        assert plain.dof == 10
        assert adjusted.dof == 7
        assert adjusted.statistic == pytest.approx(plain.statistic)

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ConfigurationError):
            ljung_box(rng.normal(size=100), lags=0)
        with pytest.raises(ConfigurationError):
            ljung_box(rng.normal(size=100), lags=5, n_fitted_params=-1)
        with pytest.raises(ModelError):
            ljung_box(rng.normal(size=5), lags=10)
