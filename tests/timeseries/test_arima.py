"""Unit tests for the ARIMA model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError, NotFittedError
from repro.timeseries.arima import ARIMA, _psi_weights


def _simulate_arma(phi, theta, n, rng, intercept=0.0):
    p, q = len(phi), len(theta)
    noise = rng.normal(size=n + 100)
    series = np.zeros(n + 100)
    for t in range(max(p, q), n + 100):
        series[t] = intercept + noise[t]
        for i, c in enumerate(phi):
            series[t] += c * series[t - 1 - i]
        for j, c in enumerate(theta):
            series[t] += c * noise[t - 1 - j]
    return series[100:]


class TestConstruction:
    def test_rejects_negative_orders(self):
        with pytest.raises(ConfigurationError):
            ARIMA(order=(-1, 0, 0))

    def test_rejects_empty_model(self):
        with pytest.raises(ConfigurationError):
            ARIMA(order=(0, 0, 0))

    def test_params_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ARIMA(order=(1, 0, 0)).params

    def test_rejects_short_series(self, rng):
        with pytest.raises(ModelError):
            ARIMA(order=(2, 0, 1)).fit(rng.normal(size=10))

    def test_rejects_nan_series(self, rng):
        series = rng.normal(size=100)
        series[10] = np.nan
        with pytest.raises(ModelError):
            ARIMA(order=(1, 0, 0)).fit(series)


class TestFitting:
    def test_recovers_ar1(self, rng):
        series = _simulate_arma([0.6], [], 10_000, rng)
        fit = ARIMA(order=(1, 0, 0), refine=False).fit(series).params
        assert fit.phi[0] == pytest.approx(0.6, abs=0.05)
        assert fit.sigma2 == pytest.approx(1.0, rel=0.1)

    def test_recovers_ma1(self, rng):
        series = _simulate_arma([], [0.5], 10_000, rng)
        fit = ARIMA(order=(0, 0, 1), refine=False).fit(series).params
        assert fit.theta[0] == pytest.approx(0.5, abs=0.07)

    def test_recovers_arma11(self, rng):
        series = _simulate_arma([0.5], [0.3], 20_000, rng)
        fit = ARIMA(order=(1, 0, 1), refine=False).fit(series).params
        assert fit.phi[0] == pytest.approx(0.5, abs=0.1)
        assert fit.theta[0] == pytest.approx(0.3, abs=0.1)

    def test_css_refinement_does_not_worsen(self, rng):
        series = _simulate_arma([0.5], [0.3], 2000, rng)
        plain = ARIMA(order=(1, 0, 1), refine=False).fit(series)
        refined = ARIMA(order=(1, 0, 1), refine=True).fit(series)
        rss_plain = float(plain.residuals() @ plain.residuals())
        rss_refined = float(refined.residuals() @ refined.residuals())
        assert rss_refined <= rss_plain + 1e-6

    def test_d1_handles_trend(self, rng):
        trend = np.arange(2000.0) * 0.05
        series = trend + _simulate_arma([0.4], [], 2000, rng)
        model = ARIMA(order=(1, 1, 0), refine=False).fit(series)
        forecast = model.forecast(10)
        # Forecasts should keep climbing with the trend.
        assert forecast.mean[-1] > series[-1]

    def test_intercept_captures_level(self, rng):
        series = _simulate_arma([0.3], [], 5000, rng, intercept=2.0)
        fit = ARIMA(order=(1, 0, 0), refine=False).fit(series).params
        implied_mean = fit.intercept / (1.0 - fit.phi[0])
        assert implied_mean == pytest.approx(series.mean(), rel=0.1)

    def test_fit_returns_self(self, rng):
        model = ARIMA(order=(1, 0, 0))
        assert model.fit(rng.normal(size=200)) is model


class TestForecast:
    def test_horizon_shape(self, rng):
        model = ARIMA(order=(1, 0, 0), refine=False).fit(rng.normal(size=500))
        forecast = model.forecast(24)
        assert forecast.horizon == 24
        assert forecast.lower.shape == (24,)

    def test_ar1_converges_to_mean(self, rng):
        series = _simulate_arma([0.5], [], 10_000, rng, intercept=1.0)
        model = ARIMA(order=(1, 0, 0), refine=False).fit(series)
        forecast = model.forecast(200)
        assert forecast.mean[-1] == pytest.approx(series.mean(), abs=0.2)

    def test_std_monotone_nondecreasing(self, rng):
        series = _simulate_arma([0.7], [0.2], 2000, rng)
        forecast = ARIMA(order=(1, 0, 1), refine=False).fit(series).forecast(50)
        assert np.all(np.diff(forecast.std) >= -1e-9)

    def test_interval_coverage_one_step(self, rng):
        # Roll the model over held-out data; ~95% of one-step actuals
        # should fall inside the 95% band at horizon 1.
        series = _simulate_arma([0.6], [], 3000, rng)
        hits = 0
        trials = 100
        for i in range(trials):
            cut = 2000 + i * 5
            model = ARIMA(order=(1, 0, 0), refine=False).fit(series[:cut])
            forecast = model.forecast(1)
            actual = series[cut]
            if forecast.lower[0] <= actual <= forecast.upper[0]:
                hits += 1
        assert hits >= 85

    def test_rejects_bad_horizon(self, rng):
        model = ARIMA(order=(1, 0, 0), refine=False).fit(rng.normal(size=200))
        with pytest.raises(ConfigurationError):
            model.forecast(0)


class TestInSampleForecast:
    def test_d0_one_step_rmse_near_noise(self, rng):
        series = _simulate_arma([0.6], [], 2000, rng, intercept=1.0)
        model = ARIMA(order=(1, 0, 0), refine=False).fit(series)
        fitted = model.forecast_in_sample()
        assert fitted.shape == series.shape
        rmse = np.sqrt(np.mean((fitted - series) ** 2))
        assert rmse == pytest.approx(1.0, rel=0.1)

    def test_d1_alignment_and_accuracy(self, rng):
        series = np.cumsum(rng.normal(size=500)) + 100.0
        model = ARIMA(order=(1, 1, 0), refine=False).fit(series)
        fitted = model.forecast_in_sample()
        assert fitted.size == series.size - 1
        rmse = np.sqrt(np.mean((fitted - series[1:]) ** 2))
        assert rmse < 1.2  # near the innovation scale

    def test_d2_alignment(self, rng):
        series = np.cumsum(np.cumsum(rng.normal(size=300)))
        model = ARIMA(order=(1, 2, 0), refine=False).fit(series)
        fitted = model.forecast_in_sample()
        assert fitted.size == series.size - 2
        rmse = np.sqrt(np.mean((fitted - series[2:]) ** 2))
        assert rmse < 1.5

    def test_fitted_beats_mean_predictor(self, rng):
        series = _simulate_arma([0.8], [], 1000, rng)
        model = ARIMA(order=(1, 0, 0), refine=False).fit(series)
        fitted = model.forecast_in_sample()
        rss_model = float(np.sum((fitted - series) ** 2))
        rss_mean = float(np.sum((series - series.mean()) ** 2))
        assert rss_model < 0.6 * rss_mean


class TestPsiWeights:
    def test_pure_ar_psi_geometric(self):
        psi = _psi_weights(np.array([0.5]), np.array([]), d=0, horizon=5)
        assert np.allclose(psi, [1.0, 0.5, 0.25, 0.125, 0.0625])

    def test_pure_ma_psi_truncates(self):
        psi = _psi_weights(np.array([]), np.array([0.4]), d=0, horizon=4)
        assert np.allclose(psi, [1.0, 0.4, 0.0, 0.0])

    def test_random_walk_psi_all_ones(self):
        psi = _psi_weights(np.array([]), np.array([]), d=1, horizon=4)
        assert np.allclose(psi, 1.0)

    def test_first_weight_always_one(self):
        psi = _psi_weights(np.array([0.3, 0.1]), np.array([0.2]), d=1, horizon=3)
        assert psi[0] == 1.0
