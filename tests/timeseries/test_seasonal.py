"""Unit tests for the seasonal profile model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.timeseries.seasonal import SLOTS_PER_WEEK, SeasonalProfile


def _weekly_series(n_weeks, rng, noise=0.1):
    template = 1.0 + np.sin(np.linspace(0, 4 * np.pi, SLOTS_PER_WEEK))
    weeks = [
        template + rng.normal(0, noise, SLOTS_PER_WEEK) for _ in range(n_weeks)
    ]
    return np.concatenate(weeks), template


class TestFit:
    def test_recovers_template(self, rng):
        series, template = _weekly_series(40, rng)
        profile = SeasonalProfile.fit(series)
        assert np.allclose(profile.mean, template, atol=0.1)

    def test_std_estimates_noise(self, rng):
        series, _ = _weekly_series(60, rng, noise=0.2)
        profile = SeasonalProfile.fit(series)
        assert profile.std.mean() == pytest.approx(0.2, rel=0.15)

    def test_ignores_trailing_partial_week(self, rng):
        series, _ = _weekly_series(5, rng)
        padded = np.concatenate([series, np.zeros(10)])
        profile_a = SeasonalProfile.fit(series)
        profile_b = SeasonalProfile.fit(padded)
        assert np.allclose(profile_a.mean, profile_b.mean)

    def test_rejects_single_period(self, rng):
        with pytest.raises(ModelError):
            SeasonalProfile.fit(rng.normal(size=SLOTS_PER_WEEK))

    def test_from_matrix(self, rng):
        matrix = rng.normal(1.0, 0.1, size=(10, SLOTS_PER_WEEK))
        profile = SeasonalProfile.from_matrix(matrix)
        assert np.allclose(profile.mean, matrix.mean(axis=0))

    def test_from_matrix_rejects_single_row(self, rng):
        with pytest.raises(ModelError):
            SeasonalProfile.from_matrix(rng.normal(size=(1, SLOTS_PER_WEEK)))


class TestPredictAndZScores:
    def test_predict_wraps_around(self, rng):
        series, _ = _weekly_series(10, rng)
        profile = SeasonalProfile.fit(series)
        prediction = profile.predict(horizon=2 * SLOTS_PER_WEEK)
        assert np.allclose(
            prediction[:SLOTS_PER_WEEK], prediction[SLOTS_PER_WEEK:]
        )

    def test_predict_start_slot_offset(self, rng):
        series, _ = _weekly_series(10, rng)
        profile = SeasonalProfile.fit(series)
        shifted = profile.predict(horizon=10, start_slot=5)
        assert np.allclose(shifted, profile.mean[5:15])

    def test_zscores_zero_for_mean_week(self, rng):
        series, _ = _weekly_series(30, rng)
        profile = SeasonalProfile.fit(series)
        z = profile.zscores(profile.mean)
        assert np.allclose(z, 0.0)

    def test_zscores_flag_spike(self, rng):
        series, template = _weekly_series(30, rng)
        profile = SeasonalProfile.fit(series)
        week = template.copy()
        week[100] += 5.0
        z = profile.zscores(week)
        assert z[100] > 10.0

    def test_zscores_rejects_wrong_length(self, rng):
        series, _ = _weekly_series(10, rng)
        profile = SeasonalProfile.fit(series)
        with pytest.raises(ConfigurationError):
            profile.zscores(np.zeros(10))

    def test_predict_rejects_bad_horizon(self, rng):
        series, _ = _weekly_series(10, rng)
        profile = SeasonalProfile.fit(series)
        with pytest.raises(ConfigurationError):
            profile.predict(0)
