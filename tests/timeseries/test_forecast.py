"""Unit tests for the Forecast value object."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.timeseries.forecast import Forecast


class TestForecast:
    def test_bounds_symmetric(self):
        forecast = Forecast(mean=np.array([1.0, 2.0]), std=np.array([0.5, 1.0]))
        assert np.allclose(
            forecast.upper - forecast.mean, forecast.mean - forecast.lower
        )

    def test_default_z_95(self):
        forecast = Forecast(mean=np.zeros(1), std=np.ones(1))
        assert forecast.upper[0] == pytest.approx(1.96, abs=0.01)

    def test_custom_interval(self):
        forecast = Forecast(mean=np.zeros(2), std=np.ones(2))
        lo, hi = forecast.interval(3.0)
        assert np.allclose(hi, 3.0)
        assert np.allclose(lo, -3.0)

    def test_contains(self):
        forecast = Forecast(mean=np.array([0.0, 0.0]), std=np.array([1.0, 1.0]))
        mask = forecast.contains(np.array([0.5, 5.0]))
        assert mask.tolist() == [True, False]

    def test_contains_respects_custom_z(self):
        forecast = Forecast(mean=np.array([0.0]), std=np.array([1.0]))
        assert not forecast.contains(np.array([2.5]))[0]
        assert forecast.contains(np.array([2.5]), z=3.0)[0]

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            Forecast(mean=np.zeros(3), std=np.zeros(2))

    def test_rejects_negative_std(self):
        with pytest.raises(ConfigurationError):
            Forecast(mean=np.zeros(1), std=np.array([-1.0]))

    def test_rejects_bad_z(self):
        with pytest.raises(ConfigurationError):
            Forecast(mean=np.zeros(1), std=np.ones(1), z=0.0)

    def test_rejects_wrong_length_in_contains(self):
        forecast = Forecast(mean=np.zeros(2), std=np.ones(2))
        with pytest.raises(ConfigurationError):
            forecast.contains(np.zeros(3))

    def test_horizon(self):
        assert Forecast(mean=np.zeros(7), std=np.ones(7)).horizon == 7
