"""Unit tests for AR estimation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.timeseries.ar import fit_ar_least_squares, fit_ar_yule_walker


def _simulate_ar(phi, n, rng, intercept=0.0):
    p = len(phi)
    noise = rng.normal(size=n)
    series = np.zeros(n)
    for t in range(p, n):
        series[t] = intercept + noise[t]
        for i, coef in enumerate(phi):
            series[t] += coef * series[t - 1 - i]
    return series


class TestYuleWalker:
    def test_recovers_ar1(self, rng):
        series = _simulate_ar([0.6], 20_000, rng)
        phi = fit_ar_yule_walker(series, order=1)
        assert phi[0] == pytest.approx(0.6, abs=0.03)

    def test_recovers_ar2(self, rng):
        series = _simulate_ar([0.5, 0.2], 30_000, rng)
        phi = fit_ar_yule_walker(series, order=2)
        assert phi[0] == pytest.approx(0.5, abs=0.04)
        assert phi[1] == pytest.approx(0.2, abs=0.04)

    def test_rejects_zero_order(self, rng):
        with pytest.raises(ConfigurationError):
            fit_ar_yule_walker(rng.normal(size=100), order=0)


class TestLeastSquares:
    def test_recovers_ar1_with_intercept(self, rng):
        series = _simulate_ar([0.6], 20_000, rng, intercept=1.0)
        intercept, phi, residuals = fit_ar_least_squares(series, order=1)
        assert phi[0] == pytest.approx(0.6, abs=0.03)
        assert intercept == pytest.approx(1.0, abs=0.1)
        assert residuals.size == series.size - 1

    def test_residuals_uncorrelated_with_lags(self, rng):
        series = _simulate_ar([0.7], 10_000, rng)
        _, _, residuals = fit_ar_least_squares(series, order=1)
        lagged = series[1:-1]
        corr = np.corrcoef(residuals[1:], lagged)[0, 1]
        assert abs(corr) < 0.05

    def test_residual_variance_near_noise_variance(self, rng):
        series = _simulate_ar([0.5], 20_000, rng)
        _, _, residuals = fit_ar_least_squares(series, order=1)
        assert residuals.var() == pytest.approx(1.0, rel=0.05)

    def test_rejects_short_series(self, rng):
        with pytest.raises(ModelError):
            fit_ar_least_squares(rng.normal(size=5), order=3)

    def test_rejects_zero_order(self, rng):
        with pytest.raises(ConfigurationError):
            fit_ar_least_squares(rng.normal(size=100), order=0)
