"""Unit tests for order selection."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.timeseries.order import aic, candidate_orders, select_order


class TestAIC:
    def test_penalises_parameters(self):
        assert aic(0.0, 3) > aic(0.0, 2)

    def test_rewards_likelihood(self):
        assert aic(10.0, 2) < aic(5.0, 2)


class TestSelectOrder:
    def test_prefers_ar1_for_ar1_data(self, rng):
        noise = rng.normal(size=3000)
        series = np.zeros(3000)
        for t in range(1, 3000):
            series[t] = 0.7 * series[t - 1] + noise[t]
        order = select_order(
            series, p_values=(0, 1, 2), d_values=(0,), q_values=(0,)
        )
        # AIC with conditional likelihoods can waver between AR(1) and
        # AR(2); what matters is that AR structure is found at all and
        # that no MA/differencing is invented.
        assert order[0] >= 1
        assert order[1] == 0 and order[2] == 0

    def test_raises_when_nothing_fits(self):
        with pytest.raises(ModelError):
            select_order(np.arange(5.0), p_values=(3,), d_values=(0,), q_values=(3,))

    def test_returns_valid_candidate(self, rng):
        series = rng.normal(size=500)
        order = select_order(series, p_values=(0, 1), d_values=(0,), q_values=(0, 1))
        assert order in set(candidate_orders(max_p=1, max_d=0, max_q=1))


class TestCandidateOrders:
    def test_excludes_null_model(self):
        assert (0, 0, 0) not in set(candidate_orders())

    def test_counts(self):
        orders = list(candidate_orders(max_p=1, max_d=1, max_q=1))
        assert len(orders) == 2 * 2 * 2 - 1
