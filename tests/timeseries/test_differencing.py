"""Unit tests for differencing and undifferencing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.timeseries.differencing import difference, undifference


class TestDifference:
    def test_first_difference(self):
        out = difference(np.array([1.0, 3.0, 6.0, 10.0]), order=1)
        assert np.array_equal(out, [2.0, 3.0, 4.0])

    def test_second_difference(self):
        out = difference(np.array([1.0, 3.0, 6.0, 10.0]), order=2)
        assert np.array_equal(out, [1.0, 1.0])

    def test_order_zero_identity(self):
        series = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(difference(series, order=0), series)

    def test_rejects_negative_order(self):
        with pytest.raises(ConfigurationError):
            difference(np.array([1.0, 2.0]), order=-1)

    def test_rejects_too_short(self):
        with pytest.raises(ModelError):
            difference(np.array([1.0]), order=1)

    def test_linear_trend_removed(self):
        series = 2.0 * np.arange(10.0) + 5.0
        assert np.allclose(difference(series, 1), 2.0)


class TestUndifference:
    def test_roundtrip_order1(self, rng):
        series = rng.normal(size=50).cumsum()
        diffed = difference(series, 1)
        restored = undifference(diffed, heads=series[:1], order=1)
        assert np.allclose(restored, series[1:])

    def test_roundtrip_order2(self, rng):
        series = rng.normal(size=50).cumsum().cumsum()
        diffed = difference(series, 2)
        restored = undifference(diffed, heads=series[:2], order=2)
        assert np.allclose(restored, series[2:])

    def test_forecast_integration(self):
        # Forecasting differences of +1 from a last value of 10.
        out = undifference(np.ones(3), heads=np.array([10.0]), order=1)
        assert np.array_equal(out, [11.0, 12.0, 13.0])

    def test_order_zero_copy(self):
        arr = np.array([1.0, 2.0])
        out = undifference(arr, heads=np.array([]), order=0)
        assert np.array_equal(out, arr)
        assert out is not arr

    def test_rejects_wrong_head_count(self):
        with pytest.raises(ConfigurationError):
            undifference(np.ones(3), heads=np.array([1.0, 2.0]), order=1)
