"""Tests for the Holt-Winters forecaster."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError, NotFittedError
from repro.timeseries.holtwinters import HoltWinters, HoltWintersParams


def _seasonal_series(n_periods, period, rng, trend=0.0, noise=0.1):
    season = 2.0 + np.sin(np.linspace(0, 2 * np.pi, period, endpoint=False))
    values = []
    for k in range(n_periods):
        values.append(
            season + trend * k * period / period + rng.normal(0, noise, period)
        )
    series = np.concatenate(values)
    if trend:
        series = series + trend * np.arange(series.size)
    return series


class TestFit:
    def test_requires_two_seasons(self, rng):
        with pytest.raises(ModelError):
            HoltWinters(period=48).fit(rng.normal(size=60))

    def test_rejects_nan(self, rng):
        series = _seasonal_series(4, 48, rng)
        series[10] = np.nan
        with pytest.raises(ModelError):
            HoltWinters(period=48).fit(series)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            HoltWinters(period=48).forecast(10)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            HoltWintersParams(alpha=1.5)
        with pytest.raises(ConfigurationError):
            HoltWinters(period=1)
        with pytest.raises(ConfigurationError):
            HoltWinters(period=48, damp_trend=0.0)


class TestForecast:
    def test_tracks_seasonal_shape(self, rng):
        period = 48
        series = _seasonal_series(10, period, rng, noise=0.05)
        model = HoltWinters(period=period).fit(series)
        forecast = model.forecast(period)
        truth = 2.0 + np.sin(
            np.linspace(0, 2 * np.pi, period, endpoint=False)
        )
        assert np.corrcoef(forecast.mean, truth)[0, 1] > 0.95

    def test_coverage_on_held_out_period(self, rng):
        period = 48
        series = _seasonal_series(12, period, rng, noise=0.1)
        train, test = series[: 10 * period], series[10 * period : 11 * period]
        model = HoltWinters(period=period).fit(train)
        forecast = model.forecast(period)
        inside = forecast.contains(test)
        assert inside.mean() > 0.85

    def test_band_tighter_than_arima(self, paper_dataset):
        """The seasonal model explains most variance, so its band is
        much narrower than the low-order ARIMA's."""
        from repro.timeseries.arima import ARIMA
        from repro.timeseries.seasonal import SLOTS_PER_WEEK

        cid = paper_dataset.consumers()[0]
        train = paper_dataset.train_series(cid)
        hw = HoltWinters(period=SLOTS_PER_WEEK).fit(train)
        arima = ARIMA(order=(2, 0, 1), refine=False).fit(
            train[-4 * SLOTS_PER_WEEK :]
        )
        hw_width = hw.forecast(SLOTS_PER_WEEK).std.mean()
        arima_width = arima.forecast(SLOTS_PER_WEEK).std.mean()
        assert hw_width < arima_width

    def test_damped_trend_bounded(self, rng):
        period = 48
        series = _seasonal_series(6, period, rng, trend=0.01)
        model = HoltWinters(period=period, damp_trend=0.9).fit(series)
        forecast = model.forecast(10 * period)
        assert np.all(np.isfinite(forecast.mean))

    def test_rejects_bad_horizon(self, rng):
        model = HoltWinters(period=48).fit(_seasonal_series(4, 48, rng))
        with pytest.raises(ConfigurationError):
            model.forecast(0)

    def test_sigma_positive(self, rng):
        model = HoltWinters(period=48).fit(_seasonal_series(4, 48, rng))
        assert model.sigma > 0
