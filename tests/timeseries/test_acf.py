"""Unit tests for autocorrelation functions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.timeseries.acf import acf, pacf


class TestACF:
    def test_lag_zero_is_one(self, rng):
        assert acf(rng.normal(size=100), nlags=5)[0] == 1.0

    def test_white_noise_near_zero(self, rng):
        values = acf(rng.normal(size=5000), nlags=10)
        assert np.all(np.abs(values[1:]) < 0.05)

    def test_ar1_geometric_decay(self, rng):
        phi = 0.8
        n = 20_000
        noise = rng.normal(size=n)
        series = np.empty(n)
        series[0] = noise[0]
        for t in range(1, n):
            series[t] = phi * series[t - 1] + noise[t]
        rho = acf(series, nlags=3)
        assert rho[1] == pytest.approx(phi, abs=0.03)
        assert rho[2] == pytest.approx(phi**2, abs=0.05)

    def test_constant_series_convention(self):
        rho = acf(np.full(50, 2.0), nlags=3)
        assert rho[0] == 1.0
        assert np.all(rho[1:] == 0.0)

    def test_rejects_negative_lags(self, rng):
        with pytest.raises(ConfigurationError):
            acf(rng.normal(size=10), nlags=-1)

    def test_rejects_too_short(self):
        with pytest.raises(ModelError):
            acf(np.arange(5.0), nlags=5)

    def test_bounded_by_one(self, rng):
        rho = acf(rng.normal(size=500).cumsum(), nlags=20)
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)


class TestPACF:
    def test_lag_zero_is_one(self, rng):
        assert pacf(rng.normal(size=100), nlags=4)[0] == 1.0

    def test_ar1_cuts_off_after_lag1(self, rng):
        phi = 0.7
        n = 20_000
        noise = rng.normal(size=n)
        series = np.empty(n)
        series[0] = noise[0]
        for t in range(1, n):
            series[t] = phi * series[t - 1] + noise[t]
        partial = pacf(series, nlags=4)
        assert partial[1] == pytest.approx(phi, abs=0.03)
        assert np.all(np.abs(partial[2:]) < 0.05)

    def test_ar2_cuts_off_after_lag2(self, rng):
        n = 30_000
        noise = rng.normal(size=n)
        series = np.zeros(n)
        for t in range(2, n):
            series[t] = 0.5 * series[t - 1] + 0.3 * series[t - 2] + noise[t]
        partial = pacf(series, nlags=5)
        assert abs(partial[2]) > 0.2
        assert np.all(np.abs(partial[3:]) < 0.05)

    def test_nlags_zero(self, rng):
        assert pacf(rng.normal(size=10), nlags=0).size == 1
