"""Unit tests for the per-consumer circuit breakers."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.circuit import BreakerBoard, BreakerState, CircuitBreaker


class TestCircuitBreaker:
    def test_starts_closed(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_scoring
        assert breaker.trip_count == 0

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_cycles=5)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state is BreakerState.CLOSED
        breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trip_count == 1
        assert not breaker.allows_scoring

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record(False)
        breaker.record(False)
        breaker.record(True)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_then_half_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_cycles=3)
        breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        breaker.record(True)
        breaker.record(True)
        assert breaker.state is BreakerState.OPEN
        breaker.record(True)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_recovers_after_probes(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_cycles=1, recovery_probes=2
        )
        breaker.record(False)  # trips
        breaker.record(True)  # cooldown expires -> half-open
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record(True)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_cycles=1)
        breaker.record(False)
        breaker.record(True)  # -> half-open
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trip_count == 2

    def test_permanently_silent_meter_stays_quarantined(self):
        breaker = CircuitBreaker(failure_threshold=4, cooldown_cycles=10)
        for _ in range(100):
            breaker.record(False)
        assert breaker.state in (BreakerState.OPEN, BreakerState.HALF_OPEN)
        assert not breaker.allows_scoring

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_cycles=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(recovery_probes=0)


class TestBreakerBoard:
    def test_lazy_creation_and_defaults(self):
        board = BreakerBoard(failure_threshold=2)
        assert board.state("new") is BreakerState.CLOSED
        assert board.allows_scoring("new")
        assert board.trip_count("new") == 0
        assert board.quarantined() == ()

    def test_per_consumer_isolation(self):
        board = BreakerBoard(failure_threshold=2, cooldown_cycles=50)
        board.record("a", False)
        board.record("a", False)
        board.record("b", False)
        assert board.state("a") is BreakerState.OPEN
        assert board.state("b") is BreakerState.CLOSED
        assert board.quarantined() == ("a",)

    def test_board_passes_settings_to_breakers(self):
        board = BreakerBoard(
            failure_threshold=5, cooldown_cycles=7, recovery_probes=3
        )
        breaker = board.breaker("c")
        assert breaker.failure_threshold == 5
        assert breaker.cooldown_cycles == 7
        assert breaker.recovery_probes == 3
