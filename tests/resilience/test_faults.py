"""Unit tests for the fault-injection harness and retry policy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metering.channel import LossyChannel
from repro.resilience.faults import FaultInjector, FaultyChannel
from repro.resilience.retry import RetryPolicy


class TestFaultInjector:
    def test_no_faults_is_identity(self, rng):
        injector = FaultInjector()
        readings = {"a": 1.0, "b": 2.0}
        assert injector.apply(readings, rng) == readings

    def test_preserves_keys(self, rng):
        injector = FaultInjector(
            duplicate_rate=0.5, stuck_rate=0.2, corrupt_rate=0.3
        )
        readings = {f"m{i}": float(i) for i in range(10)}
        out = injector.apply(readings, rng)
        assert set(out) == set(readings)

    def test_stuck_meter_repeats_value(self, rng):
        injector = FaultInjector(stuck_rate=1.0, stuck_mean_cycles=100.0)
        first = injector.apply({"m": 1.5}, rng)
        assert first == {"m": 1.5}
        assert injector.is_stuck("m")
        later = injector.apply({"m": 9.9}, rng)
        assert later == {"m": 1.5}

    def test_stuck_run_eventually_ends(self, rng):
        injector = FaultInjector(stuck_rate=1.0, stuck_mean_cycles=100.0)
        injector.apply({"m": 3.0}, rng)
        injector._stuck["m"] = (3.0, 1)
        injector.apply({"m": 7.0}, rng)  # last stuck cycle
        assert not injector.is_stuck("m")

    def test_clock_skew_lags_one_cycle(self, rng):
        injector = FaultInjector(clock_skew_rate=1.0)
        first = injector.apply({"m": 1.0}, rng)
        # No previous value yet: the first skewed cycle passes through.
        assert first == {"m": 1.0}
        assert injector.is_skewed("m")
        second = injector.apply({"m": 2.0}, rng)
        assert second == {"m": 1.0}
        third = injector.apply({"m": 3.0}, rng)
        assert third == {"m": 2.0}

    def test_duplicate_resends_previous_reading(self, rng):
        injector = FaultInjector(duplicate_rate=1.0)
        injector.apply({"m": 5.0}, rng)
        out = injector.apply({"m": 6.0}, rng)
        assert out == {"m": 5.0}

    def test_corruption_produces_invalid_values(self, rng):
        injector = FaultInjector(corrupt_rate=1.0)
        out = injector.apply({f"m{i}": 1.0 for i in range(50)}, rng)
        for value in out.values():
            assert not (np.isfinite(value) and value >= 0)

    def test_reset_clears_state(self, rng):
        injector = FaultInjector(stuck_rate=1.0, clock_skew_rate=1.0)
        injector.apply({"m": 1.0}, rng)
        injector.reset()
        assert not injector.is_stuck("m")
        assert not injector.is_skewed("m")
        assert injector._last == {}

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(duplicate_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(corrupt_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultInjector(stuck_mean_cycles=0.0)


class TestFaultyChannel:
    def test_perfect_channel_no_faults_is_identity(self, rng):
        channel = FaultyChannel(
            channel=LossyChannel(drop_rate=0.0, outage_rate=0.0)
        )
        readings = {"a": 1.0, "b": 2.0}
        assert channel.transmit(readings, rng) == readings

    def test_silence_kills_meter(self, rng):
        channel = FaultyChannel(
            channel=LossyChannel(drop_rate=0.0, outage_rate=0.0)
        )
        channel.silence("a")
        for _ in range(10):
            out = channel.transmit({"a": 1.0, "b": 2.0}, rng)
            assert out == {"b": 2.0}
        assert channel.in_outage("a")

    def test_corruption_flows_through(self, rng):
        channel = FaultyChannel(
            channel=LossyChannel(drop_rate=0.0, outage_rate=0.0),
            faults=FaultInjector(corrupt_rate=1.0),
        )
        out = channel.transmit({"m": 1.0}, rng)
        assert not (np.isfinite(out["m"]) and out["m"] >= 0)

    def test_reset(self, rng):
        channel = FaultyChannel(
            channel=LossyChannel(drop_rate=0.0, outage_rate=0.0),
            faults=FaultInjector(stuck_rate=1.0),
        )
        channel.silence("a")
        channel.transmit({"b": 1.0}, rng)
        channel.reset()
        assert not channel.in_outage("a")
        assert not channel.faults.is_stuck("b")


class TestRetryPolicy:
    def test_backoff_cost_grows_geometrically(self):
        policy = RetryPolicy(backoff_base=2.0)
        assert policy.attempt_cost(0) == 1.0
        assert policy.attempt_cost(1) == 2.0
        assert policy.attempt_cost(2) == 4.0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(cycle_budget=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().attempt_cost(-1)
