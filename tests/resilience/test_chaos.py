"""Chaos-style integration tests (acceptance criterion).

Replay weeks of readings through the full resilient pipeline over a
lossy, fault-injecting channel and assert the service degrades
gracefully: no exceptions, silenced meters quarantined by the circuit
breaker, the rest of the population still scored, and an injected
Class-1B attack still detected in degraded mode.
"""

import numpy as np
import pytest

from repro.core.framework import AnomalyNature
from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.metering.channel import LossyChannel
from repro.resilience import FaultInjector, FaultyChannel, ResilienceConfig
from repro.resilience.circuit import BreakerState
from repro.timeseries.seasonal import SLOTS_PER_WEEK

N_WEEKS = 20
ATTACK_WEEK = 16
SILENCE_WEEK = 12


def _factory():
    # 99th-percentile threshold: with only ~10 training weeks the 95th
    # percentile is brittle and drowns the replay in false positives.
    return KLDDetector(significance=0.01)


def _service(ids, min_coverage=0.5):
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=10,
        retrain_every_weeks=4,
        # failure_threshold 16: high enough that the victim's 6-slot
        # burst gaps (even extended by adjacent random drops) never trip
        # its breaker, low enough that a silenced meter trips within
        # half an hour of wall-clock polling.
        resilience=ResilienceConfig(
            min_coverage=min_coverage, failure_threshold=16
        ),
        population=ids,
    )


def _reading_at(series, cid, t, victim):
    value = float(series[cid][t])
    if cid == victim and t // SLOTS_PER_WEEK == ATTACK_WEEK:
        # Class 1B: the attacker inflates the victim's reported usage
        # so the victim pays part of the attacker's bill.
        value *= 4.0
    return value


@pytest.fixture(scope="module")
def chaos_run(paper_dataset):
    """One full 20-week chaos replay; shared across the assertions."""
    ids = paper_dataset.consumers()[:6]
    series = {cid: paper_dataset.series(cid) for cid in ids}
    victim, dead = ids[0], ids[5]
    service = _service(ids)
    channel = FaultyChannel(
        channel=LossyChannel(
            drop_rate=0.05, outage_rate=0.001, outage_mean_cycles=8.0
        ),
        faults=FaultInjector(corrupt_rate=0.01),
    )
    rng = np.random.default_rng(42)
    for t in range(N_WEEKS * SLOTS_PER_WEEK):
        week, slot = divmod(t, SLOTS_PER_WEEK)
        if week == SILENCE_WEEK and slot == 0:
            channel.silence(dead)  # the meter dies outright
        readings = {cid: _reading_at(series, cid, t, victim) for cid in ids}
        if week == ATTACK_WEEK and slot % 48 < 6:
            # Deterministic burst gaps on the victim's link during the
            # attack week: long enough (6 > max_repair_gap) to survive
            # interpolation and force degraded-mode scoring, short
            # enough (6 < failure_threshold) not to trip its breaker.
            del readings[victim]
        service.ingest_cycle(channel.transmit(readings, rng))
    return {
        "service": service,
        "ids": ids,
        "victim": victim,
        "dead": dead,
        "series": series,
    }


class TestChaosReplay:
    def test_runs_to_completion(self, chaos_run):
        assert chaos_run["service"].weeks_completed == N_WEEKS
        assert len(chaos_run["service"].reports) == N_WEEKS

    def test_breaker_trips_for_silenced_meter(self, chaos_run):
        service, dead = chaos_run["service"], chaos_run["dead"]
        assert service.breaker_state(dead) is not BreakerState.CLOSED
        assert dead in service.quarantined_consumers()
        # Quarantined from the silencing week's boundary onward.
        for report in service.reports[SILENCE_WEEK:]:
            assert dead in report.quarantined

    def test_remaining_population_still_scored(self, chaos_run):
        service, ids, dead = (
            chaos_run["service"],
            chaos_run["ids"],
            chaos_run["dead"],
        )
        final = service.reports[-1]
        survivors = [cid for cid in ids if cid != dead]
        scored = set(final.coverage)
        assert scored.issuperset(survivors)
        assert dead not in scored

    def test_attack_detected_in_degraded_mode(self, chaos_run):
        service, victim = chaos_run["service"], chaos_run["victim"]
        report = service.reports[ATTACK_WEEK]
        victim_alerts = [
            a for a in report.alerts if a.consumer_id == victim
        ]
        assert victim_alerts, "Class-1B attack went undetected"
        alert = victim_alerts[0]
        assert alert.nature is AnomalyNature.SUSPECTED_VICTIM
        assert alert.coverage < 1.0, "expected degraded-mode scoring"
        assert alert.coverage >= 0.8
        assert alert.score > alert.threshold
        assert victim in service.suspected_victims()

    def test_dead_meter_never_alerted_after_silencing(self, chaos_run):
        service, dead = chaos_run["service"], chaos_run["dead"]
        for report in service.reports[SILENCE_WEEK:]:
            assert all(a.consumer_id != dead for a in report.alerts)


class TestGracefulDegradation:
    def test_lossy_alerts_close_to_clean_alerts(self, chaos_run):
        """Loss shouldn't change who the service accuses.

        A clean strict-mode replay of the same population and attack is
        the reference; the lossy run may add or lose a few marginal
        alerts but the victim must be flagged in both and the number of
        accused consumers must stay close.
        """
        ids, series, victim = (
            chaos_run["ids"],
            chaos_run["series"],
            chaos_run["victim"],
        )
        clean = TheftMonitoringService(
            detector_factory=_factory,
            min_training_weeks=10,
            retrain_every_weeks=4,
        )
        for t in range(N_WEEKS * SLOTS_PER_WEEK):
            clean.ingest_cycle(
                {cid: _reading_at(series, cid, t, victim) for cid in ids}
            )
        assert victim in clean.suspected_victims()
        lossy = chaos_run["service"]
        clean_accused = set(clean.suspected_victims()) | set(
            clean.suspected_attackers()
        )
        lossy_accused = set(lossy.suspected_victims()) | set(
            lossy.suspected_attackers()
        )
        assert victim in lossy_accused
        assert len(clean_accused ^ lossy_accused) <= 2


class TestBurstOutages:
    def test_heavy_outages_do_not_crash(self, paper_dataset):
        """Stochastic burst outages alone never raise."""
        ids = paper_dataset.consumers()[:4]
        series = {cid: paper_dataset.series(cid) for cid in ids}
        service = _service(ids, min_coverage=0.6)
        channel = LossyChannel(
            drop_rate=0.05, outage_rate=0.005, outage_mean_cycles=16.0
        )
        rng = np.random.default_rng(3)
        for t in range(12 * SLOTS_PER_WEEK):
            readings = {cid: float(series[cid][t]) for cid in ids}
            service.ingest_cycle(channel.transmit(readings, rng))
        assert service.weeks_completed == 12
        # Every completed week produced a report with coverage records
        # for at least one consumer.
        for report in service.reports:
            assert report.coverage or report.quarantined
