"""Checkpoint/restore round-trip tests (acceptance criterion).

Serialize mid-week, restore into a fresh service, and verify the
restored service produces bit-identical :class:`MonitoringReport`s to an
uninterrupted run.
"""

import pickle

import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.errors import CheckpointError
from repro.resilience import ResilienceConfig, load_checkpoint, save_checkpoint
from repro.resilience.checkpoint import CHECKPOINT_VERSION
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def _factory():
    return KLDDetector(significance=0.05)


@pytest.fixture(scope="module")
def cycles(paper_dataset):
    """12 weeks of polling cycles for three consumers."""
    ids = paper_dataset.consumers()[:3]
    series = {cid: paper_dataset.series(cid) for cid in ids}
    return [
        {cid: float(series[cid][t]) for cid in ids}
        for t in range(12 * SLOTS_PER_WEEK)
    ]


def _make_service():
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=6,
        retrain_every_weeks=3,
        resilience=ResilienceConfig(min_coverage=0.6),
    )


class TestRoundTrip:
    def test_mid_week_restore_is_bit_identical(self, cycles, tmp_path):
        path = tmp_path / "service.ckpt"
        # Uninterrupted reference run.
        reference = _make_service()
        for cycle in cycles:
            reference.ingest_cycle(cycle)
        # Interrupted run: checkpoint mid-week 8 (not at a boundary),
        # restore into a fresh service object, continue.
        interrupted = _make_service()
        checkpoint_at = 8 * SLOTS_PER_WEEK + 117
        for cycle in cycles[:checkpoint_at]:
            interrupted.ingest_cycle(cycle)
        interrupted.checkpoint(path)
        restored = TheftMonitoringService.restore(path, _factory)
        del interrupted
        for cycle in cycles[checkpoint_at:]:
            restored.ingest_cycle(cycle)
        assert restored.weeks_completed == reference.weeks_completed
        assert restored.reports == reference.reports
        for ours, theirs in zip(restored.reports, reference.reports):
            for a, b in zip(ours.alerts, theirs.alerts):
                assert a.score == b.score  # bit-identical, not approx
                assert a.threshold == b.threshold

    def test_restore_preserves_training_and_quarantine(self, cycles, tmp_path):
        path = tmp_path / "service.ckpt"
        service = _make_service()
        for cycle in cycles[: 9 * SLOTS_PER_WEEK]:
            service.ingest_cycle(cycle)
        service.checkpoint(path)
        restored = load_checkpoint(path, _factory)
        assert restored.is_trained == service.is_trained
        assert restored._quarantined_weeks == service._quarantined_weeks
        assert restored._roster == service._roster
        assert restored.resilience == service.resilience
        for cid in service.store.consumers():
            assert restored.store.length(cid) == service.store.length(cid)

    def test_partial_cycles_survive_restore(self, cycles, tmp_path):
        """Gap markers recorded before the crash stay slot-aligned."""
        path = tmp_path / "service.ckpt"
        service = _make_service()
        roster = sorted(cycles[0])
        dropped = roster[0]
        for t, cycle in enumerate(cycles[: 2 * SLOTS_PER_WEEK]):
            # Runs of 6 lost slots: longer than max_repair_gap, so the
            # gap markers survive the week-boundary interpolation pass.
            # Starts past t=0 so the first cycle fixes the population.
            if 20 <= t % 50 < 26:
                cycle = {k: v for k, v in cycle.items() if k != dropped}
            service.ingest_cycle(cycle)
        gaps_before = service.store.gap_count(dropped)
        assert gaps_before > 0
        service.checkpoint(path)
        restored = load_checkpoint(path, _factory)
        assert restored.store.gap_count(dropped) == gaps_before

    def test_strict_mode_service_round_trips_too(self, cycles, tmp_path):
        path = tmp_path / "service.ckpt"
        service = TheftMonitoringService(
            detector_factory=_factory, min_training_weeks=6
        )
        for cycle in cycles[: 7 * SLOTS_PER_WEEK]:
            service.ingest_cycle(cycle)
        save_checkpoint(service, path)
        restored = load_checkpoint(path, _factory)
        assert restored.resilience is None
        for cycle in cycles[7 * SLOTS_PER_WEEK :]:
            restored.ingest_cycle(cycle)
        assert restored.weeks_completed == 12


class TestCheckpointFileFormat:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.ckpt", _factory)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path, _factory)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(CheckpointError, match="not an F-DETA checkpoint"):
            load_checkpoint(path, _factory)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": "fdeta-checkpoint",
                    "version": CHECKPOINT_VERSION + 1,
                    "state": {},
                }
            )
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, _factory)

    def test_atomic_write_replaces_previous(self, cycles, tmp_path):
        path = tmp_path / "service.ckpt"
        service = _make_service()
        for cycle in cycles[:SLOTS_PER_WEEK]:
            service.ingest_cycle(cycle)
        save_checkpoint(service, path)
        first = path.read_bytes()
        for cycle in cycles[SLOTS_PER_WEEK : 2 * SLOTS_PER_WEEK]:
            service.ingest_cycle(cycle)
        save_checkpoint(service, path)
        assert path.read_bytes() != first
        # No temp files left behind.
        leftovers = [p for p in path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
