"""Property-based tests for the training-integrity subsystem."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.injection.ramp import BoilingFrogRampAttack
from repro.core.framework import FDetaFramework
from repro.core.kld import KLDDetector
from repro.integrity import DriftSentinel, IntegrityConfig, winsorize_matrix
from repro.integrity.registry import _framework_state, state_fingerprint
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def _matrix(seed, weeks: int, scale: float = 1.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    template = 0.2 + np.abs(np.sin(np.linspace(0, 14 * np.pi, SLOTS_PER_WEEK)))
    noise = rng.lognormal(0.0, 0.2, size=(weeks, SLOTS_PER_WEEK))
    return scale * template * noise


class TestTrainOrderInvariance:
    """``FDetaFramework.train`` must not depend on mapping key order.

    The model registry fingerprints framework state, and the rollback
    proofs compare those fingerprints across runs — so two trainings
    on the same per-consumer matrices must produce identical state even
    when the dict was assembled in a different order (parallel shards,
    recovered checkpoints, scrambled ingestion all reorder it).
    """

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_consumers=st.integers(min_value=2, max_value=6),
        permutation_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_key_order_does_not_change_the_trained_state(
        self, seed, n_consumers, permutation_seed
    ):
        matrices = {
            f"c{i:02d}": _matrix((seed, i), weeks=6)
            for i in range(n_consumers)
        }
        order = list(matrices)
        np.random.default_rng(permutation_seed).shuffle(order)
        shuffled = {cid: matrices[cid] for cid in order}

        a = FDetaFramework(
            detector_factory=lambda: KLDDetector(significance=0.05)
        )
        a.train(matrices)
        b = FDetaFramework(
            detector_factory=lambda: KLDDetector(significance=0.05)
        )
        b.train(shuffled)
        assert state_fingerprint(_framework_state(a)) == state_fingerprint(
            _framework_state(b)
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_assessments_agree_across_key_orders(self, seed):
        matrices = {f"c{i:02d}": _matrix((seed, i), weeks=6) for i in range(3)}
        reversed_matrices = dict(reversed(list(matrices.items())))
        a = FDetaFramework(
            detector_factory=lambda: KLDDetector(significance=0.05)
        )
        a.train(matrices)
        b = FDetaFramework(
            detector_factory=lambda: KLDDetector(significance=0.05)
        )
        b.train(reversed_matrices)
        week = _matrix((seed, 99), weeks=1)[0]
        for cid in matrices:
            ra = a.assess_week(cid, week)
            rb = b.assess_week(cid, week)
            assert (ra.nature, ra.result.score, ra.result.threshold) == (
                rb.nature,
                rb.result.score,
                rb.result.threshold,
            )


class TestSentinelProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        weeks=st.integers(min_value=3, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_screen_is_a_pure_function(self, seed, weeks):
        matrix = _matrix(seed, weeks)
        sentinel = DriftSentinel(IntegrityConfig())
        assert sentinel.screen(matrix, range(weeks)) == sentinel.screen(
            matrix, range(weeks)
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        weeks=st.integers(min_value=3, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_kept_weeks_are_a_subset_with_the_reference_prefix(
        self, seed, weeks
    ):
        config = IntegrityConfig()
        result = DriftSentinel(config).screen(_matrix(seed, weeks), range(weeks))
        kept = set(result.kept_weeks)
        assert kept <= set(range(weeks))
        for week in range(min(config.reference_weeks, weeks)):
            assert week in kept
        suspect = {v.week for v in result.suspects}
        assert kept.isdisjoint(suspect)
        assert kept | suspect == set(range(weeks))


class TestWinsorizeProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        weeks=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_output_bounded_by_pooled_quantiles_and_idempotent(
        self, seed, weeks
    ):
        matrix = _matrix(seed, weeks)
        clipped = winsorize_matrix(matrix, (0.05, 0.95))
        low, high = np.quantile(matrix, (0.05, 0.95))
        assert clipped.shape == matrix.shape
        assert clipped.min() >= low - 1e-12
        assert clipped.max() <= high + 1e-12
        again = winsorize_matrix(clipped, (0.0, 1.0))
        assert np.allclose(again, clipped)


class TestRampProperties:
    @given(
        decay=st.floats(min_value=0.5, max_value=0.99),
        floor=st.floats(min_value=0.05, max_value=0.9),
        weeks=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_factors_monotone_bounded_and_floored(self, decay, floor, weeks):
        attack = BoilingFrogRampAttack(weekly_decay=decay, floor=floor)
        factors = attack.factors(weeks)
        assert factors.shape == (weeks,)
        assert np.all(np.diff(factors) <= 1e-12)
        assert np.all(factors >= floor - 1e-12)
        assert np.all(factors <= 1.0)
        horizon = attack.weeks_to_floor()
        if weeks > horizon:
            assert factors[horizon] == floor
