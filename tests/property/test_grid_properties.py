"""Property-based tests on grid topology and balance-check invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.balance import BalanceAuditor
from repro.grid.builder import build_random_topology
from repro.grid.serialization import topology_from_dict, topology_to_dict
from repro.grid.snapshot import DemandSnapshot


topology_params = st.tuples(
    st.integers(min_value=2, max_value=60),   # consumers
    st.integers(min_value=2, max_value=6),    # branching
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _topology(params):
    n, branching, seed = params
    return build_random_topology(
        n_consumers=n, branching=branching, seed=seed
    )


class TestTopologyInvariants:
    @given(params=topology_params)
    @settings(max_examples=30)
    def test_every_node_reachable_from_root(self, params):
        topo = _topology(params)
        reached = set(topo.iter_breadth_first())
        assert len(reached) == len(topo)

    @given(params=topology_params)
    @settings(max_examples=30)
    def test_path_to_root_ends_at_root(self, params):
        topo = _topology(params)
        for cid in topo.consumers():
            path = topo.path_to_root(cid)
            assert path[0] == cid
            assert path[-1] == topo.root_id
            # Each hop is a parent link.
            for child, parent in zip(path, path[1:]):
                assert topo.parent(child) == parent

    @given(params=topology_params)
    @settings(max_examples=30)
    def test_consumer_partition_under_root_children(self, params):
        """Consumers under distinct root subtrees partition the set."""
        topo = _topology(params)
        seen: set[str] = set()
        for child in topo.children(topo.root_id):
            if topo.node(child).kind.value != "internal":
                if topo.node(child).kind.value == "consumer":
                    assert child not in seen
                    seen.add(child)
                continue
            subtree = set(topo.consumer_descendants(child))
            assert not subtree & seen
            seen |= subtree
        assert seen == set(topo.consumers())

    @given(params=topology_params)
    @settings(max_examples=20)
    def test_serialization_roundtrip(self, params):
        topo = _topology(params)
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert set(rebuilt.consumers()) == set(topo.consumers())
        for cid in topo.consumers():
            assert rebuilt.parent(cid) == topo.parent(cid)


class TestBalanceInvariants:
    @given(
        params=topology_params,
        thief_index=st.integers(min_value=0, max_value=10_000),
        steal=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_under_report_fails_exactly_the_root_path(
        self, params, thief_index, steal
    ):
        """A single under-report trips W at precisely the instrumented
        ancestors of the thief (Section V-B's propagation rule)."""
        topo = _topology(params)
        consumers = topo.consumers()
        thief = consumers[thief_index % len(consumers)]
        actual = {cid: 3.0 + steal for cid in consumers}
        snapshot = DemandSnapshot(topology=topo, actual=actual).with_reported(
            {thief: 3.0}
        )
        auditor = BalanceAuditor(topo)
        report = auditor.audit(snapshot)
        ancestors = {
            nid
            for nid in topo.path_to_root(thief)
            if nid in set(topo.internal_nodes())
        }
        assert set(report.failing_nodes()) == ancestors

    @given(
        params=topology_params,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30)
    def test_honest_grid_always_balances(self, params, seed):
        topo = _topology(params)
        rng = np.random.default_rng(seed)
        actual = {
            cid: float(rng.uniform(0.0, 10.0)) for cid in topo.consumers()
        }
        snapshot = DemandSnapshot(topology=topo, actual=actual)
        assert not BalanceAuditor(topo).audit(snapshot).any_failure

    @given(
        params=topology_params,
        pair_seed=st.integers(min_value=0, max_value=10_000),
        steal=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_balanced_1b_attack_always_invisible(
        self, params, pair_seed, steal
    ):
        """Whatever the topology, a theft balanced by over-reporting a
        *sibling* evades every balance meter (Proposition 2's converse)."""
        topo = _topology(params)
        rng = np.random.default_rng(pair_seed)
        candidates = [
            cid for cid in topo.consumers() if topo.siblings(cid)
        ]
        if not candidates:
            return  # no sibling pairs in this topology
        mallory = candidates[int(rng.integers(len(candidates)))]
        victim = topo.siblings(mallory)[0]
        actual = {cid: 3.0 for cid in topo.consumers()}
        actual[mallory] = 3.0 + steal
        snapshot = DemandSnapshot(topology=topo, actual=actual).with_reported(
            {mallory: 3.0, victim: 3.0 + steal}
        )
        assert not BalanceAuditor(topo).audit(snapshot).any_failure
