"""Property-based tests on detector invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kld import KLDDetector
from repro.detectors.pca import PCADetector
from repro.detectors.threshold import MinimumAverageDetector
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def _matrix(seed: int, weeks: int, scale: float) -> np.ndarray:
    """A plausible consumption matrix with a stable weekly shape."""
    rng = np.random.default_rng(seed)
    template = 0.2 + np.abs(np.sin(np.linspace(0, 14 * np.pi, SLOTS_PER_WEEK)))
    noise = rng.lognormal(0.0, 0.2, size=(weeks, SLOTS_PER_WEEK))
    return scale * template * noise


matrix_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=5, max_value=30),
    st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
)


class TestKLDProperties:
    @given(params=matrix_params)
    @settings(max_examples=20, deadline=None)
    def test_threshold_monotone_in_alpha(self, params):
        """Higher significance (more aggressive) => lower threshold."""
        matrix = _matrix(*params)
        thresholds = []
        for alpha in (0.02, 0.05, 0.10, 0.25):
            det = KLDDetector(significance=alpha).fit(matrix)
            thresholds.append(det.threshold)
        assert all(
            a >= b - 1e-12 for a, b in zip(thresholds, thresholds[1:])
        )

    @given(
        params=matrix_params,
        perm_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_statistic_permutation_invariant(self, params, perm_seed):
        """The KLD statistic ignores ordering — the structural reason
        the Optimal Swap evades the unconditioned detector."""
        matrix = _matrix(*params)
        detector = KLDDetector(significance=0.05).fit(matrix)
        week = matrix[0]
        shuffled = np.random.default_rng(perm_seed).permutation(week)
        assert np.isclose(
            detector.divergence_of(week), detector.divergence_of(shuffled)
        )

    @given(params=matrix_params)
    @settings(max_examples=20, deadline=None)
    def test_divergence_nonnegative(self, params):
        matrix = _matrix(*params)
        detector = KLDDetector(significance=0.05).fit(matrix)
        for week in matrix[:5]:
            assert detector.divergence_of(week) >= -1e-9

    @given(
        params=matrix_params,
        factor=st.floats(min_value=3.0, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_gross_scaling_always_flagged(self, params, factor):
        """Multiplying a week by >= 3 pushes every reading's bin up:
        the detector must flag it."""
        matrix = _matrix(*params)
        detector = KLDDetector(significance=0.10).fit(matrix)
        week = matrix[0] * factor
        assert detector.flags(week)


class TestMinimumAverageProperties:
    @given(
        params=matrix_params,
        scale=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_deep_under_report_always_flagged(self, params, scale):
        matrix = _matrix(*params)
        detector = MinimumAverageDetector(margin=1.0).fit(matrix)
        if detector.tau <= 0:
            return
        week = matrix[0] * scale * 0.5
        if week.reshape(-1, 48).mean(axis=1).min() < detector.tau:
            assert detector.flags(week)

    @given(params=matrix_params)
    @settings(max_examples=20, deadline=None)
    def test_training_weeks_never_flagged_at_full_margin(self, params):
        matrix = _matrix(*params)
        detector = MinimumAverageDetector(margin=1.0).fit(matrix)
        for week in matrix:
            assert not detector.flags(week)


class TestPCAProperties:
    @given(params=matrix_params)
    @settings(max_examples=15, deadline=None)
    def test_residual_invariant_to_subspace_shift(self, params):
        """Adding a retained principal direction to a week leaves the
        residual unchanged."""
        matrix = _matrix(*params)
        detector = PCADetector(n_components=2).fit(matrix)
        week = matrix[0]
        shifted = week + 0.5 * detector.components[0]
        base = detector.residual_of(week)
        moved = detector.residual_of(np.abs(shifted))
        # abs() may perturb where readings would go negative; allow a
        # modest tolerance while requiring the residual not to blow up.
        assert moved <= base + 0.5 * np.linalg.norm(week) + 1e-6

    @given(params=matrix_params)
    @settings(max_examples=15, deadline=None)
    def test_training_flag_rate_bounded_by_construction(self, params):
        matrix = _matrix(*params)
        detector = PCADetector(significance=0.10).fit(matrix)
        flags = [detector.flags(week) for week in matrix]
        assert np.mean(flags) <= 0.25
