"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pricing.billing import attacker_profit, neighbour_loss, stolen_energy_kwh
from repro.pricing.schemes import FlatRatePricing
from repro.stats.divergence import js_divergence, kl_divergence
from repro.stats.histogram import FixedEdgeHistogram
from repro.stats.running import RunningMoments
from repro.timeseries.differencing import difference, undifference

finite_floats = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

demand_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=60),
    elements=finite_floats,
)


def _normalise(weights: np.ndarray) -> np.ndarray:
    total = weights.sum()
    if total <= 0:
        out = np.zeros_like(weights)
        out[0] = 1.0
        return out
    return weights / total


prob_vectors = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=16),
    elements=st.floats(min_value=0.01, max_value=1.0),
).map(_normalise)


class TestDivergenceProperties:
    @given(p=prob_vectors)
    def test_self_divergence_zero(self, p):
        assert abs(kl_divergence(p, p)) < 1e-9

    @given(p=prob_vectors)
    def test_non_negativity_same_support(self, p):
        q = _normalise(np.roll(p, 1))
        assert kl_divergence(p, q) >= -1e-9

    @given(p=prob_vectors)
    def test_js_bounded(self, p):
        q = _normalise(p[::-1].copy())
        assert -1e-9 <= js_divergence(p, q) <= 1.0 + 1e-9


class TestHistogramProperties:
    @given(
        values=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=100),
            elements=finite_floats,
        ),
        bins=st.integers(min_value=1, max_value=30),
    )
    def test_probabilities_sum_to_one(self, values, bins):
        hist = FixedEdgeHistogram.from_data(values, bins)
        probs = hist.probabilities(values)
        assert abs(probs.sum() - 1.0) < 1e-9
        assert np.all(probs >= 0)

    @given(
        values=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=50),
            elements=finite_floats,
        ),
        shift=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    def test_out_of_range_values_never_lost(self, values, shift):
        hist = FixedEdgeHistogram.from_data(values, 5)
        probs = hist.probabilities(values + shift)
        assert abs(probs.sum() - 1.0) < 1e-9


class TestBillingProperties:
    @given(demands=demand_arrays)
    def test_honest_reporting_never_profits(self, demands):
        assert attacker_profit(demands, demands, FlatRatePricing(0.2)) == 0.0

    @given(demands=demand_arrays, scale=st.floats(min_value=0.0, max_value=1.0))
    def test_under_reporting_never_loses(self, demands, scale):
        reported = demands * scale
        assert (
            attacker_profit(reported=reported, actual=demands, prices=FlatRatePricing(0.2))
            >= -1e-9
        )

    @given(demands=demand_arrays, scale=st.floats(min_value=1.0, max_value=3.0))
    def test_neighbour_loss_nonnegative_under_over_report(self, demands, scale):
        assert (
            neighbour_loss(demands, demands * scale, FlatRatePricing(0.2))
            >= -1e-9
        )

    @given(demands=demand_arrays)
    def test_profit_conservation(self, demands):
        """Mallory's profit equals the negative of the utility's view:
        alpha(actual, reported) == -alpha(reported, actual)."""
        reported = demands * 0.5
        tariff = FlatRatePricing(0.2)
        assert attacker_profit(demands, reported, tariff) == (
            -attacker_profit(reported, demands, tariff)
        )

    @given(
        demands=arrays(
            dtype=np.float64,
            shape=48,
            elements=finite_floats,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25)
    def test_permutation_conserves_energy(self, demands, seed):
        """Any reordering (the swap attack's move) steals no energy."""
        rng = np.random.default_rng(seed)
        permuted = rng.permutation(demands)
        assert abs(stolen_energy_kwh(demands, permuted)) < 1e-6


class TestProposition1Property:
    @given(
        actual=demand_arrays,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50)
    def test_profit_implies_under_report_witness(self, actual, seed):
        """Proposition 1 as a property: whatever the reported series,
        positive profit implies an under-reported slot."""
        rng = np.random.default_rng(seed)
        reported = actual * rng.uniform(0.0, 2.0, size=actual.size)
        profit = attacker_profit(actual, reported, FlatRatePricing(0.2))
        if profit > 0:
            assert np.any(reported < actual)


class TestDifferencingProperties:
    @given(
        series=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=5, max_value=60),
            elements=st.floats(
                min_value=-1e3, max_value=1e3, allow_nan=False
            ),
        ),
        order=st.integers(min_value=1, max_value=3),
    )
    def test_difference_undifference_roundtrip(self, series, order):
        if series.size <= order:
            return
        diffed = difference(series, order)
        restored = undifference(diffed, heads=series[:order], order=order)
        assert np.allclose(restored, series[order:], atol=1e-6)


class TestRunningMomentsProperties:
    @given(
        values=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=80),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    def test_matches_numpy_for_any_input(self, values):
        moments = RunningMoments()
        moments.update_many(values)
        assert np.isclose(moments.mean, values.mean(), atol=1e-6)
        assert np.isclose(moments.variance, values.var(), atol=1e-4, rtol=1e-4)

    @given(
        a=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        b=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
    )
    def test_merge_associative_with_concat(self, a, b):
        left = RunningMoments()
        left.update_many(a)
        right = RunningMoments()
        right.update_many(b)
        merged = left.merge(right)
        combined = np.concatenate([a, b])
        assert np.isclose(merged.mean, combined.mean(), atol=1e-6)
        assert np.isclose(merged.variance, combined.var(), atol=1e-4, rtol=1e-4)
