"""Property-based tests: recovery is prefix-consistent for ANY crash offset.

The WAL's contract is that a crash at an arbitrary byte in the write
stream loses at most the unsynced tail: replay after the crash yields a
clean prefix of the acknowledged (synced) cycles, never a gap, never a
phantom record, and re-opening the directory repairs it to a state that
accepts appends again.  Hypothesis drives the crash offset across
segment headers, record headers, payload bodies, and rotation
boundaries of a multi-segment log.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.crash import CrashingWAL, CrashPoint, SimulatedCrash
from repro.durability.wal import WriteAheadLog, replay_wal

#: Cycles written per scenario; small segments force several rotations.
N_CYCLES = 40
SEGMENT_MAX = 384


def _run_until_crash(directory, crash_offset, sync_every):
    """Drive a WAL to the crash, returning the last *synced* cycle."""
    last_synced = -1
    try:
        # A small enough offset kills the very first header write, so
        # even construction may crash — exactly like a real power cut
        # during log creation.
        wal = CrashingWAL(
            directory,
            CrashPoint(at_byte=crash_offset),
            segment_max_bytes=SEGMENT_MAX,
        )
        for t in range(N_CYCLES):
            wal.append_cycle(t, {"c1": float(t), "c2": t * 0.25})
            if (t + 1) % sync_every == 0:
                wal.sync()
                last_synced = t
        wal.sync()
        last_synced = N_CYCLES - 1
        wal.close()
    except SimulatedCrash:
        pass
    return last_synced


class TestCrashOffsetSweep:
    @given(
        crash_offset=st.integers(min_value=0, max_value=6000),
        sync_every=st.sampled_from([1, 3, 7]),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovery_is_prefix_consistent(
        self, tmp_path_factory, crash_offset, sync_every
    ):
        directory = tmp_path_factory.mktemp("wal")
        last_synced = _run_until_crash(directory, crash_offset, sync_every)

        replay = replay_wal(directory)
        cycles = [r.cycle for r in replay.cycles()]

        # 1. What survives is a contiguous prefix starting at 0.
        assert cycles == list(range(len(cycles)))
        # 2. Everything acknowledged by an fsync survives: at most the
        #    unsynced tail is lost.
        assert len(cycles) - 1 >= last_synced
        # 3. Re-opening repairs the tail and accepts appends again.
        with WriteAheadLog(directory, segment_max_bytes=SEGMENT_MAX) as wal:
            wal.append_cycle(len(cycles), {"c1": -0.0})
            wal.sync()
        healed = replay_wal(directory)
        assert not healed.torn_tail
        assert [r.cycle for r in healed.cycles()] == list(
            range(len(cycles) + 1)
        )

    @given(before_record=st.integers(min_value=0, max_value=N_CYCLES))
    @settings(max_examples=20, deadline=None)
    def test_record_boundary_crashes_never_tear(
        self, tmp_path_factory, before_record
    ):
        directory = tmp_path_factory.mktemp("wal")
        wal = CrashingWAL(
            directory,
            CrashPoint(before_record=before_record),
            segment_max_bytes=SEGMENT_MAX,
        )
        with pytest.raises(SimulatedCrash):
            for t in range(N_CYCLES + 1):
                wal.append_cycle(t, {"c1": float(t)})
                wal.sync()
        replay = replay_wal(directory)
        assert not replay.torn_tail
        assert [r.cycle for r in replay.cycles()] == list(
            range(before_record)
        )
