"""Property-based tests on admission-control and queue invariants.

The central promise of admission control is **bounded starvation**: no
matter the arrival pattern, pressure pattern, or configuration, no
consumer's defer streak ever reaches ``max_defer_cycles`` — the aging
guarantee force-admits first.  Hypothesis hunts for arrival/pressure
schedules that would break it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadcontrol.admission import AdmissionController
from repro.loadcontrol.config import LoadControlConfig
from repro.loadcontrol.queue import BoundedCycleQueue

consumer_ids = st.lists(
    st.sampled_from([f"c{i}" for i in range(12)]),
    min_size=0,
    max_size=12,
    unique=True,
)

configs = st.builds(
    LoadControlConfig,
    admit_rate=st.floats(min_value=0.5, max_value=8.0),
    admit_burst=st.floats(min_value=1.0, max_value=16.0),
    min_admit_rate=st.just(0.5),
    max_admit_rate=st.just(64.0),
    aimd_increase=st.floats(min_value=0.5, max_value=8.0),
    aimd_decrease=st.floats(min_value=0.1, max_value=0.9),
    max_defer_cycles=st.integers(min_value=1, max_value=6),
)


class TestAdmissionProperties:
    @given(
        config=configs,
        schedule=st.lists(
            st.tuples(consumer_ids, st.booleans()), min_size=1, max_size=60
        ),
    )
    @settings(max_examples=80)
    def test_no_consumer_ever_starves(self, config, schedule):
        controller = AdmissionController(config)
        for candidates, pressure in schedule:
            controller.admit(candidates, pressure=pressure)
            for cid in candidates:
                assert (
                    controller.defer_streak(cid) < config.max_defer_cycles
                ), "defer streak reached the aging bound without bypass"

    @given(
        config=configs,
        schedule=st.lists(
            st.tuples(consumer_ids, st.booleans()), min_size=1, max_size=60
        ),
    )
    @settings(max_examples=60)
    def test_decision_partitions_candidates(self, config, schedule):
        controller = AdmissionController(config)
        for candidates, pressure in schedule:
            decision = controller.admit(candidates, pressure=pressure)
            assert sorted(decision.admitted + decision.deferred) == sorted(
                candidates
            )
            assert set(decision.bypassed) <= set(decision.admitted)

    @given(
        config=configs,
        schedule=st.lists(
            st.tuples(consumer_ids, st.booleans()), min_size=1, max_size=60
        ),
    )
    @settings(max_examples=60)
    def test_totals_reconcile_and_rate_stays_bounded(self, config, schedule):
        controller = AdmissionController(config)
        offered = 0
        for candidates, pressure in schedule:
            controller.admit(candidates, pressure=pressure)
            offered += len(candidates)
            assert (
                config.min_admit_rate
                <= controller.aimd.rate
                <= config.max_admit_rate
            )
        assert controller.admitted_total + controller.deferred_total == offered
        assert controller.bypassed_total <= controller.admitted_total


class TestQueueProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=12),
        ops=st.lists(st.booleans(), min_size=1, max_size=100),
    )
    @settings(max_examples=60)
    def test_queue_ledger_always_balances(self, capacity, ops):
        queue = BoundedCycleQueue(capacity=capacity)
        for is_offer in ops:
            if is_offer:
                queue.offer(object())
            elif queue.depth:
                queue.take()
            assert queue.depth <= capacity
            assert queue.peak_depth <= capacity
            accepted = queue.offered - queue.rejected
            assert accepted == queue.taken + queue.depth
