"""Property-based tests on billing-cycle and invoice invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pricing.billing import bill
from repro.pricing.invoice import bill_cycle, make_invoice
from repro.pricing.schemes import TimeOfUsePricing

demand_weeks = arrays(
    dtype=np.float64,
    shape=48,
    elements=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)


class TestInvoiceProperties:
    @given(week=demand_weeks)
    @settings(max_examples=40)
    def test_invoice_total_equals_bill(self, week):
        tariff = TimeOfUsePricing()
        invoice = make_invoice("c", week, tariff)
        assert np.isclose(invoice.total, bill(week, tariff), atol=1e-9)

    @given(week=demand_weeks)
    @settings(max_examples=40)
    def test_energy_conserved_in_line_items(self, week):
        invoice = make_invoice("c", week, TimeOfUsePricing())
        assert np.isclose(invoice.energy_kwh, week.sum() * 0.5, atol=1e-9)

    @given(
        week=demand_weeks,
        scale=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=40)
    def test_billing_linear_in_demand(self, week, scale):
        tariff = TimeOfUsePricing()
        base = make_invoice("c", week, tariff).total
        scaled = make_invoice("c", week * scale, tariff).total
        assert np.isclose(scaled, base * scale, rtol=1e-9, atol=1e-9)


class TestCycleProperties:
    @given(
        honest=demand_weeks,
        mallory=demand_weeks,
        theft=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_unaccounted_energy_equals_theft(self, honest, mallory, theft):
        actual = {"h": honest, "m": mallory + theft}
        reported = {"h": honest, "m": mallory}
        result = bill_cycle(reported, actual, TimeOfUsePricing())
        assert np.isclose(
            result.unaccounted_kwh, theft * honest.size * 0.5, atol=1e-6
        )

    @given(
        honest=demand_weeks,
        mallory=demand_weeks,
        theft=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        rate=st.floats(min_value=0.05, max_value=0.5, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_socialised_fees_recover_exactly_the_loss(
        self, honest, mallory, theft, rate
    ):
        actual = {"h": honest + 0.1, "m": mallory + 0.1 + theft}
        reported = {"h": honest + 0.1, "m": mallory + 0.1}
        result = bill_cycle(
            reported,
            actual,
            TimeOfUsePricing(),
            socialise_losses=True,
            loss_recovery_rate=rate,
        )
        fees = sum(inv.service_fee for inv in result.invoices.values())
        assert np.isclose(fees, result.unaccounted_kwh * rate, rtol=1e-9)

    @given(honest=demand_weeks)
    @settings(max_examples=30)
    def test_honest_cycle_revenue_equals_bills(self, honest):
        tariff = TimeOfUsePricing()
        actual = {"a": honest, "b": honest * 0.5}
        result = bill_cycle(actual, actual, tariff)
        expected = bill(honest, tariff) + bill(honest * 0.5, tariff)
        assert np.isclose(result.revenue, expected, atol=1e-9)
        assert np.isclose(result.unaccounted_kwh, 0.0, atol=1e-9)
