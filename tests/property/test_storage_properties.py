"""Property-based storage chaos: no acked reading lost, no raw OSError.

Hypothesis drives randomized fault schedules (errno, occurrence, kind)
through the WAL and the durable monitor.  The contracts under test:

* every failure surfaces as the typed :class:`StorageError` hierarchy,
  never a raw :class:`OSError`;
* a failed append rolls back completely — retrying the same cycle can
  never duplicate or tear a record, so the final replay is exactly the
  delivered sequence;
* a lying fsync loses at most the dishonestly-acknowledged tail, and
  re-delivery after the power loss reconverges on the full log;
* disk-full degrades the monitor read-only without consuming the
  rejected cycle, and resume + re-delivery converges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.durability.recovery import DurableTheftMonitor
from repro.durability.wal import WriteAheadLog, replay_wal
from repro.errors import StorageDegradedError, StorageError
from repro.resilience.config import ResilienceConfig
from repro.storage import FaultSchedule, FaultyIO
from repro.timeseries.seasonal import SLOTS_PER_WEEK

N_CYCLES = 48


def _readings(t):
    rng = np.random.default_rng((47, t))
    return {"c1": float(rng.gamma(2.0, 0.5)), "c2": float(t % 7)}


def _spec(events):
    return ",".join(f"{site}:{op}@{at}={kind}" for site, op, at, kind in events)


def _open_wal(directory, io):
    """Open the WAL, retrying typed construction failures.

    A fault can hit the very first segment-header write; the contract
    is a typed error and no half-born segment left behind, so simply
    trying again must succeed.
    """
    for _ in range(20):
        try:
            return WriteAheadLog(directory, segment_max_bytes=512, io=io)
        except StorageError:
            continue
    pytest.fail("WAL construction never succeeded")  # pragma: no cover


#: (site, op, occurrence, kind) tuples over the WAL's write path.
_wal_events = st.lists(
    st.tuples(
        st.sampled_from(["wal.append", "wal.sync"]),
        st.just("*"),
        st.integers(min_value=1, max_value=80),
        st.sampled_from(["eio", "torn", "enospc"]),
    ),
    min_size=1,
    max_size=6,
)


class TestWALUnderRandomFaults:
    @given(events=_wal_events)
    @settings(max_examples=50, deadline=None)
    def test_every_delivered_cycle_survives_exactly_once(
        self, tmp_path_factory, events
    ):
        directory = tmp_path_factory.mktemp("wal")
        io = FaultyIO(FaultSchedule.parse(_spec(events)))
        wal = _open_wal(directory, io)
        for t in range(N_CYCLES):
            for attempt in range(20):
                try:
                    wal.append_cycle(t, _readings(t))
                    break
                except StorageError:
                    continue  # typed, rolled back: re-deliver the cycle
            else:  # pragma: no cover - schedule is finite
                pytest.fail(f"cycle {t} never landed")
            try:
                wal.sync()
            except StorageError:
                pass  # durability deferred to a later sync
        for _ in range(20):
            try:
                wal.sync()
                break
            except StorageError:
                continue
        try:
            wal.close()
        except StorageError:
            pass  # close syncs and may hit a fault; the handle is
            # released either way and the retried sync above already
            # made every delivered cycle durable.
        replay = replay_wal(directory)
        assert [r.cycle for r in replay.cycles()] == list(range(N_CYCLES))
        assert not replay.torn_tail

    @given(events=_wal_events)
    @settings(max_examples=50, deadline=None)
    def test_failures_are_always_typed_storage_errors(
        self, tmp_path_factory, events
    ):
        directory = tmp_path_factory.mktemp("wal")
        io = FaultyIO(FaultSchedule.parse(_spec(events)))
        wal = _open_wal(directory, io)
        for t in range(N_CYCLES):
            try:
                wal.append_cycle(t, _readings(t))
                wal.sync()
            except StorageError:
                continue
            except OSError as exc:  # pragma: no cover - the defect itself
                pytest.fail(f"raw OSError escaped the WAL: {exc!r}")
        try:
            wal.close()
        except StorageError:
            pass  # close syncs, which may hit a scheduled fault — typed
        except OSError as exc:  # pragma: no cover - the defect itself
            pytest.fail(f"raw OSError escaped close: {exc!r}")


class TestLyingFsyncPowerLoss:
    @given(
        lying_at=st.lists(
            st.integers(min_value=1, max_value=30),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        sync_every=st.sampled_from([1, 3, 5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_loss_keeps_an_honest_prefix_and_redelivery_heals(
        self, tmp_path_factory, lying_at, sync_every
    ):
        directory = tmp_path_factory.mktemp("wal")
        spec = ",".join(f"wal.sync:fsync@{at}=lying_fsync" for at in lying_at)
        schedule = FaultSchedule.parse(spec)
        io = FaultyIO(schedule)
        wal = WriteAheadLog(directory, io=io)
        honest_acked = -1
        for t in range(N_CYCLES):
            wal.append_cycle(t, _readings(t))
            if (t + 1) % sync_every == 0:
                before = schedule.injected
                wal.sync()
                if schedule.injected == before:
                    honest_acked = t
        # Power cut before close: the lying controller's cache is gone.
        io.simulate_power_loss()
        replay = replay_wal(directory)
        cycles = [r.cycle for r in replay.cycles()]
        # Clean contiguous prefix, covering at least every honest ack.
        assert cycles == list(range(len(cycles)))
        assert len(cycles) - 1 >= honest_acked
        # Re-delivery of the lost tail reconverges on the full log.
        with WriteAheadLog(directory) as healed:
            for t in range(len(cycles), N_CYCLES):
                healed.append_cycle(t, _readings(t))
            healed.sync()
        final = replay_wal(directory)
        assert [r.cycle for r in final.cycles()] == list(range(N_CYCLES))


class TestMonitorUnderDiskFull:
    @given(at=st.integers(min_value=1, max_value=120))
    @settings(max_examples=25, deadline=None)
    def test_degrade_resume_redeliver_never_loses_a_cycle(
        self, tmp_path_factory, at
    ):
        directory = tmp_path_factory.mktemp("wal")
        service = TheftMonitoringService(
            detector_factory=lambda: KLDDetector(significance=0.05),
            min_training_weeks=2,
            retrain_every_weeks=4,
            resilience=ResilienceConfig(),
            population=("c1", "c2"),
        )
        io = FaultyIO(
            FaultSchedule.parse(f"wal.append:write@{at}=enospc")
        )
        # Occurrence 1 is the constructor's own segment header: a typed
        # disk-full with nothing half-born, so one retry must succeed.
        try:
            wal = WriteAheadLog(directory, io=io)
        except StorageError:
            wal = WriteAheadLog(directory, io=io)
        monitor = DurableTheftMonitor(service, wal)
        n = SLOTS_PER_WEEK // 4
        t = 0
        degradations = 0
        while t < n:
            try:
                monitor.ingest_cycle(_readings(t), cycle_index=t)
                t += 1
            except StorageDegradedError:
                degradations += 1
                assert degradations < 5  # the single fault fires once
                assert monitor.read_only
                # The rejected cycle was not consumed.
                assert service.cycles_ingested == t
                assert monitor.try_resume()
        monitor.close()
        assert service.cycles_ingested == n
        replay = replay_wal(directory)
        assert [r.cycle for r in replay.cycles()] == list(range(n))
