"""Property-based partition chaos for the transport seam.

Hypothesis drives randomized network fault schedules (drop, delay,
dup, reorder, garble, partition, heal) against three layers:

* **endpoint level** — a :class:`ShardClient` feeding sequenced writes
  through arbitrary fault schedules: every *acknowledged* write was
  applied exactly once, in order (no acked write lost, none doubled);
* **lease level** — two coordinators interleaving acquisitions and
  writes: at every moment at most one holder, and every accepted write
  came from the coordinator holding the lease at that moment
  (exactly-one-owner);
* **fleet level** — an :class:`ElasticFleet` under random schedules
  including partitions: after ``heal_all`` + ``drain_backlog`` the
  merged verdicts are bit-identical to an undisturbed baseline and the
  low watermark reaches the frontier (no acknowledged cycle lost).
"""

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    StaleLeaseError,
    TransportError,
    TransportTimeout,
    UnreachableShardError,
)
from repro.resilience.retry import RetryPolicy
from repro.transport import (
    FaultyTransport,
    NetworkFaultSchedule,
    ShardClient,
    ShardEndpoint,
)

sys.path.insert(0, "tests/scaleout")

TRANSIENT_KINDS = ("drop", "delay", "dup", "reorder", "garble")
ALL_KINDS = TRANSIENT_KINDS + ("partition", "heal")


def _schedule(events):
    spec = ",".join(f"s1:ingest@{at}={kind}" for at, kind in events)
    return NetworkFaultSchedule.parse(spec)


transient_events = st.lists(
    st.tuples(st.integers(1, 60), st.sampled_from(TRANSIENT_KINDS)),
    min_size=1,
    max_size=8,
    unique_by=lambda e: e[0],
)


class TestEndpointLevel:
    @settings(max_examples=60, deadline=None)
    @given(events=transient_events)
    def test_acked_writes_applied_exactly_once_in_order(self, events):
        transport = FaultyTransport(_schedule(events))
        endpoint = ShardEndpoint("s1")
        applied = []
        endpoint.bind({"ingest": lambda p: applied.append(p) or p})
        transport.register(endpoint)
        client = ShardClient(
            transport, "s1", policy=RetryPolicy(max_attempts=4)
        )
        acked = []
        for seq in range(20):
            try:
                client.call("ingest", seq, seq=seq)
            except TransportTimeout:
                # Exhausted retries: delivery unknown, not acknowledged.
                continue
            acked.append(seq)
        # Every acked write applied at least once, never twice, and the
        # applied stream is strictly increasing (reorder faults flush
        # held frames before the next one passes, preserving order).
        assert set(acked) <= set(applied)
        assert len(applied) == len(set(applied))
        assert applied == sorted(applied)

    @settings(max_examples=40, deadline=None)
    @given(
        events=st.lists(
            st.tuples(st.integers(1, 40), st.sampled_from(ALL_KINDS)),
            min_size=1,
            max_size=8,
            unique_by=lambda e: e[0],
        )
    )
    def test_no_ack_is_ever_a_lie(self, events):
        """Whatever the schedule does, an acknowledged write is applied;
        failures surface only as the typed transport hierarchy."""
        transport = FaultyTransport(_schedule(events))
        endpoint = ShardEndpoint("s1")
        applied = set()
        endpoint.bind({"ingest": lambda p: applied.add(p) or p})
        transport.register(endpoint)
        client = ShardClient(
            transport, "s1", policy=RetryPolicy(max_attempts=3)
        )
        for seq in range(15):
            try:
                reply = client.call("ingest", seq, seq=seq)
            except (TransportTimeout, UnreachableShardError):
                continue
            except TransportError:  # pragma: no cover - defensive
                pytest.fail("unexpected transport error type")
            assert reply.value == seq or reply.duplicate
            assert seq in applied


class TestLeaseLevel:
    @settings(max_examples=60, deadline=None)
    @given(
        actions=st.lists(
            st.tuples(
                st.sampled_from(("A", "B")),
                st.sampled_from(("acquire", "write")),
            ),
            min_size=4,
            max_size=24,
        )
    )
    def test_exactly_one_owner_and_only_the_owner_writes(self, actions):
        endpoint = ShardEndpoint("s1")
        accepted = []
        endpoint.bind({"ingest": lambda p: accepted.append(p) or p})
        epochs = {"A": 0, "B": 0}
        seq = 0
        for coordinator, action in actions:
            seq += 1
            if action == "acquire":
                # Model a takeover: the acquirer presents an epoch one
                # above anything granted so far (a reopened fleet bumps
                # every epoch past the manifest's).
                epochs[coordinator] = (
                    max(epochs.values()) + 1
                    if endpoint.lease is None
                    or endpoint.lease.holder != coordinator
                    else epochs[coordinator]
                )
                try:
                    endpoint.acquire_lease(
                        coordinator, epochs[coordinator], seq, ttl=4
                    )
                except StaleLeaseError:
                    pass
            else:
                from repro.transport import Envelope

                holder_now = (
                    endpoint.lease.holder
                    if endpoint.lease is not None
                    else None
                )
                envelope = Envelope.seal(
                    request_id=f"s1:ingest:{coordinator}:{seq}",
                    kind="ingest",
                    shard="s1",
                    seq=seq,
                    payload=(coordinator, seq),
                    holder=coordinator,
                )
                try:
                    endpoint.deliver(envelope)
                    # Accepted ⇒ the writer held the lease (or no lease
                    # exists at all — the lease-less supervisor mode).
                    assert holder_now in (coordinator, None)
                except StaleLeaseError:
                    assert holder_now is not None
                    assert holder_now != coordinator
            # The invariant itself: at most one holder at any moment.
            holders = {endpoint.lease.holder} if endpoint.lease else set()
            assert len(holders) <= 1


class TestFleetLevel:
    @settings(max_examples=8, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(("shard-0000", "shard-0001", "shard-*")),
                st.integers(1, 120),
                st.sampled_from(ALL_KINDS),
            ),
            min_size=1,
            max_size=6,
            unique_by=lambda e: (e[0], e[1]),
        )
    )
    def test_partition_chaos_heals_to_bit_identical_verdicts(
        self, tmp_path_factory, events
    ):
        from _fixtures import (
            CONSUMERS,
            detector_factory,
            readings,
            service_factory,
        )
        from repro.scaleout.fleet import ElasticFleet
        from repro.timeseries.seasonal import SLOTS_PER_WEEK

        cycles = 2 * SLOTS_PER_WEEK + 3

        base_dir = tmp_path_factory.mktemp("baseline")
        with ElasticFleet(
            CONSUMERS, base_dir, service_factory, detector_factory, n_shards=2
        ) as baseline:
            for t in range(cycles):
                baseline.ingest_cycle(readings(t))
            expected = baseline.merged_signature()

        spec = ",".join(f"{site}:*@{at}={kind}" for site, at, kind in events)
        transport = FaultyTransport(NetworkFaultSchedule.parse(spec))
        chaos_dir = tmp_path_factory.mktemp("chaos")
        with ElasticFleet(
            CONSUMERS,
            chaos_dir,
            service_factory,
            detector_factory,
            n_shards=2,
            transport=transport,
        ) as fleet:
            for t in range(cycles):
                fleet.ingest_cycle(readings(t))
            transport.heal_all()
            fleet.drain_backlog()
            # No acknowledged cycle lost: every shard reaches the
            # frontier, and the merged verdicts match the undisturbed
            # baseline bit for bit.
            assert fleet.low_watermark == cycles - 1
            assert fleet.unreachable_shards() == ()
            assert fleet.merged_signature() == expected
