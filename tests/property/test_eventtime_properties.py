"""Property-based tests: delivery order must not matter.

The event-time layer's contract is order-independence within the bound:
for ANY permutation of delivery (every reading delayed at most
``lateness + grace`` slots, arbitrarily duplicated), the final weekly
verdicts and the reading store are byte-identical to the in-order run —
only the revision log records that a different path was taken.
Hypothesis drives the scramble; the invariant never bends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.eventtime import (
    EventTimeConfig,
    EventTimeIngestor,
    ReorderBuffer,
    StampedReading,
)
from repro.quarantine.firewall import FirewallPolicy, ReadingFirewall
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("c1", "c2", "c3")
WEEKS = 4
LATENESS = 8
MAX_DELAY = LATENESS + SLOTS_PER_WEEK  # lateness + one grace week
THEFT_START = 3 * SLOTS_PER_WEEK


def _value(cid, t):
    rng = np.random.default_rng((17, t, CONSUMERS.index(cid)))
    value = float(rng.gamma(2.0, 0.5)) + 0.05
    if cid == "c1" and t >= THEFT_START:
        value *= 0.05
    return value


def _service():
    return TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=2,
        retrain_every_weeks=2,
        resilience=ResilienceConfig(min_coverage=0.5, failure_threshold=10_000),
        population=CONSUMERS,
        firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
        eventtime=EventTimeConfig(lateness_slots=LATENESS, grace_weeks=1),
    )


def _run(schedule):
    service = _service()
    ingestor = EventTimeIngestor(service)
    for tick in sorted(schedule):
        ingestor.deliver(schedule[tick])
    ingestor.finish()
    return service


@pytest.fixture(scope="module")
def in_order():
    """The reference run, computed once for every hypothesis example."""
    schedule = {}
    for t in range(WEEKS * SLOTS_PER_WEEK):
        schedule[t] = [
            StampedReading(cid, t, _value(cid, t)) for cid in CONSUMERS
        ]
    return _run(schedule)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_any_bounded_scramble_converges_to_in_order(in_order, seed):
    rng = np.random.default_rng(seed)
    schedule = {}
    for t in range(WEEKS * SLOTS_PER_WEEK):
        for cid in CONSUMERS:
            reading = StampedReading(cid, t, _value(cid, t))
            delay = int(rng.integers(0, MAX_DELAY))
            schedule.setdefault(t + delay, []).append(reading)
            if rng.random() < 0.05:  # arbitrary re-delivery
                dup = int(rng.integers(0, MAX_DELAY))
                schedule.setdefault(t + dup, []).append(reading)
    scrambled = _run(schedule)

    assert scrambled.reports == in_order.reports
    for cid in CONSUMERS:
        assert np.array_equal(
            scrambled.store.series(cid),
            in_order.store.series(cid),
            equal_nan=True,
        )
    # Within the bound nothing can be too late, and only flips are
    # recorded: every revision is a genuine flagged-state transition.
    too_late = scrambled.firewall.store.counts_by_reason().get("too_late", 0)
    assert too_late == 0
    for revision in scrambled.revisions.revisions:
        assert revision.flagged_before != revision.flagged_after


@settings(max_examples=50, deadline=None)
@given(
    offers=st.lists(
        st.tuples(
            st.sampled_from(CONSUMERS),
            st.integers(min_value=0, max_value=40),
            st.floats(
                min_value=0.0, max_value=10.0, allow_nan=False
            ),
        ),
        max_size=60,
    ),
    watermarks=st.lists(
        st.integers(min_value=-1, max_value=45), max_size=5
    ),
)
def test_reorder_buffer_releases_each_slot_exactly_once(offers, watermarks):
    """For ANY offer/release interleaving, the released slot sequence is
    contiguous from zero with no slot repeated or skipped."""
    buffer = ReorderBuffer()
    released = []
    queue = list(offers)
    for watermark in watermarks + [100]:
        while queue and len(queue) % 2 == 0:
            cid, slot, value = queue.pop()
            buffer.offer(StampedReading(cid, slot, value))
        released.extend(slot for slot, _ in buffer.release_until(watermark))
        while queue:
            cid, slot, value = queue.pop()
            buffer.offer(StampedReading(cid, slot, value))
    released.extend(slot for slot, _ in buffer.flush())
    assert released == sorted(set(released))
    assert released == list(range(len(released)))
    assert buffer.pending_readings == 0
