"""Tests for the span tracer."""

import json
import pickle

from repro.observability.tracing import Span, Tracer, trace


class TestNesting:
    def test_with_structure_becomes_tree_structure(self):
        tracer = Tracer()
        with tracer.span("week", week=0):
            with tracer.span("audit"):
                pass
            with tracer.span("assess"):
                with tracer.span("score"):
                    pass
        with tracer.span("week", week=1):
            pass
        assert [root.name for root in tracer.roots] == ["week", "week"]
        first = tracer.roots[0]
        assert [child.name for child in first.children] == ["audit", "assess"]
        assert first.children[1].children[0].name == "score"

    def test_active_tracks_the_innermost_span(self):
        tracer = Tracer()
        assert tracer.active is None
        with tracer.span("outer"):
            assert tracer.active.name == "outer"
            with tracer.span("inner"):
                assert tracer.active.name == "inner"
            assert tracer.active.name == "outer"
        assert tracer.active is None

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.active is None
        assert tracer.roots[0].finished

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [span.name for span in tracer.spans()] == ["a", "b", "c", "d"]

    def test_find_by_name(self):
        tracer = Tracer()
        for week in range(3):
            with tracer.span("week", week=week):
                pass
        weeks = tracer.find("week")
        assert len(weeks) == 3
        assert [span.fields["week"] for span in weeks] == [0, 1, 2]
        assert tracer.find("absent") == []


class TestTiming:
    def test_durations_are_positive_and_nested_sums_bound(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.finished and inner.finished
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_open_span_reports_running_duration(self):
        span = Span(name="open", start=0.0)
        assert not span.finished
        assert span.duration > 0.0


class TestExport:
    def test_to_dict_shape(self):
        tracer = Tracer()
        with tracer.span("week", week=2):
            with tracer.span("assess"):
                pass
        tree = tracer.to_dict()
        assert set(tree) == {"spans"}
        root = tree["spans"][0]
        assert root["name"] == "week"
        assert root["fields"] == {"week": 2}
        assert root["duration_s"] >= 0.0
        assert root["children"][0]["name"] == "assess"
        assert root["children"][0]["children"] == []

    def test_write_produces_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("week"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(path)
        loaded = json.loads(path.read_text())
        assert loaded == tracer.to_dict()

    def test_pickle_round_trip(self):
        tracer = Tracer()
        with tracer.span("week", week=0):
            with tracer.span("assess"):
                pass
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.to_dict() == tracer.to_dict()
        # The clone keeps working as a tracer.
        with clone.span("week", week=1):
            pass
        assert len(clone.roots) == 2


class TestTraceHelper:
    def test_trace_on_a_tracer(self):
        tracer = Tracer()
        with trace("step", tracer=tracer, k="v") as span:
            pass
        assert tracer.roots == [span]
        assert span.fields == {"k": "v"}

    def test_trace_without_tracer_is_standalone(self):
        with trace("step") as span:
            pass
        assert span.finished
