"""Tests for cross-tracer trace propagation and stitching."""

import pytest

from repro.errors import ConfigurationError
from repro.observability.tracing import TraceContext, Tracer, stitch_traces


class TestTraceContext:
    def test_round_trips_through_dict(self):
        context = TraceContext(trace_id="fleet:1", span_id="fleet:2")
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_from_dict_rejects_malformed_payloads(self):
        with pytest.raises(ConfigurationError, match="trace context"):
            TraceContext.from_dict({"trace_id": "only-half"})
        with pytest.raises(ConfigurationError, match="trace context"):
            TraceContext.from_dict(None)

    def test_span_exposes_its_context(self):
        tracer = Tracer(name="t")
        with tracer.span("work") as span:
            context = span.context
        assert context is not None
        assert context.span_id == span.span_id
        assert context.trace_id == span.trace_id


class TestSpanIdentity:
    def test_ids_are_deterministic_per_tracer(self):
        tracer = Tracer(name="shard-0001")
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.span_id for s in tracer.spans()] == [
            "shard-0001:1",
            "shard-0001:2",
        ]

    def test_root_span_starts_its_own_trace(self):
        tracer = Tracer(name="t")
        with tracer.span("root") as span:
            assert span.trace_id == span.span_id
            assert span.parent_id is None

    def test_nested_span_inherits_the_enclosing_trace(self):
        tracer = Tracer(name="t")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_current_context_tracks_the_innermost_span(self):
        tracer = Tracer(name="t")
        assert tracer.current_context() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current_context() == inner.context
        assert tracer.current_context() is None

    def test_explicit_parent_joins_the_remote_trace(self):
        fleet = Tracer(name="fleet")
        shard = Tracer(name="shard")
        with fleet.span("handoff") as handoff:
            context = handoff.context
        with shard.span("adopt", parent=context) as adopt:
            pass
        assert adopt.trace_id == handoff.trace_id
        assert adopt.parent_id == handoff.span_id

    def test_end_span_enforces_innermost_first(self):
        tracer = Tracer(name="t")
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        with pytest.raises(ConfigurationError, match="innermost"):
            tracer.end_span(outer)


class TestStitchTraces:
    def _handoff_forest(self):
        """A fleet-coordinated handoff with per-shard work: 3 tracers."""
        fleet = Tracer(name="fleet")
        src = Tracer(name="shard-a")
        dst = Tracer(name="shard-b")
        root = fleet.start_span("shard_handoff")
        with fleet.span("install"):
            context = fleet.current_context()
            with src.span("extract_consumer", parent=context, consumer="c1"):
                pass
            with dst.span("adopt_consumer", parent=context, consumer="c1"):
                pass
        fleet.end_span(root)
        return fleet, src, dst

    def test_one_stitched_tree_across_tracers(self):
        fleet, src, dst = self._handoff_forest()
        roots = stitch_traces([fleet, src, dst])
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "shard_handoff"
        (install,) = root["children"]
        assert install["name"] == "install"
        assert sorted(c["name"] for c in install["children"]) == [
            "adopt_consumer",
            "extract_consumer",
        ]

    def test_stitched_nodes_are_json_ready(self):
        import json

        fleet, src, dst = self._handoff_forest()
        payload = json.dumps(stitch_traces([fleet, src, dst]))
        assert "extract_consumer" in payload

    def test_trace_id_filter_keeps_one_trace(self):
        fleet, src, dst = self._handoff_forest()
        other = Tracer(name="other")
        with other.span("unrelated"):
            pass
        handoff_trace = fleet.roots[0].trace_id
        roots = stitch_traces(
            [fleet, src, dst, other], trace_id=handoff_trace
        )
        assert [node["name"] for node in roots] == ["shard_handoff"]

    def test_orphan_parent_link_becomes_a_root(self):
        # The parent tracer's spans are not part of the stitch: the
        # child keeps its parent_id but surfaces as a root.
        shard = Tracer(name="shard")
        context = TraceContext(trace_id="fleet:1", span_id="fleet:1")
        with shard.span("adopt", parent=context):
            pass
        (root,) = stitch_traces([shard])
        assert root["name"] == "adopt"
        assert root["parent_id"] == "fleet:1"

    def test_anonymous_spans_stitch_as_standalone_roots(self):
        tracer = Tracer(name="t")
        with tracer.span("normal"):
            pass
        tracer.roots[0].span_id = None  # a span predating id assignment
        (root,) = stitch_traces([tracer])
        assert root["name"] == "normal"
        assert root["span_id"] is None
