"""Parallel-runner metric merging: totals equal the serial run's.

Each worker job records into a fresh registry whose snapshot ships back
with the evaluation; the parent merges them.  Counter values and
histogram observation counts must total identically to a serial run of
the same work (latency *sums* legitimately differ).
"""

import pytest

from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.evaluation.config import EvaluationConfig
from repro.evaluation.experiment import run_evaluation
from repro.evaluation.parallel import run_evaluation_parallel
from repro.observability.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=4, n_weeks=74, seed=66)
    )


@pytest.fixture(scope="module")
def config():
    return EvaluationConfig(n_vectors=2)


@pytest.fixture(scope="module")
def serial_metrics(tiny_dataset, config):
    metrics = MetricsRegistry()
    run_evaluation(tiny_dataset, config, metrics=metrics)
    return metrics


class TestMergedTotals:
    def test_parallel_totals_equal_serial(
        self, tiny_dataset, config, serial_metrics
    ):
        parallel_metrics = MetricsRegistry()
        run_evaluation_parallel(
            tiny_dataset, config, max_workers=2, metrics=parallel_metrics
        )
        serial = serial_metrics.totals()
        merged = parallel_metrics.totals()
        assert serial  # the run actually recorded something
        assert merged == serial

    def test_inline_worker_path_also_merges(
        self, tiny_dataset, config, serial_metrics
    ):
        inline_metrics = MetricsRegistry()
        run_evaluation_parallel(
            tiny_dataset, config, max_workers=1, metrics=inline_metrics
        )
        assert inline_metrics.totals() == serial_metrics.totals()

    def test_expected_families_present(self, serial_metrics):
        for name in (
            "fdeta_eval_consumers_total",
            "fdeta_eval_vectors_scored_total",
            "fdeta_eval_detections_total",
            "fdeta_detector_fit_seconds",
            "fdeta_detector_score_seconds",
        ):
            assert name in serial_metrics

    def test_consumer_counter_matches_population(
        self, tiny_dataset, serial_metrics
    ):
        consumers = serial_metrics.counter("fdeta_eval_consumers_total")
        assert consumers.value() == tiny_dataset.n_consumers

    def test_metrics_argument_is_optional(self, tiny_dataset, config):
        results = run_evaluation_parallel(
            tiny_dataset, config, max_workers=1
        )
        assert results.n_consumers == tiny_dataset.n_consumers
