"""Tests for SLO objectives, burn rates, and the tracker/report plane."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry
from repro.observability.ops import (
    SLObjective,
    SLOTracker,
    default_fleet_objectives,
)


def _latency_objective(threshold=0.25, target=0.99):
    return SLObjective(
        name="latency",
        description="cycles complete in time",
        target=target,
        kind="latency",
        metric="fdeta_ingest_cycle_seconds",
        threshold=threshold,
    )


def _availability_objective(target=0.999):
    return SLObjective(
        name="availability",
        description="readings arrive",
        target=target,
        kind="availability",
        metric="fdeta_readings_total",
        bad_labels=(("status", "gap"),),
    )


def _staleness_objective(threshold=2.0, target=0.99):
    return SLObjective(
        name="staleness",
        description="shards keep up",
        target=target,
        kind="staleness",
        metric="fdeta_fleet_shard_lag_cycles",
        threshold=threshold,
    )


class TestObjectiveValidation:
    def test_target_must_be_a_fraction(self):
        with pytest.raises(ConfigurationError, match="target"):
            _latency_objective(target=1.0)
        with pytest.raises(ConfigurationError, match="target"):
            _latency_objective(target=0.0)

    def test_kind_must_be_known(self):
        with pytest.raises(ConfigurationError, match="kind"):
            SLObjective(
                name="x",
                description="",
                target=0.9,
                kind="throughput",
                metric="m",
            )

    def test_error_budget_is_the_complement(self):
        assert _availability_objective().error_budget == pytest.approx(0.001)


class TestObjectiveCounts:
    def test_latency_good_counts_observations_within_threshold(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "fdeta_ingest_cycle_seconds", buckets=(0.1, 0.25, 1.0)
        )
        for value in (0.05, 0.2, 0.24, 0.5, 2.0):
            histogram.observe(value)
        good, total = _latency_objective(threshold=0.25).counts(registry)
        assert (good, total) == (3.0, 5.0)

    def test_availability_bad_labels_spend_budget(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "fdeta_readings_total", labels=("status",)
        )
        counter.inc(97, status="ok")
        counter.inc(3, status="gap")
        good, total = _availability_objective().counts(registry)
        assert (good, total) == (97.0, 100.0)

    def test_staleness_checks_each_label_set_once(self):
        registry = MetricsRegistry()
        lag = registry.gauge(
            "fdeta_fleet_shard_lag_cycles", labels=("shard",)
        )
        lag.set(0, shard="a")
        lag.set(5, shard="b")
        good, total = _staleness_objective(threshold=2.0).counts(registry)
        assert (good, total) == (1.0, 2.0)

    def test_missing_family_counts_nothing(self):
        assert _latency_objective().counts(MetricsRegistry()) == (0.0, 0.0)


class TestTracker:
    def test_needs_objectives_and_valid_windows(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            SLOTracker(())
        with pytest.raises(ConfigurationError, match="duplicate"):
            SLOTracker((_latency_objective(), _latency_objective()))
        with pytest.raises(ConfigurationError, match="window"):
            SLOTracker(
                (_latency_objective(),), short_window=10, long_window=5
            )

    def test_clean_registry_reports_healthy(self):
        registry = MetricsRegistry()
        registry.counter("fdeta_readings_total", labels=("status",)).inc(
            100, status="ok"
        )
        tracker = SLOTracker((_availability_objective(),))
        tracker.observe(registry)
        report = tracker.report()
        assert report.healthy
        entry = report.objective("availability")
        assert entry["compliance"] == pytest.approx(1.0)
        assert entry["burn_rate_short"] == pytest.approx(0.0)
        assert entry["budget_remaining"] == pytest.approx(1.0)

    def test_burn_rate_reflects_window_bad_fraction(self):
        # 1% gaps against a 0.1% budget burns at 10x in every window.
        registry = MetricsRegistry()
        counter = registry.counter(
            "fdeta_readings_total", labels=("status",)
        )
        tracker = SLOTracker((_availability_objective(),))
        for _ in range(5):
            counter.inc(99, status="ok")
            counter.inc(1, status="gap")
            tracker.observe(registry)
        entry = tracker.report().objective("availability")
        assert entry["burn_rate_short"] == pytest.approx(10.0)
        assert entry["burn_rate_long"] == pytest.approx(10.0)
        assert entry["violated"]
        assert not tracker.report().healthy

    def test_short_window_catches_a_recent_burn_the_long_confirms_slowly(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "fdeta_readings_total", labels=("status",)
        )
        tracker = SLOTracker(
            (_availability_objective(target=0.9),),
            short_window=2,
            long_window=20,
        )
        for _ in range(10):  # clean history
            counter.inc(100, status="ok")
            tracker.observe(registry)
        for _ in range(2):  # sudden total outage
            counter.inc(100, status="gap")
            tracker.observe(registry)
        entry = tracker.report().objective("availability")
        # Short window: all bad -> burn 1/0.1 = 10x. Long window dilutes.
        assert entry["burn_rate_short"] == pytest.approx(10.0)
        assert entry["burn_rate_long"] < entry["burn_rate_short"]

    def test_staleness_accumulates_across_observations(self):
        registry = MetricsRegistry()
        lag = registry.gauge(
            "fdeta_fleet_shard_lag_cycles", labels=("shard",)
        )
        tracker = SLOTracker((_staleness_objective(),))
        lag.set(0, shard="a")
        tracker.observe(registry)
        lag.set(9, shard="a")
        tracker.observe(registry)
        entry = tracker.report().objective("staleness")
        assert entry["total"] == pytest.approx(2.0)
        assert entry["good"] == pytest.approx(1.0)

    def test_export_mirrors_standing_onto_gauges(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "fdeta_readings_total", labels=("status",)
        )
        tracker = SLOTracker((_availability_objective(),))
        tracker.observe(registry)  # baseline point
        counter.inc(50, status="gap")
        tracker.observe(registry)
        out = MetricsRegistry()
        tracker.export(out)
        burn = out.gauge(
            "fdeta_slo_burn_rate", labels=("objective", "window")
        )
        assert burn.value(objective="availability", window="short") > 1.0
        remaining = out.gauge(
            "fdeta_slo_budget_remaining", labels=("objective",)
        )
        assert remaining.value(objective="availability") < 0.0

    def test_report_round_trips_through_json(self):
        registry = MetricsRegistry()
        tracker = SLOTracker((_availability_objective(),))
        tracker.observe(registry)
        payload = json.loads(tracker.report().to_json())
        assert payload["healthy"] is True
        assert payload["objectives"][0]["name"] == "availability"

    def test_report_write(self, tmp_path):
        tracker = SLOTracker((_availability_objective(),))
        path = tmp_path / "slo.json"
        tracker.report().write(path)
        assert json.loads(path.read_text())["short_window"] == 12

    def test_unknown_objective_lookup_raises(self):
        tracker = SLOTracker((_availability_objective(),))
        with pytest.raises(KeyError, match="nope"):
            tracker.report().objective("nope")


class TestDefaultObjectives:
    def test_stock_objectives_cover_the_three_kinds(self):
        objectives = default_fleet_objectives()
        assert [o.kind for o in objectives] == [
            "latency",
            "availability",
            "staleness",
        ]
        assert {o.metric for o in objectives} == {
            "fdeta_ingest_cycle_seconds",
            "fdeta_readings_total",
            "fdeta_fleet_shard_lag_cycles",
        }

    def test_thresholds_are_tunable(self):
        latency, _, staleness = default_fleet_objectives(
            cycle_latency_s=1.5, staleness_cycles=7.0
        )
        assert latency.threshold == 1.5
        assert staleness.threshold == 7.0
