"""Tests for the structured JSONL event logger."""

import enum
import io
import json
import logging

import pytest

from repro.errors import ConfigurationError
from repro.observability.events import LEVELS, EventLogger


def _lines(stream: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line.strip()
    ]


class TestEventShape:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = EventLogger(stream=stream)
        logger.info("week_completed", week=3, alerts=2)
        logger.warning("breaker_opened", consumer="c1")
        records = _lines(stream)
        assert len(records) == 2
        first = records[0]
        assert first["event"] == "week_completed"
        assert first["level"] == "info"
        assert first["week"] == 3
        assert first["alerts"] == 2
        assert isinstance(first["ts"], float)

    def test_levels_constant_ordering(self):
        assert LEVELS == ("debug", "info", "warning", "error")

    def test_enum_fields_log_their_value(self):
        class Nature(enum.Enum):
            ATTACKER = "suspected_attacker"

        stream = io.StringIO()
        EventLogger(stream=stream).error("alert", nature=Nature.ATTACKER)
        assert _lines(stream)[0]["nature"] == "suspected_attacker"

    def test_unserialisable_fields_fall_back_to_str(self):
        stream = io.StringIO()
        EventLogger(stream=stream).info("x", obj={1, 2})
        record = _lines(stream)[0]
        assert isinstance(record["obj"], str)


class TestLevelFiltering:
    def test_events_below_threshold_are_dropped(self):
        stream = io.StringIO()
        logger = EventLogger(stream=stream, level="warning")
        logger.debug("a")
        logger.info("b")
        logger.warning("c")
        logger.error("d")
        assert [r["event"] for r in _lines(stream)] == ["c", "d"]
        assert logger.events_written == 2

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError, match="level"):
            EventLogger(level="critical")

    def test_invalid_event_level_rejected(self):
        with pytest.raises(ConfigurationError, match="level"):
            EventLogger(stream=io.StringIO()).log("fatal", "x")


class TestSinks:
    def test_path_sink_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path=path) as logger:
            logger.info("first")
        with EventLogger(path=path) as logger:
            logger.info("second")
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [e["event"] for e in events] == ["first", "second"]

    def test_path_and_stream_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not both"):
            EventLogger(path=tmp_path / "x", stream=io.StringIO())

    def test_no_sink_buffers_in_memory(self):
        logger = EventLogger()
        logger.info("buffered")
        assert logger.events_written == 1
        logger.close()  # no-op for the in-memory buffer

    def test_close_leaves_caller_owned_stream_open(self):
        stream = io.StringIO()
        logger = EventLogger(stream=stream)
        logger.info("x")
        logger.close()
        assert not stream.closed


class TestClose:
    def test_close_is_idempotent_for_path_sinks(self, tmp_path):
        logger = EventLogger(path=tmp_path / "events.jsonl")
        logger.info("x")
        logger.close()
        logger.close()  # must not raise on the already-released sink

    def test_close_flushes_and_closes_an_owned_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = EventLogger(path=path)
        logger.info("durable")
        stream = logger._stream
        logger.close()
        assert stream.closed
        assert "durable" in path.read_text()

    def test_closed_logger_can_reopen_its_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = EventLogger(path=path)
        logger.info("first")
        logger.close()
        logger.info("second")  # lazily reopens in append mode
        logger.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["first", "second"]

    def test_in_memory_buffer_stays_readable_after_close(self):
        logger = EventLogger()
        logger.info("kept")
        logger.close()
        assert "kept" in logger._stream.getvalue()
        logger.close()  # still idempotent

    def test_close_survives_a_caller_closed_stream(self, tmp_path):
        stream = open(tmp_path / "x.jsonl", "w", encoding="utf-8")
        logger = EventLogger(stream=stream)
        logger.info("y")
        stream.close()  # caller closes its own stream first
        logger.close()  # flush on the dead stream must not raise

    def test_close_detaches_bridge_handlers_everywhere(self):
        stream = io.StringIO()
        events = EventLogger(stream=stream)
        handler = events.stdlib_handler()
        named = logging.getLogger("test.observability.bridge.detach")
        named.propagate = False
        named.addHandler(handler)
        logging.getLogger().addHandler(handler)
        try:
            events.close()
            assert handler not in named.handlers
            assert handler not in logging.getLogger().handlers
            # A post-close record must not resurrect writes to the sink.
            before = stream.getvalue()
            named.warning("orphaned")
            assert stream.getvalue() == before
        finally:
            named.removeHandler(handler)
            logging.getLogger().removeHandler(handler)

    def test_close_forgets_detached_handlers(self):
        events = EventLogger(stream=io.StringIO())
        events.stdlib_handler()
        events.close()
        assert events._bridge_handlers == []


class TestStdlibBridge:
    def test_stdlib_records_route_into_jsonl(self):
        stream = io.StringIO()
        events = EventLogger(stream=stream)
        stdlib = logging.getLogger("test.observability.bridge.in")
        stdlib.propagate = False
        handler = events.stdlib_handler()
        stdlib.addHandler(handler)
        try:
            stdlib.warning("link %s flapping", "ami-7")
        finally:
            stdlib.removeHandler(handler)
        record = _lines(stream)[0]
        assert record["event"] == "link ami-7 flapping"
        assert record["level"] == "warning"
        assert record["logger"] == "test.observability.bridge.in"
        assert record["stdlib_level"] == "WARNING"

    def test_forward_to_mirrors_events_out(self, caplog):
        stream = io.StringIO()
        events = EventLogger(
            stream=stream, forward_to="test.observability.bridge.out"
        )
        with caplog.at_level(
            logging.INFO, logger="test.observability.bridge.out"
        ):
            events.info("week_completed", week=1)
        assert len(_lines(stream)) == 1
        assert any(
            "week_completed" in message for message in caplog.messages
        )
