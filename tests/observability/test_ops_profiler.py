"""Tests for the sampling hot-path stage profiler."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.ops import StageProfiler


class ManualClock:
    """A clock the test advances explicitly (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.reads = 0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        self.reads += 1
        return self.now


class TestSampling:
    def test_counts_are_exact_seconds_are_sampled(self):
        profiler = StageProfiler(sample_every=2, clock=ManualClock())
        for _ in range(10):
            with profiler.stage("ingest"):
                pass
        stats = profiler.snapshot()["ingest"]
        assert stats["calls"] == 10
        assert stats["sampled"] == 5

    def test_unsampled_windows_never_read_the_clock(self):
        clock = ManualClock()
        profiler = StageProfiler(sample_every=4, clock=clock)
        for _ in range(8):
            with profiler.stage("ingest"):
                pass
        # 2 sampled windows x (start + stop) reads.
        assert clock.reads == 4

    def test_sample_every_one_profiles_every_call(self):
        profiler = StageProfiler(sample_every=1, clock=ManualClock())
        for _ in range(3):
            with profiler.stage("s"):
                pass
        assert profiler.snapshot()["s"]["sampled"] == 3

    def test_nested_stages_inherit_the_sampling_decision(self):
        # With sample_every=2 the 1st/3rd/... top-level windows sample;
        # inner stages must follow the enclosing window, not re-decide.
        profiler = StageProfiler(sample_every=2, clock=ManualClock())
        for _ in range(4):
            with profiler.stage("outer"):
                with profiler.stage("inner"):
                    pass
        snap = profiler.snapshot()
        assert snap["outer"]["sampled"] == 2
        assert snap["inner"]["sampled"] == 2
        assert snap["inner"]["calls"] == 4

    def test_rejects_non_positive_sample_every(self):
        with pytest.raises(ConfigurationError, match="sample_every"):
            StageProfiler(sample_every=0)


class TestSelfVsCumulative:
    def test_self_time_excludes_children(self):
        clock = ManualClock()
        profiler = StageProfiler(sample_every=1, clock=clock)
        with profiler.stage("outer"):
            clock.advance(1.0)
            with profiler.stage("inner"):
                clock.advance(2.0)
            clock.advance(3.0)
        snap = profiler.snapshot()
        assert snap["outer"]["cum_s"] == pytest.approx(6.0)
        assert snap["outer"]["self_s"] == pytest.approx(4.0)
        assert snap["inner"]["cum_s"] == pytest.approx(2.0)
        assert snap["inner"]["self_s"] == pytest.approx(2.0)

    def test_sibling_children_both_subtract_from_parent(self):
        clock = ManualClock()
        profiler = StageProfiler(sample_every=1, clock=clock)
        with profiler.stage("outer"):
            with profiler.stage("a"):
                clock.advance(1.0)
            with profiler.stage("b"):
                clock.advance(2.0)
        snap = profiler.snapshot()
        assert snap["outer"]["self_s"] == pytest.approx(0.0)
        assert snap["outer"]["cum_s"] == pytest.approx(3.0)

    def test_estimates_scale_by_call_fraction(self):
        clock = ManualClock()
        profiler = StageProfiler(sample_every=2, clock=clock)
        for _ in range(4):
            with profiler.stage("s"):
                clock.advance(1.0)
        stats = profiler.snapshot()["s"]
        # 2 sampled seconds, 4 calls of 2 sampled -> x2 extrapolation.
        assert stats["cum_s"] == pytest.approx(2.0)
        assert stats["est_cum_s"] == pytest.approx(4.0)
        assert stats["est_self_s"] == pytest.approx(4.0)


class TestReporting:
    def _loaded(self):
        clock = ManualClock()
        profiler = StageProfiler(sample_every=1, clock=clock)
        with profiler.stage("hot"):
            clock.advance(5.0)
        with profiler.stage("cold"):
            clock.advance(1.0)
        return profiler

    def test_hot_stages_ranked_by_estimated_self_time(self):
        ranked = self._loaded().hot_stages(2)
        assert [entry["stage"] for entry in ranked] == ["hot", "cold"]

    def test_hot_stages_respects_top_n(self):
        assert len(self._loaded().hot_stages(1)) == 1

    def test_to_dict_shape(self):
        payload = self._loaded().to_dict(top=1)
        assert set(payload) == {"sample_every", "stages", "hot_stages"}
        assert payload["sample_every"] == 1
        assert set(payload["stages"]) == {"hot", "cold"}
        assert len(payload["hot_stages"]) == 1

    def test_write_emits_loadable_json(self, tmp_path):
        path = tmp_path / "profile.json"
        self._loaded().write(path)
        payload = json.loads(path.read_text())
        assert payload["stages"]["hot"]["calls"] == 1

    def test_reset_drops_stats(self):
        profiler = self._loaded()
        profiler.reset()
        assert profiler.snapshot() == {}
