"""Tests for the benchmark perf-record trajectory files."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.bench import (
    SCHEMA_VERSION,
    BenchTimer,
    bench_diff,
    main,
    read_bench_records,
    write_bench_record,
)


class TestBenchTimer:
    def test_measures_elapsed_seconds(self):
        with BenchTimer() as timer:
            sum(range(1000))
        assert timer.elapsed > 0.0

    def test_elapsed_survives_exceptions(self):
        timer = BenchTimer()
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError("boom")
        assert timer.elapsed > 0.0


class TestTrajectoryFiles:
    def test_first_write_creates_the_file(self, tmp_path):
        path = write_bench_record(
            "eval", 1.25, {"consumers": 4}, directory=tmp_path
        )
        assert path == str(tmp_path / "BENCH_eval.json")
        payload = json.loads((tmp_path / "BENCH_eval.json").read_text())
        assert payload["name"] == "eval"
        (record,) = payload["records"]
        assert record["seconds"] == 1.25
        assert record["meta"] == {"consumers": 4}
        assert "recorded_at" in record and "python" in record

    def test_records_accumulate_across_writes(self, tmp_path):
        write_bench_record("eval", 1.0, directory=tmp_path)
        write_bench_record("eval", 2.0, directory=tmp_path)
        records = read_bench_records("eval", directory=tmp_path)
        assert [r["seconds"] for r in records] == [1.0, 2.0]

    def test_corrupt_file_is_replaced_not_fatal(self, tmp_path):
        (tmp_path / "BENCH_eval.json").write_text("{not json")
        write_bench_record("eval", 3.0, directory=tmp_path)
        records = read_bench_records("eval", directory=tmp_path)
        assert [r["seconds"] for r in records] == [3.0]

    def test_foreign_shape_is_replaced(self, tmp_path):
        (tmp_path / "BENCH_eval.json").write_text('["unexpected"]')
        write_bench_record("eval", 4.0, directory=tmp_path)
        assert [
            r["seconds"] for r in read_bench_records("eval", tmp_path)
        ] == [4.0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_bench_records("absent", directory=tmp_path) == []

    def test_rejects_path_traversal_names(self, tmp_path):
        with pytest.raises(ConfigurationError, match="invalid bench"):
            write_bench_record("../escape", 1.0, directory=tmp_path)
        with pytest.raises(ConfigurationError, match="invalid bench"):
            write_bench_record("", 1.0, directory=tmp_path)


class TestRecordStamps:
    def test_records_carry_the_uniform_run_stamps(self, tmp_path, monkeypatch):
        import repro.observability.bench as bench_module

        monkeypatch.setenv("REPRO_GIT_SHA", "abc1234")
        monkeypatch.setattr(bench_module, "_git_sha_cache", False)
        write_bench_record("eval", 1.0, directory=tmp_path)
        (record,) = read_bench_records("eval", directory=tmp_path)
        assert record["schema"] == SCHEMA_VERSION
        assert record["git_sha"] == "abc1234"
        assert record["python"].count(".") == 2
        assert record["machine"]
        assert "recorded_at" in record

    def test_git_sha_lookup_is_cached(self, tmp_path, monkeypatch):
        import repro.observability.bench as bench_module

        monkeypatch.setattr(bench_module, "_git_sha_cache", "cached99")
        write_bench_record("eval", 1.0, directory=tmp_path)
        (record,) = read_bench_records("eval", directory=tmp_path)
        assert record["git_sha"] == "cached99"


def _record(seconds, meta=None):
    return {"seconds": seconds, "meta": meta or {}}


class TestBenchDiff:
    def test_regression_beyond_tolerance_fails(self):
        diff = bench_diff(
            [_record(1.0)], [_record(1.5)], tolerance=0.2
        )
        assert not diff.ok
        (entry,) = diff.regressions
        assert entry["metric"] == "seconds"
        assert entry["delta"] == pytest.approx(0.5)

    def test_change_within_tolerance_is_ok(self):
        diff = bench_diff([_record(1.0)], [_record(1.1)], tolerance=0.2)
        assert diff.ok
        assert diff.entries[0]["regression"] is False

    def test_throughput_drop_regresses_speedup_improves(self):
        old = [_record(1.0, {"cycles_per_s": 100.0})]
        new = [_record(0.5, {"cycles_per_s": 60.0})]
        diff = bench_diff(old, new, tolerance=0.2)
        by_metric = {e["metric"]: e for e in diff.entries}
        assert by_metric["cycles_per_s"]["regression"]
        assert by_metric["seconds"]["improvement"]

    def test_series_matched_by_non_float_meta(self):
        old = [
            _record(1.0, {"stage": "ingest"}),
            _record(2.0, {"stage": "scoring"}),
        ]
        new = [
            _record(1.0, {"stage": "scoring"}),  # halved: improvement
            _record(9.0, {"stage": "ingest"}),  # 9x: regression
        ]
        diff = bench_diff(old, new, tolerance=0.2)
        (entry,) = diff.regressions
        assert "ingest" in entry["series"]

    def test_latest_record_per_series_wins(self):
        old = [_record(5.0), _record(1.0)]  # trajectory: latest is 1.0
        diff = bench_diff(old, [_record(1.1)], tolerance=0.2)
        assert diff.ok

    def test_unmatched_series_and_metrics_are_skipped(self):
        old = [_record(1.0, {"stage": "gone"})]
        new = [_record(1.0, {"stage": "new"})]
        diff = bench_diff(old, new)
        assert diff.entries == ()
        assert diff.ok
        assert "no comparable series" in diff.render()

    def test_unrecognised_metric_reported_but_never_gates(self):
        old = [_record(1.0, {"weeks": 9.0})]
        new = [_record(1.0, {"weeks": 90.0})]
        diff = bench_diff(old, new)
        by_metric = {e["metric"]: e for e in diff.entries}
        assert by_metric["weeks"]["direction"] == "informational"
        assert diff.ok

    def test_accepts_paths_and_payload_dicts(self, tmp_path):
        write_bench_record("x", 1.0, directory=tmp_path)
        path = tmp_path / "BENCH_x.json"
        diff = bench_diff(path, json.loads(path.read_text()))
        assert diff.ok

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError, match="tolerance"):
            bench_diff([], [], tolerance=-0.1)

    def test_render_names_regressions(self):
        diff = bench_diff([_record(1.0)], [_record(2.0)], tolerance=0.2)
        rendered = diff.render()
        assert "REGRESSION" in rendered
        assert "1 regression(s) beyond 20%" in rendered


class TestDiffCli:
    def _write(self, tmp_path, name, seconds):
        path = tmp_path / name
        path.write_text(
            json.dumps({"name": "t", "records": [_record(seconds)]})
        )
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", 1.0)
        new = self._write(tmp_path, "new.json", 1.05)
        assert main(["diff", old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", 1.0)
        new = self._write(tmp_path, "new.json", 2.0)
        assert main(["diff", old, new, "--tolerance", "0.5"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
