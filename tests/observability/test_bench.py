"""Tests for the benchmark perf-record trajectory files."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.bench import (
    BenchTimer,
    read_bench_records,
    write_bench_record,
)


class TestBenchTimer:
    def test_measures_elapsed_seconds(self):
        with BenchTimer() as timer:
            sum(range(1000))
        assert timer.elapsed > 0.0

    def test_elapsed_survives_exceptions(self):
        timer = BenchTimer()
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError("boom")
        assert timer.elapsed > 0.0


class TestTrajectoryFiles:
    def test_first_write_creates_the_file(self, tmp_path):
        path = write_bench_record(
            "eval", 1.25, {"consumers": 4}, directory=tmp_path
        )
        assert path == str(tmp_path / "BENCH_eval.json")
        payload = json.loads((tmp_path / "BENCH_eval.json").read_text())
        assert payload["name"] == "eval"
        (record,) = payload["records"]
        assert record["seconds"] == 1.25
        assert record["meta"] == {"consumers": 4}
        assert "recorded_at" in record and "python" in record

    def test_records_accumulate_across_writes(self, tmp_path):
        write_bench_record("eval", 1.0, directory=tmp_path)
        write_bench_record("eval", 2.0, directory=tmp_path)
        records = read_bench_records("eval", directory=tmp_path)
        assert [r["seconds"] for r in records] == [1.0, 2.0]

    def test_corrupt_file_is_replaced_not_fatal(self, tmp_path):
        (tmp_path / "BENCH_eval.json").write_text("{not json")
        write_bench_record("eval", 3.0, directory=tmp_path)
        records = read_bench_records("eval", directory=tmp_path)
        assert [r["seconds"] for r in records] == [3.0]

    def test_foreign_shape_is_replaced(self, tmp_path):
        (tmp_path / "BENCH_eval.json").write_text('["unexpected"]')
        write_bench_record("eval", 4.0, directory=tmp_path)
        assert [
            r["seconds"] for r in read_bench_records("eval", tmp_path)
        ] == [4.0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_bench_records("absent", directory=tmp_path) == []

    def test_rejects_path_traversal_names(self, tmp_path):
        with pytest.raises(ConfigurationError, match="invalid bench"):
            write_bench_record("../escape", 1.0, directory=tmp_path)
        with pytest.raises(ConfigurationError, match="invalid bench"):
            write_bench_record("", 1.0, directory=tmp_path)
