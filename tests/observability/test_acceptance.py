"""End-to-end acceptance: a faulted 20-consumer monitoring session.

Drives the online service over a fault-injecting channel with a theft
attack and a silenced meter, then asserts the exported telemetry is the
real thing: a Prometheus file that passes the validating parser and
carries breaker-state gauges, alert counters by attack class, and the
ingest-latency histogram; a JSONL event log; and a span trace tree.
The CLI flags (``--metrics-out`` / ``--trace-out`` / ``--log-json``)
are exercised through ``main()``.
"""

import json

import numpy as np
import pytest

from repro.core.framework import AnomalyNature
from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.metering.channel import LossyChannel
from repro.observability.events import EventLogger
from repro.observability.metrics import parse_prometheus
from repro.observability.tracing import Tracer
from repro.resilience import FaultInjector, FaultyChannel, ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

_CONSUMERS = 20
_WEEKS = 12
_TRAIN_WEEKS = 4
_THEFT_FROM_WEEK = 6  # attacker under-reports from here on
_SILENT_FROM_WEEK = 6  # this meter goes dark (breaker must open)


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    """Run the faulted session once; every test inspects its artefacts."""
    from repro.data.synthetic import (
        SyntheticCERConfig,
        generate_cer_like_dataset,
    )

    out = tmp_path_factory.mktemp("telemetry")
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=_CONSUMERS, n_weeks=_WEEKS, seed=42)
    )
    ids = dataset.consumers()
    series = {cid: dataset.series(cid) for cid in ids}
    thief, silent, flaky = ids[0], ids[1], ids[2]

    events_path = out / "events.jsonl"
    service = TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=_TRAIN_WEEKS,
        retrain_every_weeks=6,
        resilience=ResilienceConfig(min_coverage=0.5),
        population=ids,
        events=EventLogger(path=events_path),
        tracer=Tracer(),
    )
    channel = FaultyChannel(
        channel=LossyChannel(drop_rate=0.02, outage_rate=0.0),
        faults=FaultInjector(corrupt_rate=0.002),
    )
    rng = np.random.default_rng(7)
    for t in range(_WEEKS * SLOTS_PER_WEEK):
        week = t // SLOTS_PER_WEEK
        readings = {cid: float(series[cid][t]) for cid in ids}
        if week >= _THEFT_FROM_WEEK:
            readings[thief] *= 0.25  # Attack-Class-2 style under-report
        if week >= _SILENT_FROM_WEEK:
            del readings[silent]
        if week >= _TRAIN_WEEKS and t % 100 < 6:
            # Gap runs of 6: longer than max_repair_gap (the week scores
            # in degraded mode) but below the breaker's 8-failure trip.
            del readings[flaky]
        service.ingest_cycle(channel.transmit(readings, rng))
    service.events.close()

    metrics_path = out / "metrics.prom"
    trace_path = out / "trace.json"
    service.metrics.write_prometheus(metrics_path)
    service.tracer.write(trace_path)
    return {
        "service": service,
        "thief": thief,
        "silent": silent,
        "metrics_path": metrics_path,
        "events_path": events_path,
        "trace_path": trace_path,
    }


class TestPrometheusArtifact:
    def test_file_parses_as_valid_exposition(self, session):
        families = parse_prometheus(session["metrics_path"].read_text())
        assert families  # not empty

    def test_breaker_state_gauges_cover_the_population(self, session):
        families = parse_prometheus(session["metrics_path"].read_text())
        states = dict(
            (labels["state"], value)
            for labels, value in families["fdeta_breaker_state_consumers"]
        )
        assert set(states) == {"closed", "open", "half_open"}
        assert sum(states.values()) == _CONSUMERS
        # The silenced meter is out of the closed state by the end (open,
        # or half_open while a doomed recovery probe is in flight).
        assert states["open"] + states["half_open"] >= 1

    def test_breaker_transitions_were_counted(self, session):
        families = parse_prometheus(session["metrics_path"].read_text())
        transitions = {
            (labels["from_state"], labels["to_state"]): value
            for labels, value in families["fdeta_breaker_transitions_total"]
        }
        assert transitions[("closed", "open")] >= 1

    def test_alert_counters_by_attack_class(self, session):
        families = parse_prometheus(session["metrics_path"].read_text())
        natures = {
            labels["nature"] for labels, _ in families["fdeta_alerts_total"]
        }
        known = {nature.value for nature in AnomalyNature}
        assert natures and natures <= known
        assert AnomalyNature.SUSPECTED_ATTACKER.value in natures
        severities = {
            labels["severity"]
            for labels, _ in families["fdeta_alerts_total"]
        }
        assert severities <= {"marginal", "elevated", "critical"}

    def test_ingest_latency_histogram_counts_every_cycle(self, session):
        families = parse_prometheus(session["metrics_path"].read_text())
        ((_labels, count),) = families["fdeta_ingest_cycle_seconds_count"]
        assert count == _WEEKS * SLOTS_PER_WEEK
        assert "fdeta_ingest_cycle_seconds_bucket" in families

    def test_degraded_weeks_and_coverage_recorded(self, session):
        families = parse_prometheus(session["metrics_path"].read_text())
        assert families["fdeta_degraded_weeks_total"][0][1] >= 1
        assert "fdeta_week_coverage_fraction_bucket" in families
        assert families["fdeta_weeks_completed_total"][0][1] == _WEEKS

    def test_service_flagged_the_thief(self, session):
        assert session["thief"] in session["service"].suspected_attackers()


class TestEventLogArtifact:
    def test_every_line_is_a_json_event(self, session):
        lines = session["events_path"].read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert {"ts", "level", "event"} <= set(record)

    def test_alerts_and_breaker_transitions_are_logged(self, session):
        records = [
            json.loads(line)
            for line in session["events_path"].read_text().splitlines()
        ]
        by_event = {record["event"] for record in records}
        assert {
            "week_completed",
            "theft_alert",
            "breaker_transition",
            "detectors_trained",
        } <= by_event
        thief_alerts = [
            r
            for r in records
            if r["event"] == "theft_alert"
            and r["consumer"] == session["thief"]
        ]
        assert thief_alerts
        assert all(alert["level"] == "warning" for alert in thief_alerts)
        # A corrupted-frame spike can dominate one week's mean and flip
        # its triage, but the sustained under-reporting must show up as
        # suspected-attacker alerts.
        assert AnomalyNature.SUSPECTED_ATTACKER.value in {
            alert["nature"] for alert in thief_alerts
        }


class TestTraceArtifact:
    def test_trace_tree_has_week_spans_with_children(self, session):
        tree = json.loads(session["trace_path"].read_text())
        weeks = [span for span in tree["spans"] if span["name"] == "week"]
        assert len(weeks) == _WEEKS
        child_names = {
            child["name"] for span in weeks for child in span["children"]
        }
        assert "assess" in child_names
        assert all(span["duration_s"] >= 0.0 for span in weeks)

    def test_train_spans_nest_under_weeks(self, session):
        tracer = session["service"].tracer
        trains = tracer.find("train")
        assert trains
        assert all(span.finished for span in trains)


class TestCLIFlags:
    def test_monitor_writes_all_three_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        log = tmp_path / "events.jsonl"
        code = main(
            [
                "monitor",
                "--consumers", "5",
                "--weeks", "7",
                "--seed", "3",
                "--min-training-weeks", "4",
                "--drop-rate", "0.02",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
                "--log-json", str(log),
            ]
        )
        assert code == 0
        families = parse_prometheus(metrics.read_text())
        assert families["fdeta_weeks_completed_total"][0][1] == 7
        assert "fdeta_ingest_cycle_seconds_bucket" in families
        tree = json.loads(trace.read_text())
        assert any(span["name"] == "week" for span in tree["spans"])
        records = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert any(r["event"] == "week_completed" for r in records)

    def test_evaluate_writes_json_snapshot(self, tmp_path, capsys):
        from repro.cli import main
        from repro.observability.metrics import MetricsRegistry

        out = tmp_path / "metrics.json"
        code = main(
            [
                "evaluate",
                "--consumers", "3",
                "--weeks", "74",
                "--vectors", "2",
                "--metrics-out", str(out),
            ]
        )
        assert code == 0
        registry = MetricsRegistry.from_snapshot(
            json.loads(out.read_text())
        )
        assert registry.counter("fdeta_eval_consumers_total").value() == 3
