"""Regression: telemetry survives checkpoint/restore and keeps counting.

The metrics registry and tracer ride inside the checkpoint payload, so a
resumed monitoring session continues its counters instead of resetting
them — `fdeta_weeks_completed_total` after a crash-and-resume run equals
the uninterrupted run's value.
"""

import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.observability.tracing import Tracer
from repro.resilience import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

_WEEKS = 12
_CHECKPOINT_AT = 8 * SLOTS_PER_WEEK + 117  # mid-week, not a boundary


def _factory():
    return KLDDetector(significance=0.05)


def _make_service():
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=6,
        retrain_every_weeks=3,
        resilience=ResilienceConfig(min_coverage=0.6),
        tracer=Tracer(),
    )


@pytest.fixture(scope="module")
def cycles(paper_dataset):
    ids = paper_dataset.consumers()[:3]
    series = {cid: paper_dataset.series(cid) for cid in ids}
    return [
        {cid: float(series[cid][t]) for cid in ids}
        for t in range(_WEEKS * SLOTS_PER_WEEK)
    ]


@pytest.fixture(scope="module")
def round_trip(cycles, tmp_path_factory):
    """One interrupted run: ingest, checkpoint mid-week, restore."""
    path = tmp_path_factory.mktemp("ckpt") / "service.ckpt"
    service = _make_service()
    for cycle in cycles[:_CHECKPOINT_AT]:
        service.ingest_cycle(cycle)
    service.checkpoint(path)
    restored = TheftMonitoringService.restore(path, _factory)
    return service, restored


class TestStateSurvivesRestore:
    def test_metrics_snapshot_is_bit_identical(self, round_trip):
        service, restored = round_trip
        assert restored.metrics.snapshot() == service.metrics.snapshot()

    def test_prometheus_exposition_is_byte_identical(self, round_trip):
        service, restored = round_trip
        assert (
            restored.metrics.to_prometheus()
            == service.metrics.to_prometheus()
        )

    def test_trace_tree_is_identical(self, round_trip):
        service, restored = round_trip
        assert restored.tracer is not None
        assert restored.tracer.to_dict() == service.tracer.to_dict()
        assert len(list(restored.tracer.spans())) > 0

    def test_counters_captured_mid_run_are_nonzero(self, round_trip):
        service, _restored = round_trip
        counters = service.metrics
        assert (
            counters.counter("fdeta_ingest_cycles_total").value()
            == _CHECKPOINT_AT
        )
        assert counters.counter("fdeta_weeks_completed_total").value() == 8


class TestCountersContinueAfterResume:
    def test_resumed_totals_match_uninterrupted_run(self, cycles, tmp_path):
        reference = _make_service()
        for cycle in cycles:
            reference.ingest_cycle(cycle)

        interrupted = _make_service()
        path = tmp_path / "service.ckpt"
        for cycle in cycles[:_CHECKPOINT_AT]:
            interrupted.ingest_cycle(cycle)
        interrupted.checkpoint(path)
        resumed = TheftMonitoringService.restore(path, _factory)
        del interrupted
        for cycle in cycles[_CHECKPOINT_AT:]:
            resumed.ingest_cycle(cycle)

        # Counters continued from the checkpoint, they did not reset:
        # the resumed run's deterministic totals (counter values and
        # histogram observation counts) equal the uninterrupted run's.
        assert resumed.metrics.totals() == reference.metrics.totals()
        weeks = resumed.metrics.counter("fdeta_weeks_completed_total")
        assert weeks.value() == _WEEKS

    def test_resumed_tracer_keeps_appending(self, cycles, tmp_path):
        service = _make_service()
        path = tmp_path / "service.ckpt"
        for cycle in cycles[:_CHECKPOINT_AT]:
            service.ingest_cycle(cycle)
        service.checkpoint(path)
        resumed = TheftMonitoringService.restore(path, _factory)
        spans_at_restore = len(list(resumed.tracer.spans()))
        for cycle in cycles[_CHECKPOINT_AT:]:
            resumed.ingest_cycle(cycle)
        assert len(list(resumed.tracer.spans())) > spans_at_restore
        weeks = resumed.tracer.find("week")
        assert [span.fields["week"] for span in weeks] == list(range(_WEEKS))
