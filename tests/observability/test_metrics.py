"""Tests for the metrics registry: primitives, exposition, merging."""

import math
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    FRACTION_BUCKETS,
    MetricsRegistry,
    global_registry,
    parse_prometheus,
    set_global_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("jobs_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_samples_are_independent(self):
        counter = MetricsRegistry().counter(
            "alerts_total", labels=("nature",)
        )
        counter.inc(nature="attacker")
        counter.inc(3, nature="victim")
        assert counter.value(nature="attacker") == 1.0
        assert counter.value(nature="victim") == 3.0
        assert counter.value(nature="unseen") == 0.0

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)

    def test_rejects_wrong_label_set(self):
        counter = MetricsRegistry().counter("x_total", labels=("a",))
        with pytest.raises(ConfigurationError, match="expects labels"):
            counter.inc(b=1)
        with pytest.raises(ConfigurationError, match="expects labels"):
            counter.inc()

    def test_non_string_label_values_are_stringified(self):
        counter = MetricsRegistry().counter("x_total", labels=("week",))
        counter.inc(week=7)
        assert counter.value(week=7) == 1.0
        assert counter.value(week="7") == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 3.0

    def test_labelled(self):
        gauge = MetricsRegistry().gauge("state", labels=("name",))
        gauge.set(2, name="open")
        gauge.set(0, name="open")
        assert gauge.value(name="open") == 0.0


class TestHistogram:
    def test_observations_land_in_first_fitting_bucket(self):
        hist = MetricsRegistry().histogram(
            "lat", buckets=(0.1, 1.0, 10.0)
        )
        hist.observe(0.05)   # <= 0.1
        hist.observe(0.5)    # <= 1.0
        hist.observe(100.0)  # above all bounds: only +Inf
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(100.55)
        cumulative = hist.cumulative_buckets()
        assert cumulative == [(0.1, 1), (1.0, 2), (10.0, 2), (math.inf, 3)]

    def test_boundary_value_is_inclusive(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.cumulative_buckets()[0] == (1.0, 1)

    def test_time_context_manager_observes_duration(self):
        hist = MetricsRegistry().histogram("lat")
        with hist.time():
            pass
        assert hist.count() == 1
        assert hist.sum() >= 0.0

    def test_empty_labelset_reads_as_zero(self):
        hist = MetricsRegistry().histogram("lat", labels=("d",))
        assert hist.count(d="none") == 0
        assert hist.sum(d="none") == 0.0
        assert hist.cumulative_buckets(d="none")[-1] == (math.inf, 0)

    def test_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="at least one"):
            registry.histogram("a", buckets=())
        with pytest.raises(ConfigurationError, match="strictly increase"):
            registry.histogram("b", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="finite"):
            registry.histogram("c", buckets=(1.0, math.inf))

    def test_default_bucket_ladders(self):
        assert DEFAULT_LATENCY_BUCKETS == tuple(
            sorted(DEFAULT_LATENCY_BUCKETS)
        )
        assert FRACTION_BUCKETS[-1] == 1.0


class TestRegistry:
    def test_accessors_are_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("a")

    def test_label_schema_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a", labels=("x",))
        with pytest.raises(ConfigurationError, match="labels"):
            registry.counter("a", labels=("y",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError, match="invalid label name"):
            registry.counter("ok", labels=("bad-label",))
        with pytest.raises(ConfigurationError, match="duplicate"):
            registry.counter("ok", labels=("a", "a"))

    def test_contains(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        assert "a_total" in registry
        assert "b_total" not in registry

    def test_pickle_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a_total", labels=("k",)).inc(2, k="v")
        registry.histogram("lat").observe(0.3)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.to_prometheus() == registry.to_prometheus()
        assert clone.snapshot() == registry.snapshot()


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs seen.").inc(3)
        registry.gauge("depth", labels=("q",)).set(1.5, q="main")
        text = registry.to_prometheus()
        assert "# HELP jobs_total Jobs seen.\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert "jobs_total 3\n" in text
        assert "# TYPE depth gauge\n" in text
        assert 'depth{q="main"} 1.5\n' in text

    def test_histogram_bucket_sum_count_invariants(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        families = parse_prometheus(registry.to_prometheus())
        buckets = families["lat_bucket"]
        assert [(lbl["le"], v) for lbl, v in buckets] == [
            ("0.1", 1.0),
            ("1", 2.0),
            ("+Inf", 3.0),
        ]
        assert families["lat_count"] == [({}, 3.0)]
        assert families["lat_sum"][0][1] == pytest.approx(5.55)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        tricky = 'back\\slash "quoted"\nnewline'
        registry.counter("c_total", labels=("v",)).inc(v=tricky)
        text = registry.to_prometheus()
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        families = parse_prometheus(text)
        assert families["c_total"] == [({"v": tricky}, 1.0)]

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two").inc()
        text = registry.to_prometheus()
        assert "# HELP c_total line one\\nline two\n" in text
        parse_prometheus(text)  # still well formed

    def test_deterministic_output(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("a_total", labels=("k",)).inc(k="x")
            registry.counter("a_total", labels=("k",)).inc(k="y")
            registry.histogram("lat").observe(0.2)
            return registry

        assert build().to_prometheus() == build().to_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
        assert parse_prometheus("") == {}

    def test_write_prometheus_and_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        registry.write_prometheus(prom)
        registry.write_json(js)
        assert parse_prometheus(prom.read_text())["a_total"] == [({}, 1.0)]
        import json

        snapshot = json.loads(js.read_text())
        assert snapshot["families"][0]["name"] == "a_total"


class TestParser:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("this is not exposition format")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus("a_total{oops} 1")

    def test_rejects_malformed_value(self):
        with pytest.raises(ValueError, match="malformed value"):
            parse_prometheus("a_total pancake")

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_prometheus("# NOPE a_total")

    def test_rejects_histogram_missing_sum(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 1\n'
            "lat_count 1\n"
        )
        with pytest.raises(ValueError, match="missing _sum"):
            parse_prometheus(text)

    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 5\n'
            'lat_bucket{le="+Inf"} 3\n'
            "lat_sum 1.0\n"
            "lat_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 1\n'
            'lat_bucket{le="+Inf"} 3\n'
            "lat_sum 1.0\n"
            "lat_count 4\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf bucket"):
            parse_prometheus(text)

    def test_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 1\n'
            "lat_sum 1.0\n"
            "lat_count 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_rejects_histogram_with_no_series_at_all(self):
        text = "# TYPE lat histogram\nlat_sum 1.0\n"
        with pytest.raises(ValueError, match="missing series"):
            parse_prometheus(text)

    def test_rejects_bucket_without_le_label(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{shard="a"} 1\n'
            "lat_sum 1.0\n"
            "lat_count 1\n"
        )
        with pytest.raises(ValueError, match="missing le"):
            parse_prometheus(text)

    def test_rejects_bucket_labelset_without_count(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{shard="a",le="+Inf"} 1\n'
            'lat_sum{shard="a"} 1.0\n'
            'lat_count{shard="b"} 1\n'
        )
        with pytest.raises(ValueError, match="no _count"):
            parse_prometheus(text)


class TestLabelEscapeRoundTrip:
    """Exposition -> parse must invert escaping for any label value."""

    # The nasty cases: literal backslash-n (NOT a newline), nested
    # escapes, quotes, and trailing backslashes.  A sequential
    # str.replace unescaper corrupts several of these.
    VALUES = (
        "plain",
        "with space",
        'quo"ted',
        "new\nline",
        "back\\slash",
        "a\\nb",  # literal backslash then 'n'
        "a\\\nb",  # literal backslash then a real newline
        '\\"',  # backslash then quote
        "trailing\\",
        "\\\\n",
    )

    @pytest.mark.parametrize("value", VALUES)
    def test_round_trips_through_exposition(self, value):
        registry = MetricsRegistry()
        registry.counter("fdeta_roundtrip_total", labels=("tag",)).inc(
            tag=value
        )
        parsed = parse_prometheus(registry.to_prometheus())
        ((labels, count),) = parsed["fdeta_roundtrip_total"]
        assert labels["tag"] == value
        assert count == 1.0

    def test_distinct_tricky_values_stay_distinct(self):
        # "a\nb" (newline) and "a\\nb" (backslash-n) must not collide
        # after an escape/unescape cycle.
        registry = MetricsRegistry()
        counter = registry.counter(
            "fdeta_roundtrip_total", labels=("tag",)
        )
        counter.inc(tag="a\nb")
        counter.inc(2, tag="a\\nb")
        parsed = parse_prometheus(registry.to_prometheus())
        by_tag = {
            labels["tag"]: value
            for labels, value in parsed["fdeta_roundtrip_total"]
        }
        assert by_tag == {"a\nb": 1.0, "a\\nb": 2.0}


class TestSnapshotMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("k",)).inc(2, k="x")
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(0.5, 1.0)).observe(0.4)
        return registry

    def test_from_snapshot_reconstructs(self):
        original = self._populated()
        clone = MetricsRegistry.from_snapshot(original.snapshot())
        assert clone.to_prometheus() == original.to_prometheus()

    def test_counters_and_histograms_add(self):
        a = self._populated()
        b = self._populated()
        a.merge(b)
        assert a.counter("c_total", labels=("k",)).value(k="x") == 4.0
        assert a.histogram("h", buckets=(0.5, 1.0)).count() == 2

    def test_gauges_take_last_write(self):
        a = self._populated()
        b = MetricsRegistry()
        b.gauge("g").set(1)
        a.merge(b)
        assert a.gauge("g").value() == 1.0

    def test_merge_into_empty_equals_source(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.totals() == source.totals()

    def test_totals_exclude_latency_sums(self):
        registry = self._populated()
        names = {name for name, _labels in registry.totals()}
        assert names == {"c_total", "h_count"}

    def test_snapshot_is_json_safe(self):
        import json

        snapshot = self._populated().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestGlobalRegistry:
    def test_use_registry_swaps_and_restores(self):
        before = global_registry()
        mine = MetricsRegistry()
        with use_registry(mine) as active:
            assert active is mine
            assert global_registry() is mine
            global_registry().counter("scoped_total").inc()
        assert global_registry() is before
        assert mine.counter("scoped_total").value() == 1.0

    def test_use_registry_restores_on_error(self):
        before = global_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert global_registry() is before

    def test_set_global_registry_returns_previous(self):
        before = global_registry()
        mine = MetricsRegistry()
        try:
            assert set_global_registry(mine) is before
            assert global_registry() is mine
        finally:
            set_global_registry(before)
