"""Tests for the CUSUM streaming detector."""

import numpy as np
import pytest

from repro.detectors.cusum import CusumDetector
from repro.errors import ConfigurationError, NotFittedError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def fitted(train_matrix):
    return CusumDetector(drift=0.5, threshold=40.0).fit(train_matrix)


class TestCusum:
    def test_normal_week_quiet(self, fitted, paper_dataset):
        cid = paper_dataset.consumers()[0]
        week = paper_dataset.test_matrix(cid)[0]
        state = fitted.run(week)
        # A normal week may drift but should not blow far past h.
        assert state.upper < 10 * fitted.threshold

    def test_sustained_over_report_alarms(self, fitted, train_matrix):
        profile = fitted.profile
        week = profile.mean + 3.0 * np.maximum(profile.std, 0.05)
        result = fitted.score_week(np.maximum(week, 0.0))
        assert result.flagged

    def test_sustained_under_report_alarms(self, fitted):
        week = np.zeros(SLOTS_PER_WEEK)
        result = fitted.score_week(week)
        assert result.flagged

    def test_alarm_slot_recorded(self, fitted):
        state = fitted.run(np.zeros(SLOTS_PER_WEEK))
        assert state.first_alarm_slot is not None
        assert 1 <= state.first_alarm_slot <= SLOTS_PER_WEEK

    def test_earlier_alarm_for_stronger_shift(self, fitted, train_matrix):
        profile = fitted.profile
        strong = np.maximum(profile.mean * 4.0, 0.0)
        weak = np.maximum(profile.mean * 2.0, 0.0)
        strong_state = fitted.run(strong)
        weak_state = fitted.run(weak)
        if strong_state.first_alarm_slot and weak_state.first_alarm_slot:
            assert (
                strong_state.first_alarm_slot <= weak_state.first_alarm_slot
            )

    def test_higher_threshold_fewer_alarms(self, train_matrix):
        lax = CusumDetector(drift=0.5, threshold=500.0).fit(train_matrix)
        profile = lax.profile
        week = np.maximum(profile.mean * 1.5, 0.0)
        strict = CusumDetector(drift=0.5, threshold=5.0).fit(train_matrix)
        assert strict.score_week(week).score == lax.score_week(week).score
        assert strict.flags(week) or not lax.flags(week)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CusumDetector(drift=-0.1)
        with pytest.raises(ConfigurationError):
            CusumDetector(threshold=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CusumDetector().profile
