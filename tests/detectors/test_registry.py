"""Tests for the detector registry."""

import pytest

from repro.core.kld import KLDDetector
from repro.detectors.registry import (
    available_detectors,
    create_detector,
    register_detector,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_builtins_registered(self):
        names = available_detectors()
        for expected in (
            "arima",
            "integrated_arima",
            "kld",
            "conditional_kld",
            "min_average",
            "pca",
            "cusum",
            "holt_winters",
        ):
            assert expected in names

    def test_create_kld_with_kwargs(self):
        detector = create_detector("kld", significance=0.10)
        assert isinstance(detector, KLDDetector)
        assert detector.significance == 0.10

    def test_create_is_case_insensitive(self):
        assert isinstance(create_detector("KLD"), KLDDetector)

    def test_created_detectors_are_fresh(self, train_matrix):
        a = create_detector("kld")
        b = create_detector("kld")
        assert a is not b
        a.fit(train_matrix)
        # b remains unfit.
        from repro.errors import NotFittedError

        with pytest.raises(NotFittedError):
            b.threshold

    def test_conditional_kld_gets_default_tariff(self, train_matrix):
        detector = create_detector("conditional_kld", significance=0.05)
        detector.fit(train_matrix)
        assert len(detector.price_levels) == 2

    def test_every_builtin_constructs_and_fits(self, train_matrix):
        for name in available_detectors():
            detector = create_detector(name)
            detector.fit(train_matrix)
            assert detector.score_week(train_matrix[0]) is not None

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            create_detector("nonexistent")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_detector("kld", KLDDetector)

    def test_custom_registration(self, train_matrix):
        register_detector("custom_kld_test_only", lambda: KLDDetector(bins=6))
        detector = create_detector("custom_kld_test_only")
        detector.fit(train_matrix)
        assert detector.bins == 6
