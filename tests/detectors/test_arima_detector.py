"""Unit tests for the ARIMA band detector."""

import numpy as np
import pytest

from repro.detectors.arima_detector import ARIMADetector
from repro.errors import ConfigurationError, ModelError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def fitted(train_matrix):
    return ARIMADetector(max_violations=16).fit(train_matrix)


class TestBand:
    def test_band_shapes(self, fitted):
        lower, upper = fitted.confidence_band()
        assert lower.shape == (SLOTS_PER_WEEK,)
        assert np.all(lower <= upper)

    def test_lower_clipped_at_zero(self, fitted):
        lower, _ = fitted.confidence_band()
        assert np.all(lower >= 0.0)

    def test_band_before_fit_raises(self):
        with pytest.raises(ModelError):
            ARIMADetector().confidence_band()

    def test_wider_z_widens_band(self, train_matrix):
        narrow = ARIMADetector(z=1.0).fit(train_matrix)
        wide = ARIMADetector(z=3.0).fit(train_matrix)
        _, narrow_hi = narrow.confidence_band()
        _, wide_hi = wide.confidence_band()
        assert np.all(wide_hi >= narrow_hi)


class TestScoring:
    def test_normal_week_not_flagged(self, fitted, paper_dataset):
        cid = paper_dataset.consumers()[0]
        week = paper_dataset.test_matrix(cid)[0]
        result = fitted.score_week(week)
        assert not result.flagged

    def test_band_hugging_attack_evades(self, fitted):
        _, upper = fitted.confidence_band()
        result = fitted.score_week(np.maximum(upper * 0.99, 0.0))
        assert not result.flagged

    def test_excursions_beyond_allowance_flagged(self, fitted):
        _, upper = fitted.confidence_band()
        week = np.maximum(upper, 0.0) + 1.0  # every slot outside
        result = fitted.score_week(week)
        assert result.flagged
        assert result.score == SLOTS_PER_WEEK

    def test_violation_allowance(self, train_matrix):
        detector = ARIMADetector(max_violations=5).fit(train_matrix)
        lower, upper = detector.confidence_band()
        week = (lower + upper) / 2.0  # fully inside the band
        assert not detector.score_week(week).flagged
        week[:5] = upper[:5] * 2 + 1.0  # exactly 5 violations
        assert not detector.score_week(week).flagged
        week[5] = upper[5] * 2 + 1.0  # sixth violation
        assert detector.score_week(week).flagged


class TestConfiguration:
    def test_rejects_bad_z(self):
        with pytest.raises(ConfigurationError):
            ARIMADetector(z=0.0)

    def test_rejects_short_window(self):
        with pytest.raises(ConfigurationError):
            ARIMADetector(fit_window=100)

    def test_rejects_negative_allowance(self):
        with pytest.raises(ConfigurationError):
            ARIMADetector(max_violations=-1)

    def test_constant_history_fallback(self):
        matrix = np.full((4, SLOTS_PER_WEEK), 1.0)
        detector = ARIMADetector().fit(matrix)
        lower, upper = detector.confidence_band()
        assert np.all(np.isfinite(upper))
