"""Tests for the PCA residual detector ([3], QEST 2015)."""

import numpy as np
import pytest

from repro.detectors.pca import PCADetector
from repro.errors import ConfigurationError, NotFittedError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def fitted(train_matrix):
    return PCADetector(significance=0.05).fit(train_matrix)


class TestSubspace:
    def test_components_shape(self, fitted):
        components = fitted.components
        assert components.ndim == 2
        assert components.shape[1] == SLOTS_PER_WEEK

    def test_components_orthonormal(self, fitted):
        c = fitted.components
        gram = c @ c.T
        assert np.allclose(gram, np.eye(c.shape[0]), atol=1e-8)

    def test_explicit_component_count(self, train_matrix):
        detector = PCADetector(n_components=3).fit(train_matrix)
        assert detector.components.shape[0] == 3

    def test_variance_target_grows_subspace(self, train_matrix):
        small = PCADetector(explained_variance=0.5).fit(train_matrix)
        large = PCADetector(explained_variance=0.99).fit(train_matrix)
        assert large.components.shape[0] >= small.components.shape[0]

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PCADetector().components
        with pytest.raises(NotFittedError):
            PCADetector().residual_of(np.ones(SLOTS_PER_WEEK))


class TestDetection:
    def test_training_weeks_mostly_pass(self, fitted, train_matrix):
        flags = [fitted.flags(week) for week in train_matrix]
        # Threshold is the 95th percentile of training residuals.
        assert np.mean(flags) <= 0.10

    def test_shape_breaking_week_flagged(self, fitted, train_matrix):
        """A week with the right level but the wrong diurnal shape has a
        large residual outside the learned subspace."""
        rng = np.random.default_rng(0)
        week = rng.permutation(train_matrix[0])
        assert fitted.residual_of(week) > fitted.residual_of(train_matrix[0])

    def test_scaled_week_flagged(self, fitted, train_matrix):
        assert fitted.flags(train_matrix[0] * 3.0)

    def test_residual_zero_in_subspace(self, fitted, train_matrix):
        """The training mean plus a principal direction has ~zero
        residual by construction."""
        mean = train_matrix.mean(axis=0)
        direction = fitted.components[0]
        week = np.maximum(mean + 0.1 * direction, 0.0)
        # Clipping at 0 may perturb slightly; residual stays tiny.
        assert fitted.residual_of(week) < fitted.threshold

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            PCADetector(n_components=0)
        with pytest.raises(ConfigurationError):
            PCADetector(explained_variance=0.0)
        with pytest.raises(ConfigurationError):
            PCADetector(significance=1.0)

    def test_detects_integrated_arima_attack(
        self, fitted, train_matrix, injection_context, rng
    ):
        """[3]'s detector also catches the bell-shaped injection —
        its shape lies outside the consumption subspace."""
        from repro.attacks.injection.integrated_arima import (
            IntegratedARIMAAttack,
        )

        vector = IntegratedARIMAAttack(direction="over").inject(
            injection_context, rng
        )
        detector = PCADetector(significance=0.05).fit(
            injection_context.train_matrix
        )
        assert detector.flags(vector.reported)
