"""Unit tests for the minimum-average threshold detector."""

import numpy as np
import pytest

from repro.detectors.threshold import MinimumAverageDetector
from repro.errors import ConfigurationError
from repro.timeseries.seasonal import SLOTS_PER_DAY, SLOTS_PER_WEEK


class TestMinimumAverage:
    def test_tau_learned_from_training(self, train_matrix):
        detector = MinimumAverageDetector(margin=1.0).fit(train_matrix)
        daily = train_matrix.reshape(-1, SLOTS_PER_DAY).mean(axis=1)
        assert detector.tau == pytest.approx(daily.min())

    def test_margin_scales_tau(self, train_matrix):
        strict = MinimumAverageDetector(margin=1.0).fit(train_matrix)
        loose = MinimumAverageDetector(margin=0.5).fit(train_matrix)
        assert loose.tau == pytest.approx(0.5 * strict.tau)

    def test_zero_report_flagged(self, train_matrix):
        detector = MinimumAverageDetector().fit(train_matrix)
        assert detector.flags(np.zeros(SLOTS_PER_WEEK))

    def test_training_weeks_pass(self, train_matrix):
        detector = MinimumAverageDetector(margin=0.9).fit(train_matrix)
        for week in train_matrix:
            assert not detector.flags(week)

    def test_bounds_theft_per_section_vi(self, train_matrix):
        """Section VI-A2: with tau > 0, an under-reporting attacker
        cannot report average consumption below tau without detection,
        so the theft is bounded by (typical - tau) per slot."""
        detector = MinimumAverageDetector(margin=1.0).fit(train_matrix)
        just_below = np.full(SLOTS_PER_WEEK, detector.tau * 0.99)
        just_above = np.full(SLOTS_PER_WEEK, detector.tau * 1.01)
        assert detector.flags(just_below)
        assert not detector.flags(just_above)

    def test_rejects_bad_margin(self):
        with pytest.raises(ConfigurationError):
            MinimumAverageDetector(margin=0.0)
        with pytest.raises(ConfigurationError):
            MinimumAverageDetector(margin=1.5)

    def test_tau_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            MinimumAverageDetector().tau
