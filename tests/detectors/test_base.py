"""Unit tests for the detector base class contract."""

import numpy as np
import pytest

from repro.detectors.base import DetectionResult, WeeklyDetector
from repro.errors import DataError, NotFittedError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class ConstantDetector(WeeklyDetector):
    """Minimal detector flagging weeks whose mean exceeds a threshold."""

    name = "constant"

    def _fit(self, train_matrix):
        self._limit = float(train_matrix.mean()) * 2.0

    def _score_week(self, week):
        mean = float(week.mean())
        return DetectionResult(
            flagged=mean > self._limit, score=mean, threshold=self._limit
        )


@pytest.fixture
def fitted(rng):
    matrix = rng.uniform(0.5, 1.5, size=(5, SLOTS_PER_WEEK))
    return ConstantDetector().fit(matrix)


class TestContract:
    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ConstantDetector().score_week(np.ones(SLOTS_PER_WEEK))

    def test_fit_returns_self(self, rng):
        detector = ConstantDetector()
        assert detector.fit(rng.uniform(size=(3, SLOTS_PER_WEEK))) is detector

    def test_flags_convenience(self, fitted):
        assert fitted.flags(np.full(SLOTS_PER_WEEK, 10.0))
        assert not fitted.flags(np.full(SLOTS_PER_WEEK, 1.0))

    def test_rejects_wrong_matrix_shape(self):
        with pytest.raises(DataError):
            ConstantDetector().fit(np.ones((3, 10)))

    def test_rejects_single_training_week(self):
        with pytest.raises(DataError):
            ConstantDetector().fit(np.ones((1, SLOTS_PER_WEEK)))

    def test_rejects_negative_training(self, rng):
        matrix = rng.uniform(size=(3, SLOTS_PER_WEEK))
        matrix[0, 0] = -1.0
        with pytest.raises(DataError):
            ConstantDetector().fit(matrix)

    def test_rejects_wrong_week_length(self, fitted):
        with pytest.raises(DataError):
            fitted.score_week(np.ones(100))

    def test_rejects_nan_week(self, fitted):
        week = np.ones(SLOTS_PER_WEEK)
        week[3] = np.nan
        with pytest.raises(DataError):
            fitted.score_week(week)

    def test_result_fields(self, fitted):
        result = fitted.score_week(np.ones(SLOTS_PER_WEEK))
        assert isinstance(result, DetectionResult)
        assert result.score == pytest.approx(1.0)
        assert result.threshold > 0


class TestPartialWeekContract:
    def test_detectors_opt_out_by_default(self, fitted):
        assert ConstantDetector.supports_partial_weeks is False
        week = np.ones(SLOTS_PER_WEEK)
        week[0] = np.nan
        with pytest.raises(DataError, match="cannot score partial weeks"):
            fitted.score_partial_week(week)

    def test_full_week_delegates_to_score_week(self, fitted):
        """With no gaps the partial path must agree with the normal one,
        even for detectors that don't support degraded mode."""
        week = np.full(SLOTS_PER_WEEK, 1.2)
        assert fitted.score_partial_week(week) == fitted.score_week(week)

    def test_partial_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ConstantDetector().score_partial_week(np.ones(SLOTS_PER_WEEK))

    def test_rejects_fully_missing_week(self, fitted):
        with pytest.raises(DataError, match="no observed"):
            fitted.score_partial_week(np.full(SLOTS_PER_WEEK, np.nan))

    def test_rejects_invalid_observed_values(self, fitted):
        week = np.ones(SLOTS_PER_WEEK)
        week[0] = np.nan
        week[1] = -1.0
        with pytest.raises(DataError, match=">= 0"):
            fitted.score_partial_week(week)

    def test_opt_in_without_override_is_an_error(self, rng):
        class BrokenDetector(ConstantDetector):
            supports_partial_weeks = True

        detector = BrokenDetector().fit(
            rng.uniform(0.5, 1.5, size=(3, SLOTS_PER_WEEK))
        )
        week = np.ones(SLOTS_PER_WEEK)
        week[5] = np.nan
        with pytest.raises(NotImplementedError):
            detector.score_partial_week(week)
