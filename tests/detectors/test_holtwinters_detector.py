"""Tests for the Holt-Winters seasonal band detector."""

import numpy as np
import pytest

from repro.detectors.arima_detector import ARIMADetector
from repro.detectors.holtwinters_detector import HoltWintersDetector
from repro.errors import ConfigurationError, ModelError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def fitted(train_matrix):
    return HoltWintersDetector().fit(train_matrix)


class TestSeasonalBand:
    def test_band_shapes(self, fitted):
        lower, upper = fitted.confidence_band()
        assert lower.shape == (SLOTS_PER_WEEK,)
        assert np.all(lower <= upper)
        assert np.all(lower >= 0)

    def test_band_unfitted_raises(self):
        with pytest.raises(ModelError):
            HoltWintersDetector().confidence_band()

    def test_band_follows_diurnal_shape(self, fitted, train_matrix):
        """The seasonal band's centre should correlate with the weekly
        profile, unlike a flat ARMA band."""
        lower, upper = fitted.confidence_band()
        centre = (lower + upper) / 2.0
        profile = train_matrix.mean(axis=0)
        assert np.corrcoef(centre, profile)[0, 1] > 0.8

    def test_tighter_than_arima_band(self, train_matrix):
        hw = HoltWintersDetector().fit(train_matrix)
        arima = ARIMADetector(max_violations=16).fit(train_matrix)
        hw_lo, hw_hi = hw.confidence_band()
        ar_lo, ar_hi = arima.confidence_band()
        assert (hw_hi - hw_lo).mean() < (ar_hi - ar_lo).mean()


class TestDetection:
    def test_normal_week_mostly_quiet(self, fitted, paper_dataset):
        cid = paper_dataset.consumers()[0]
        flagged = sum(
            fitted.flags(week) for week in paper_dataset.test_matrix(cid)[:5]
        )
        assert flagged <= 2

    def test_catches_arima_band_hugging_attack(
        self, fitted, injection_context, rng
    ):
        """The attack pinned to the wide ARIMA band sails far above the
        tight seasonal band — the ablation's headline point."""
        from repro.attacks.injection.arima_attack import ARIMAAttack

        vector = ARIMAAttack(direction="over").inject(injection_context, rng)
        detector = HoltWintersDetector().fit(injection_context.train_matrix)
        assert detector.flags(vector.reported)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            HoltWintersDetector(z=0.0)
        with pytest.raises(ConfigurationError):
            HoltWintersDetector(max_violations=-1)
