"""Round-trip contract for every registered detector.

Each detector in :mod:`repro.detectors.registry` must: train on a
realistic matrix, score a week, survive a checkpoint-style pickle
round-trip bit-identically (proven by :meth:`WeeklyDetector.fingerprint`),
and produce NaN-free output on a week containing gaps — via degraded
scoring when the detector supports partial weeks, via boundary
interpolation otherwise.
"""

import math
import pickle

import numpy as np
import pytest

from repro.data.preprocessing import interpolate_gaps
from repro.detectors.registry import available_detectors, create_detector
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def train(paper_dataset):
    return paper_dataset.train_matrix(paper_dataset.consumers()[0])


@pytest.fixture(scope="module")
def probe_week(paper_dataset):
    return paper_dataset.test_matrix(paper_dataset.consumers()[0])[0]


@pytest.fixture(scope="module")
def gappy_week(probe_week):
    week = probe_week.copy()
    week[40:56] = np.nan  # an 8-hour head-end outage
    week[200] = np.nan
    return week


def _fit(name, train):
    return create_detector(name).fit(train)


@pytest.mark.parametrize("name", available_detectors())
class TestRegistryRoundTrip:
    def test_all_builtins_are_listed(self, name):
        assert name in {
            "arima",
            "conditional_kld",
            "cusum",
            "holt_winters",
            "integrated_arima",
            "kld",
            "min_average",
            "pca",
        }

    def test_trains_and_scores_finite(self, name, train, probe_week):
        detector = _fit(name, train)
        result = detector.score_week(probe_week)
        assert math.isfinite(result.score)
        assert math.isfinite(result.threshold)
        assert isinstance(result.flagged, bool)

    def test_pickle_round_trip_is_bit_identical(self, name, train, probe_week):
        detector = _fit(name, train)
        clone = pickle.loads(
            pickle.dumps(detector, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert clone.fingerprint() == detector.fingerprint()
        original = detector.score_week(probe_week)
        restored = clone.score_week(probe_week)
        assert restored.score == original.score
        assert restored.threshold == original.threshold
        assert restored.flagged == original.flagged

    def test_gappy_week_yields_nan_free_output(self, name, train, gappy_week):
        detector = _fit(name, train)
        if detector.supports_partial_weeks:
            result = detector.score_partial_week(gappy_week)
        else:
            repaired = interpolate_gaps(gappy_week, max_gap=16)
            assert np.isfinite(repaired).all()
            result = detector.score_week(repaired)
        assert math.isfinite(result.score)
        assert math.isfinite(result.threshold)

    def test_fingerprint_distinguishes_different_fits(self, name, train):
        a = _fit(name, train)
        b = create_detector(name).fit(train * 1.7)
        assert a.fingerprint() != b.fingerprint()
