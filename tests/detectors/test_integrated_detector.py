"""Unit tests for the Integrated ARIMA detector."""

import numpy as np
import pytest

from repro.detectors.arima_detector import ARIMADetector
from repro.detectors.integrated_arima import IntegratedARIMADetector
from repro.errors import ConfigurationError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def fitted(train_matrix):
    return IntegratedARIMADetector(
        arima=ARIMADetector(max_violations=16)
    ).fit(train_matrix)


class TestMomentChecks:
    def test_normal_week_passes(self, fitted, paper_dataset):
        cid = paper_dataset.consumers()[0]
        assert not fitted.flags(paper_dataset.test_matrix(cid)[0])

    def test_band_hugging_with_inflated_mean_caught(self, fitted, train_matrix):
        """The plain ARIMA attack (pinned at the upper band) trips the
        mean check — the very improvement [2] introduced."""
        _, upper = fitted.arima.confidence_band()
        attack = np.maximum(upper * 0.99, 0.0)
        result = fitted.score_week(attack)
        assert result.flagged
        assert "mean" in result.detail or "var" in result.detail

    def test_mean_range_from_training(self, fitted, train_matrix):
        means = train_matrix.mean(axis=1)
        lo, hi = fitted.mean_range
        assert lo <= means.min()
        assert hi >= means.max()

    def test_var_range_from_training(self, fitted, train_matrix):
        variances = train_matrix.var(axis=1)
        lo, hi = fitted.var_range
        assert lo <= variances.min()
        assert hi >= variances.max()

    def test_low_mean_week_caught(self, fitted):
        lo, _ = fitted.mean_range
        week = np.full(SLOTS_PER_WEEK, max(lo * 0.1, 0.0))
        assert fitted.flags(week)

    def test_slack_loosens_ranges(self, train_matrix):
        tight = IntegratedARIMADetector(
            arima=ARIMADetector(max_violations=16), slack=0.0
        ).fit(train_matrix)
        loose = IntegratedARIMADetector(
            arima=ARIMADetector(max_violations=16), slack=0.2
        ).fit(train_matrix)
        assert loose.mean_range[0] < tight.mean_range[0]
        assert loose.mean_range[1] > tight.mean_range[1]


class TestIntegration:
    def test_integrated_attack_evades(self, fitted, train_matrix, rng):
        """Section VIII-B1: the Integrated ARIMA attack circumvents the
        Integrated ARIMA detector by construction."""
        from repro.attacks.injection.base import InjectionContext
        from repro.attacks.injection.integrated_arima import (
            IntegratedARIMAAttack,
        )

        lower, upper = fitted.arima.confidence_band()
        context = InjectionContext(
            train_matrix=train_matrix,
            actual_week=train_matrix[-1],
            band_lower=lower,
            band_upper=upper,
        )
        vector = IntegratedARIMAAttack(direction="over").inject(context, rng)
        assert not fitted.flags(vector.reported)

    def test_shares_arima_instance(self, train_matrix):
        arima = ARIMADetector(max_violations=16).fit(train_matrix)
        integrated = IntegratedARIMADetector(arima=arima).fit(train_matrix)
        assert integrated.arima is arima

    def test_rejects_negative_slack(self):
        with pytest.raises(ConfigurationError):
            IntegratedARIMADetector(slack=-0.1)

    def test_ranges_before_fit_raise(self):
        detector = IntegratedARIMADetector()
        with pytest.raises(ConfigurationError):
            detector.mean_range
