"""Network fault grammar, each kind's semantics, and the ledger."""

import pytest

from repro.errors import (
    ConfigurationError,
    CorruptEnvelopeError,
    TransportTimeout,
    UnreachableShardError,
)
from repro.observability.metrics import MetricsRegistry
from repro.transport import (
    NETWORK_FAULT_KINDS,
    Envelope,
    FaultyTransport,
    NetworkFaultSchedule,
    ShardEndpoint,
)


def _env(request_id, shard="s1", kind="ingest", payload=None):
    return Envelope.seal(
        request_id=request_id, kind=kind, shard=shard, seq=0, payload=payload
    )


def _transport(spec, metrics=None):
    transport = FaultyTransport(NetworkFaultSchedule.parse(spec), metrics)
    endpoint = ShardEndpoint("s1")
    calls = []
    endpoint.bind({"ingest": lambda p: calls.append(p) or len(calls)})
    transport.register(endpoint)
    return transport, calls


class TestGrammar:
    def test_parse_round_trips_spec(self):
        schedule = NetworkFaultSchedule.parse(
            "shard-0001:ingest@3=drop, shard-*:*@40=partition"
        )
        assert [e.spec() for e in schedule.events] == [
            "shard-0001:ingest@3=drop",
            "shard-*:*@40=partition",
        ]

    @pytest.mark.parametrize(
        "bad",
        ["", "nonsense", "s1:ingest@x=drop", "s1@3=drop", "s1:ingest@3"],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            NetworkFaultSchedule.parse(bad)

    def test_unknown_kind_and_bad_occurrence_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown network fault"):
            NetworkFaultSchedule.parse("s1:ingest@3=explode")
        with pytest.raises(ConfigurationError, match="occurrence"):
            NetworkFaultSchedule.parse("s1:ingest@0=drop")

    def test_all_documented_kinds_parse(self):
        for kind in NETWORK_FAULT_KINDS:
            NetworkFaultSchedule.parse(f"s1:ingest@1={kind}")

    def test_glob_sites_and_wildcard_ops_match(self):
        schedule = NetworkFaultSchedule.parse("shard-*:*@2=drop")
        assert schedule.step("shard-0007", "heartbeat") is None
        assert schedule.step("shard-0007", "ingest").kind == "drop"

    def test_counters_shared_across_matching_sites(self):
        schedule = NetworkFaultSchedule.parse("s*:ingest@2=drop")
        assert schedule.step("s1", "ingest") is None
        assert schedule.step("s2", "ingest").kind == "drop"


class TestFaultKinds:
    def test_drop_raises_timeout_without_executing(self):
        transport, calls = _transport("s1:ingest@1=drop")
        with pytest.raises(TransportTimeout, match="dropped"):
            transport.call(_env("r1"))
        assert calls == []
        # The retry goes through clean.
        assert transport.call(_env("r1")).value == 1

    def test_delay_executes_but_loses_the_reply(self):
        transport, calls = _transport("s1:ingest@1=delay")
        with pytest.raises(TransportTimeout, match="lost in flight"):
            transport.call(_env("r1"))
        assert len(calls) == 1
        # The retry is absorbed from the reply cache: executed once.
        reply = transport.call(_env("r1"))
        assert reply.duplicate and reply.value == 1 and len(calls) == 1

    def test_dup_delivers_twice_second_absorbed(self):
        transport, calls = _transport("s1:ingest@1=dup")
        reply = transport.call(_env("r1"))
        assert reply.value == 1 and not reply.duplicate
        assert len(calls) == 1
        assert transport.endpoint("s1").duplicates == 1

    def test_reorder_holds_frame_then_flushes_in_order(self):
        transport, calls = _transport("s1:ingest@1=reorder")
        with pytest.raises(TransportTimeout, match="stalled"):
            transport.call(_env("r1", payload="first"))
        assert calls == []
        # The next frame flushes the held one ahead of itself.
        transport.call(_env("r2", payload="second"))
        assert calls == ["first", "second"]
        # The caller's retry of r1 lands as an absorbed duplicate.
        assert transport.call(_env("r1", payload="first")).duplicate

    def test_garble_corrupts_checksum_endpoint_nacks(self):
        transport, calls = _transport("s1:ingest@1=garble")
        with pytest.raises(CorruptEnvelopeError):
            transport.call(_env("r1"))
        assert calls == []
        assert transport.call(_env("r1")).value == 1

    def test_partition_severs_until_heal_event(self):
        transport, calls = _transport("s1:ingest@1=partition,s1:*@3=heal")
        with pytest.raises(UnreachableShardError):
            transport.call(_env("r1"))
        with pytest.raises(UnreachableShardError):
            transport.call(_env("r2"))
        assert not transport.reachable("s1")
        assert transport.severed == ("s1",)
        # Third attempt is the scheduled heal: it goes through.
        assert transport.call(_env("r3")).value == 1
        assert transport.reachable("s1")
        assert calls == [None]

    def test_counters_advance_while_severed(self):
        """Probes against a severed link still advance the schedule —
        that is what makes heal-at-occurrence-N deterministic."""
        transport, _ = _transport("s1:ingest@1=partition,s1:ingest@4=heal")
        for _ in range(3):
            with pytest.raises(UnreachableShardError):
                transport.call(_env("rX"))
        assert transport.call(_env("r4")).value == 1

    def test_manual_partition_and_heal_all(self):
        transport, calls = _transport("s1:ingest@99=drop")
        transport.partition("s1")
        with pytest.raises(UnreachableShardError):
            transport.call(_env("r1"))
        transport.heal_all()
        assert transport.call(_env("r1")).value == 1


class TestLedger:
    def test_every_injection_recorded(self):
        transport, _ = _transport("s1:ingest@1=drop,s1:ingest@2=delay")
        with pytest.raises(TransportTimeout):
            transport.call(_env("r1"))
        with pytest.raises(TransportTimeout):
            transport.call(_env("r1"))
        schedule = transport.schedule
        assert schedule.injected == 2
        assert [e["kind"] for e in schedule.ledger] == ["drop", "delay"]
        assert schedule.exhausted
        payload = schedule.to_dict()
        assert payload["injected"] == 2
        assert all(e["fired"] for e in payload["events"])

    def test_metrics_counter_labelled_by_kind_and_op(self):
        metrics = MetricsRegistry()
        transport, _ = _transport("s1:ingest@1=drop", metrics)
        with pytest.raises(TransportTimeout):
            transport.call(_env("r1"))
        counter = metrics.counter(
            "fdeta_transport_faults_injected_total",
            "Network faults injected by the chaos schedule.",
            labels=("kind", "op"),
        )
        assert counter.value(kind="drop", op="ingest") == 1
