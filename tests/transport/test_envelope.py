"""Envelope identity, checksums, and the garble helper."""

from repro.transport import Envelope, Reply, payload_fingerprint


class TestFingerprint:
    def test_deterministic_for_equal_payloads(self):
        a = payload_fingerprint({"cycle": 3, "reported": {"c1": 1.5}})
        b = payload_fingerprint({"cycle": 3, "reported": {"c1": 1.5}})
        assert a == b

    def test_distinguishes_payloads(self):
        assert payload_fingerprint({"cycle": 3}) != payload_fingerprint(
            {"cycle": 4}
        )

    def test_none_payload_supported(self):
        assert payload_fingerprint(None) == payload_fingerprint(None)


class TestEnvelope:
    def test_seal_stamps_matching_checksum(self):
        env = Envelope.seal(
            request_id="s:ingest:0",
            kind="ingest",
            shard="s",
            seq=0,
            payload={"cycle": 0},
        )
        assert env.verify()

    def test_garbled_copy_fails_verify_but_original_passes(self):
        env = Envelope.seal(
            request_id="s:ingest:0", kind="ingest", shard="s", seq=0
        )
        bad = env.garbled()
        assert not bad.verify()
        assert env.verify()
        assert bad.request_id == env.request_id

    def test_attempt_not_part_of_identity(self):
        first = Envelope.seal(
            request_id="s:ingest:0", kind="ingest", shard="s", seq=0, attempt=0
        )
        retry = Envelope.seal(
            request_id="s:ingest:0", kind="ingest", shard="s", seq=0, attempt=1
        )
        assert first.request_id == retry.request_id
        assert first.checksum == retry.checksum


class TestReply:
    def test_defaults(self):
        reply = Reply(request_id="r")
        assert reply.value is None
        assert not reply.duplicate
