"""ShardEndpoint delivery ordering, duplicate absorption, and binding."""

import pytest

from repro.errors import (
    ConfigurationError,
    CorruptEnvelopeError,
    StaleLeaseError,
    TransportError,
)
from repro.transport import Envelope, InProcTransport, ShardEndpoint


def _env(request_id, kind="ingest", shard="s1", seq=0, payload=None, **kw):
    return Envelope.seal(
        request_id=request_id,
        kind=kind,
        shard=shard,
        seq=seq,
        payload=payload,
        **kw,
    )


def _counting_endpoint(shard="s1"):
    endpoint = ShardEndpoint(shard)
    calls = []
    endpoint.bind(
        {
            "ingest": lambda p: calls.append(p) or len(calls),
            "heartbeat": lambda p: "beat",
        }
    )
    return endpoint, calls


class TestDelivery:
    def test_executes_handler_and_caches_reply(self):
        endpoint, calls = _counting_endpoint()
        reply = endpoint.deliver(_env("r1", payload={"cycle": 0}))
        assert reply.value == 1 and not reply.duplicate
        assert calls == [{"cycle": 0}]

    def test_duplicate_request_id_absorbed_not_reexecuted(self):
        endpoint, calls = _counting_endpoint()
        first = endpoint.deliver(_env("r1"))
        again = endpoint.deliver(_env("r1"))
        assert again.duplicate and again.value == first.value
        assert len(calls) == 1
        assert endpoint.duplicates == 1

    def test_wrong_shard_rejected(self):
        endpoint, _ = _counting_endpoint("s1")
        with pytest.raises(TransportError, match="delivered to endpoint"):
            endpoint.deliver(_env("r1", shard="s2"))

    def test_corrupt_envelope_nacked_before_execution(self):
        endpoint, calls = _counting_endpoint()
        with pytest.raises(CorruptEnvelopeError):
            endpoint.deliver(_env("r1", payload={"cycle": 0}).garbled())
        assert calls == []
        # The NACKed id was never cached: a clean retry executes.
        reply = endpoint.deliver(_env("r1", payload={"cycle": 0}))
        assert not reply.duplicate and calls == [{"cycle": 0}]

    def test_unknown_kind_rejected(self):
        endpoint, _ = _counting_endpoint()
        with pytest.raises(TransportError, match="no handler bound"):
            endpoint.deliver(_env("r1", kind="nope"))

    def test_handler_exception_propagates_and_is_not_cached(self):
        endpoint = ShardEndpoint("s1")
        boom = {"armed": True}

        def handler(payload):
            if boom["armed"]:
                boom["armed"] = False
                raise RuntimeError("mid-flight crash")
            return "ok"

        endpoint.bind({"ingest": handler})
        with pytest.raises(RuntimeError):
            endpoint.deliver(_env("r1"))
        # The retry re-executes for real instead of replaying a cached
        # acknowledgement of a failed attempt.
        assert endpoint.deliver(_env("r1")).value == "ok"

    def test_reply_cache_is_bounded_fifo(self):
        endpoint = ShardEndpoint("s1", reply_cache_size=2)
        endpoint.bind({"ingest": lambda p: p})
        for i in range(3):
            endpoint.deliver(_env(f"r{i}", payload=i))
        # r0 was evicted: a replay of it re-executes (not a duplicate).
        assert not endpoint.deliver(_env("r0", payload=0)).duplicate
        assert endpoint.deliver(_env("r2", payload=2)).duplicate

    def test_cache_size_validated(self):
        with pytest.raises(ConfigurationError):
            ShardEndpoint("s1", reply_cache_size=0)


class TestBinding:
    def test_rebind_preserves_lease_and_reply_cache(self):
        endpoint, _ = _counting_endpoint()
        endpoint.acquire_lease("coordA", epoch=1, seq=0, ttl=4)
        endpoint.deliver(_env("r1", holder="coordA"))
        endpoint.bind({"ingest": lambda p: "successor"})
        assert endpoint.lease is not None
        assert endpoint.lease.holder == "coordA"
        # A retried pre-rebind request is still absorbed as a duplicate.
        assert endpoint.deliver(_env("r1", holder="coordA")).duplicate

    def test_lease_checked_before_reply_cache(self):
        """A zombie must not consume a cached ack of a successor write."""
        endpoint, _ = _counting_endpoint()
        endpoint.acquire_lease("coordB", epoch=2, seq=0, ttl=4)
        endpoint.deliver(_env("r1", holder="coordB"))
        with pytest.raises(StaleLeaseError):
            endpoint.deliver(_env("r1", holder="coordA"))

    def test_reads_bypass_the_lease(self):
        endpoint, _ = _counting_endpoint()
        endpoint.acquire_lease("coordB", epoch=2, seq=0, ttl=4)
        reply = endpoint.deliver(
            _env("hb1", kind="heartbeat", holder="coordA")
        )
        assert reply.value == "beat"


class TestTransportRegistry:
    def test_register_endpoint_and_call(self):
        transport = InProcTransport()
        endpoint, _ = _counting_endpoint()
        transport.register(endpoint)
        assert transport.shards == ("s1",)
        assert transport.call(_env("r1")).value == 1

    def test_unknown_endpoint_raises(self):
        transport = InProcTransport()
        with pytest.raises(TransportError, match="no endpoint registered"):
            transport.call(_env("r1"))
        assert transport.endpoint_or_none("s1") is None

    def test_unregister(self):
        transport = InProcTransport()
        endpoint, _ = _counting_endpoint()
        transport.register(endpoint)
        transport.unregister("s1")
        assert transport.shards == ()
