"""Lease semantics: grant rules, renewal, expiry, exactly-one-owner."""

import pytest

from repro.errors import ConfigurationError, StaleLeaseError, StaleWriterError
from repro.transport import Envelope, ShardEndpoint, ShardLease


def _write(holder, request_id, seq=0):
    return Envelope.seal(
        request_id=request_id,
        kind="ingest",
        shard="s1",
        seq=seq,
        holder=holder,
    )


class TestShardLease:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardLease(holder="", epoch=1, expires_seq=4, ttl=4)
        with pytest.raises(ConfigurationError):
            ShardLease(holder="c", epoch=1, expires_seq=4, ttl=0)

    def test_expiry_is_strictly_after_expires_seq(self):
        lease = ShardLease(holder="c", epoch=1, expires_seq=4, ttl=4)
        assert not lease.expired(4)
        assert lease.expired(5)

    def test_renew_never_moves_expiry_backwards(self):
        lease = ShardLease(holder="c", epoch=1, expires_seq=10, ttl=4)
        lease.renew(2)
        assert lease.expires_seq == 10
        lease.renew(9)
        assert lease.expires_seq == 13

    def test_stale_lease_is_a_stale_writer(self):
        # Existing fencing defenses (except StaleWriterError) catch the
        # wire-level refusal too.
        assert issubclass(StaleLeaseError, StaleWriterError)


class TestAcquisition:
    def test_first_acquire_granted(self):
        endpoint = ShardEndpoint("s1")
        lease = endpoint.acquire_lease("coordA", epoch=1, seq=0, ttl=4)
        assert lease.holder == "coordA" and lease.expires_seq == 4

    def test_holder_reacquire_keeps_highest_epoch(self):
        endpoint = ShardEndpoint("s1")
        endpoint.acquire_lease("coordA", epoch=3, seq=0, ttl=4)
        lease = endpoint.acquire_lease("coordA", epoch=1, seq=2, ttl=4)
        assert lease.epoch == 3 and lease.expires_seq == 6

    def test_higher_epoch_takes_over(self):
        endpoint = ShardEndpoint("s1")
        endpoint.acquire_lease("coordA", epoch=1, seq=0, ttl=4)
        lease = endpoint.acquire_lease("coordB", epoch=2, seq=1, ttl=4)
        assert lease.holder == "coordB"

    def test_equal_or_lower_epoch_refused_while_fresh(self):
        endpoint = ShardEndpoint("s1")
        endpoint.acquire_lease("coordA", epoch=2, seq=0, ttl=4)
        with pytest.raises(StaleLeaseError):
            endpoint.acquire_lease("coordB", epoch=2, seq=1, ttl=4)
        with pytest.raises(StaleLeaseError):
            endpoint.acquire_lease("coordB", epoch=1, seq=1, ttl=4)

    def test_expired_lease_claimable_at_any_epoch(self):
        endpoint = ShardEndpoint("s1")
        endpoint.acquire_lease("coordA", epoch=5, seq=0, ttl=2)
        # coordA went silent past seq 2; coordB may claim with epoch 1.
        lease = endpoint.acquire_lease("coordB", epoch=1, seq=3, ttl=2)
        assert lease.holder == "coordB"


class TestWriteFencing:
    def test_holder_write_renews(self):
        endpoint = ShardEndpoint("s1")
        endpoint.bind({"ingest": lambda p: "ok"})
        endpoint.acquire_lease("coordA", epoch=1, seq=0, ttl=4)
        endpoint.deliver(_write("coordA", "r1", seq=6))
        assert endpoint.lease.expires_seq == 10

    def test_non_holder_write_always_refused(self):
        """Ownership changes only through lease.acquire, never as a
        side effect of a write — the exactly-one-owner invariant."""
        endpoint = ShardEndpoint("s1")
        endpoint.bind({"ingest": lambda p: "ok"})
        endpoint.acquire_lease("coordA", epoch=1, seq=0, ttl=2)
        # Even far past expiry the write is refused: the usurper must
        # acquire first, so ownership transfer is always explicit.
        with pytest.raises(StaleLeaseError):
            endpoint.deliver(_write("coordB", "r1", seq=50))

    def test_leaseless_endpoint_accepts_writes(self):
        endpoint = ShardEndpoint("s1")
        endpoint.bind({"ingest": lambda p: "ok"})
        assert endpoint.deliver(_write("anyone", "r1")).value == "ok"
