"""ShardClient retry discipline and the shared RetryPolicy plumbing."""

import pytest

from repro.errors import (
    ConfigurationError,
    StaleLeaseError,
    TransportTimeout,
    UnreachableShardError,
)
from repro.observability.metrics import MetricsRegistry
from repro.resilience.retry import RetryPolicy, retry_call
from repro.transport import (
    FaultyTransport,
    InProcTransport,
    NetworkFaultSchedule,
    ShardClient,
    ShardEndpoint,
)


def _fixture(spec=None, metrics=None, policy=None):
    if spec is None:
        transport = InProcTransport()
    else:
        transport = FaultyTransport(NetworkFaultSchedule.parse(spec))
    endpoint = ShardEndpoint("s1")
    calls = []
    endpoint.bind({"ingest": lambda p: calls.append(p) or len(calls)})
    transport.register(endpoint)
    client = ShardClient(
        transport, "s1", holder="coord", policy=policy, metrics=metrics
    )
    return client, calls


class TestRetryPolicy:
    def test_jitter_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_without_jitter_equals_attempt_cost(self):
        policy = RetryPolicy(backoff_base=2.0)
        assert policy.backoff(3) == policy.attempt_cost(3)

    def test_jittered_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=2.0, jitter=0.25)
        base = policy.attempt_cost(3)
        a = policy.backoff(3, key="s1:ingest")
        assert a == policy.backoff(3, key="s1:ingest")
        assert base * 0.75 <= a <= base * 1.25
        # Different keys decorrelate (the thundering-herd defence).
        assert a != policy.backoff(3, key="s2:ingest")

    def test_retry_call_bounds_attempts(self):
        attempts = []

        def operation():
            attempts.append(1)
            raise TransportTimeout("always")

        with pytest.raises(TransportTimeout):
            retry_call(
                operation,
                policy=RetryPolicy(max_attempts=3),
                retryable=TransportTimeout,
            )
        assert len(attempts) == 3

    def test_retry_call_sleeps_backoff_per_attempt(self):
        slept = []
        calls = {"n": 0}

        def operation():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransportTimeout("flaky")
            return "ok"

        policy = RetryPolicy(max_attempts=4, backoff_base=2.0)
        out = retry_call(
            operation,
            policy=policy,
            retryable=TransportTimeout,
            label="op",
            sleep=slept.append,
        )
        assert out == "ok"
        assert slept == [policy.backoff(1, key="op"), policy.backoff(2, key="op")]

    def test_non_retryable_propagates_immediately(self):
        def operation():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(
                operation,
                policy=RetryPolicy(max_attempts=5),
                retryable=TransportTimeout,
            )


class TestShardClient:
    def test_default_request_id_is_shard_kind_seq(self):
        client, _ = _fixture()
        reply = client.call("ingest", {"cycle": 7}, seq=7)
        assert reply.request_id == "s1:ingest:7"

    def test_timeouts_retried_transparently(self):
        client, calls = _fixture("s1:ingest@1=drop,s1:ingest@3=garble")
        assert client.call("ingest", "a", seq=0).value == 1
        assert client.call("ingest", "b", seq=1).value == 2
        assert calls == ["a", "b"]

    def test_delay_retry_absorbed_once(self):
        metrics = MetricsRegistry()
        client, calls = _fixture("s1:ingest@1=delay", metrics=metrics)
        reply = client.call("ingest", "a", seq=0)
        assert reply.duplicate and calls == ["a"]
        absorbed = metrics.counter(
            "fdeta_transport_duplicates_absorbed_total",
            "Retries answered from the endpoint reply cache.",
            labels=("kind",),
        )
        assert absorbed.value(kind="ingest") == 1

    def test_retries_exhausted_raises_last_timeout(self):
        client, calls = _fixture(
            "s1:ingest@1=drop,s1:ingest@2=drop,s1:ingest@3=drop",
            policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(TransportTimeout):
            client.call("ingest", "a", seq=0)
        assert calls == []

    def test_unreachable_not_retried(self):
        metrics = MetricsRegistry()
        client, calls = _fixture("s1:*@1=partition", metrics=metrics)
        with pytest.raises(UnreachableShardError):
            client.call("ingest", "a", seq=0)
        # One schedule step consumed: the client made exactly one attempt.
        assert client.transport.schedule.events[0].seen == 1
        unreachable = metrics.counter(
            "fdeta_transport_unreachable_total",
            "Calls that found the shard's link severed.",
            labels=("shard",),
        )
        assert unreachable.value(shard="s1") == 1

    def test_stale_lease_not_retried(self):
        client, _ = _fixture()
        endpoint = client.transport.endpoint("s1")
        endpoint.acquire_lease("other", epoch=9, seq=0, ttl=8)
        with pytest.raises(StaleLeaseError):
            client.call("ingest", "a", seq=0)

    def test_acquire_lease_returns_granted_lease(self):
        client, _ = _fixture()
        lease = client.acquire_lease(epoch=2, seq=3, ttl=5)
        assert lease.holder == "coord"
        assert lease.epoch == 2 and lease.expires_seq == 8

    def test_request_counters(self):
        metrics = MetricsRegistry()
        client, _ = _fixture("s1:ingest@1=drop", metrics=metrics)
        client.call("ingest", "a", seq=0)
        requests = metrics.counter(
            "fdeta_transport_requests_total",
            "Logical transport requests issued by the coordinator.",
            labels=("kind",),
        )
        retries = metrics.counter(
            "fdeta_transport_retries_total",
            "Transport requests retried after timeout or corruption.",
            labels=("kind",),
        )
        assert requests.value(kind="ingest") == 1
        assert retries.value(kind="ingest") == 1
