"""Unit tests for pricing schemes."""

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing.schemes import (
    ELECTRIC_IRELAND_NIGHTSAVER,
    FlatRatePricing,
    RealTimePricing,
    TimeOfUsePricing,
)
from repro.timeseries.seasonal import SLOTS_PER_DAY, SLOTS_PER_WEEK


class TestFlatRate:
    def test_constant_price(self):
        scheme = FlatRatePricing(rate=0.2)
        assert scheme.price(0) == 0.2
        assert scheme.price(10_000) == 0.2
        assert not scheme.is_variable

    def test_price_vector(self):
        vec = FlatRatePricing(rate=0.3).price_vector(5)
        assert np.allclose(vec, 0.3)

    def test_rejects_negative_rate(self):
        with pytest.raises(PricingError):
            FlatRatePricing(rate=-0.1)

    def test_rejects_negative_time(self):
        with pytest.raises(PricingError):
            FlatRatePricing().price(-1)


class TestTimeOfUse:
    def test_nightsaver_rates(self):
        """The Section VIII-C tariff: 0.21 peak / 0.18 off-peak."""
        tariff = ELECTRIC_IRELAND_NIGHTSAVER
        assert tariff.price(0) == 0.18  # midnight: off-peak
        assert tariff.price(17) == 0.18  # 8:30am: off-peak
        assert tariff.price(18) == 0.21  # 9:00am: peak starts
        assert tariff.price(47) == 0.21  # 11:30pm: peak

    def test_peak_window_daily_periodic(self):
        tariff = TimeOfUsePricing()
        assert tariff.is_peak(18)
        assert tariff.is_peak(18 + SLOTS_PER_DAY)
        assert not tariff.is_peak(SLOTS_PER_DAY)  # next midnight

    def test_peak_mask_week(self):
        mask = TimeOfUsePricing().peak_mask(SLOTS_PER_WEEK)
        assert mask.sum() == 7 * 30  # 15 peak hours per day
        assert mask.size == SLOTS_PER_WEEK

    def test_is_variable(self):
        assert TimeOfUsePricing().is_variable

    def test_custom_window(self):
        tariff = TimeOfUsePricing(peak_start_slot=10, peak_end_slot=20)
        assert not tariff.is_peak(9)
        assert tariff.is_peak(10)
        assert not tariff.is_peak(20)

    def test_rejects_bad_window(self):
        with pytest.raises(PricingError):
            TimeOfUsePricing(peak_start_slot=30, peak_end_slot=10)
        with pytest.raises(PricingError):
            TimeOfUsePricing(peak_start_slot=0, peak_end_slot=100)

    def test_rejects_negative_rates(self):
        with pytest.raises(PricingError):
            TimeOfUsePricing(peak_rate=-0.1)


class TestRealTime:
    def test_series_lookup_with_update_period(self):
        scheme = RealTimePricing(prices=np.array([0.1, 0.2]), update_period=3)
        assert scheme.price(0) == 0.1
        assert scheme.price(2) == 0.1
        assert scheme.price(3) == 0.2

    def test_beyond_horizon_raises(self):
        scheme = RealTimePricing(prices=np.array([0.1]), update_period=2)
        with pytest.raises(PricingError):
            scheme.price(2)

    def test_simulate_covers_horizon(self):
        scheme = RealTimePricing.simulate(n_slots=100, update_period=4, seed=1)
        vec = scheme.price_vector(100)
        assert vec.size == 100
        assert np.all(vec > 0)

    def test_simulate_mean_reverting(self):
        scheme = RealTimePricing.simulate(
            n_slots=5000, mean=0.25, volatility=0.01, seed=2
        )
        assert scheme.price_vector(5000).mean() == pytest.approx(0.25, abs=0.05)

    def test_simulate_deterministic(self):
        a = RealTimePricing.simulate(n_slots=50, seed=3).prices
        b = RealTimePricing.simulate(n_slots=50, seed=3).prices
        assert np.array_equal(a, b)

    def test_rejects_empty_series(self):
        with pytest.raises(PricingError):
            RealTimePricing(prices=np.array([]))

    def test_rejects_negative_prices(self):
        with pytest.raises(PricingError):
            RealTimePricing(prices=np.array([-0.1]))

    def test_is_variable(self):
        assert RealTimePricing(prices=np.array([0.1])).is_variable
