"""Tests for the real-time market simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PricingError
from repro.pricing.market import (
    Generator,
    RealTimeMarket,
    default_market,
)


@pytest.fixture
def market():
    return RealTimeMarket(
        generators=[
            Generator("base", capacity_kw=100.0, marginal_cost=0.10),
            Generator("mid", capacity_kw=50.0, marginal_cost=0.20),
            Generator("peak", capacity_kw=30.0, marginal_cost=0.40),
        ],
        demand_elasticity=-0.2,
        reference_price=0.20,
    )


class TestCurves:
    def test_supply_steps(self, market):
        assert market.supply_at(0.05) == 0.0
        assert market.supply_at(0.10) == 100.0
        assert market.supply_at(0.25) == 150.0
        assert market.supply_at(1.00) == 180.0

    def test_demand_decreasing_in_price(self, market):
        d_low = market.demand_at(100.0, 0.10)
        d_high = market.demand_at(100.0, 0.40)
        assert d_low > d_high

    def test_demand_at_reference_is_baseline(self, market):
        assert market.demand_at(120.0, 0.20) == pytest.approx(120.0)


class TestClearing:
    def test_low_demand_clears_on_baseload(self, market):
        result = market.clear(50.0)
        assert result.marginal_generator == "base"
        assert result.price == pytest.approx(0.10)

    def test_medium_demand_climbs_merit_order(self, market):
        result = market.clear(130.0)
        assert result.marginal_generator == "mid"
        assert result.price == pytest.approx(0.20)

    def test_high_demand_reaches_peaker(self, market):
        result = market.clear(170.0)
        assert result.marginal_generator == "peak"
        assert result.price == pytest.approx(0.40)

    def test_scarcity_pricing(self, market):
        """Demand beyond total capacity: price rises along the demand
        curve until consumption falls to capacity."""
        result = market.clear(500.0)
        assert result.cleared_kw == pytest.approx(180.0)
        assert result.price > 0.40
        # The cleared quantity is consistent with the demand curve.
        assert market.demand_at(500.0, result.price) == pytest.approx(
            180.0, rel=1e-6
        )

    def test_price_monotone_in_demand(self, market):
        prices = [market.clear(b).price for b in (20, 80, 130, 170, 400)]
        assert all(a <= b + 1e-12 for a, b in zip(prices, prices[1:]))

    def test_zero_demand(self, market):
        result = market.clear(0.0)
        assert result.cleared_kw == 0.0

    def test_rejects_negative_demand(self, market):
        with pytest.raises(ConfigurationError):
            market.clear(-1.0)


class TestSimulation:
    def test_price_series_follows_demand_profile(self, market):
        profile = np.array([50.0, 130.0, 170.0, 50.0])
        pricing = market.simulate_prices(profile)
        assert pricing.price(0) == pytest.approx(0.10)
        assert pricing.price(1) == pytest.approx(0.20)
        assert pricing.price(2) == pytest.approx(0.40)
        assert pricing.price(3) == pytest.approx(0.10)

    def test_update_period_expansion(self, market):
        pricing = market.simulate_prices(np.array([50.0, 170.0]), update_period=3)
        assert pricing.price(2) == pricing.price(0)
        assert pricing.price(3) != pricing.price(0)

    def test_default_market_sane(self):
        market = default_market(peak_demand_kw=1000.0)
        result = market.clear(500.0)
        assert 0.05 < result.price < 0.50

    def test_rejects_empty_profile(self, market):
        with pytest.raises(ConfigurationError):
            market.simulate_prices(np.array([]))


class TestValidation:
    def test_rejects_empty_stack(self):
        with pytest.raises(ConfigurationError):
            RealTimeMarket(generators=[])

    def test_rejects_positive_elasticity(self):
        with pytest.raises(ConfigurationError):
            RealTimeMarket(
                generators=[Generator("g", 10.0, 0.1)],
                demand_elasticity=0.5,
            )

    def test_rejects_bad_generator(self):
        with pytest.raises(ConfigurationError):
            Generator("g", capacity_kw=0.0, marginal_cost=0.1)
        with pytest.raises(ConfigurationError):
            Generator("g", capacity_kw=10.0, marginal_cost=-0.1)

    def test_rejects_bad_price_queries(self, market):
        with pytest.raises(PricingError):
            market.supply_at(-0.1)
        with pytest.raises(PricingError):
            market.demand_at(10.0, 0.0)
