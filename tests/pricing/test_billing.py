"""Unit tests for billing arithmetic (eqs 1, 2, 10, 11)."""

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing.billing import (
    attacker_profit,
    bill,
    is_successful_theft,
    neighbour_loss,
    perceived_benefit,
    stolen_energy_kwh,
)
from repro.pricing.schemes import FlatRatePricing, TimeOfUsePricing


class TestBill:
    def test_flat_rate_arithmetic(self):
        # 2 kW for 4 half-hours at 0.2 $/kWh -> 2 * 0.5 * 4 * 0.2 = 0.8 $.
        assert bill(np.full(4, 2.0), FlatRatePricing(0.2)) == pytest.approx(0.8)

    def test_explicit_price_array(self):
        demands = np.array([1.0, 1.0])
        prices = np.array([0.1, 0.3])
        assert bill(demands, prices) == pytest.approx(0.5 * 0.4)

    def test_tou_peak_offpeak_split(self):
        tariff = TimeOfUsePricing()
        # Slot 0 (off-peak) and slot 18 (peak) via the start offset.
        off = bill(np.array([1.0]), tariff, start=0)
        peak = bill(np.array([1.0]), tariff, start=18)
        assert off == pytest.approx(0.09)
        assert peak == pytest.approx(0.105)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(PricingError):
            bill(np.ones(3), np.ones(2))

    def test_rejects_negative_demand(self):
        with pytest.raises(PricingError):
            bill(np.array([-1.0]), FlatRatePricing())

    def test_rejects_bad_dt(self):
        with pytest.raises(PricingError):
            bill(np.ones(2), FlatRatePricing(), dt_hours=0.0)


class TestAttackerProfit:
    def test_eq1_under_reporting_profits(self):
        actual = np.array([2.0, 2.0])
        reported = np.array([1.0, 1.0])
        profit = attacker_profit(actual, reported, FlatRatePricing(0.2))
        assert profit == pytest.approx(0.2)
        assert is_successful_theft(actual, reported, FlatRatePricing(0.2))

    def test_honest_reporting_no_profit(self):
        actual = np.array([2.0, 2.0])
        assert attacker_profit(actual, actual, FlatRatePricing()) == 0.0
        assert not is_successful_theft(actual, actual, FlatRatePricing())

    def test_load_shift_profit_under_tou(self):
        """Attack Class 3A: swap readings between price periods; the
        energy balance is zero but the money balance is not."""
        tariff = TimeOfUsePricing()
        actual = np.zeros(48)
        actual[0] = 1.0  # off-peak actual
        actual[20] = 5.0  # peak actual
        reported = np.zeros(48)
        reported[0] = 5.0  # big reading moved to off-peak
        reported[20] = 1.0
        assert stolen_energy_kwh(actual, reported) == pytest.approx(0.0)
        profit = attacker_profit(actual, reported, tariff)
        expected = 0.5 * 4.0 * (0.21 - 0.18)
        assert profit == pytest.approx(expected)

    def test_over_reporting_is_negative_profit(self):
        actual = np.array([1.0])
        reported = np.array([3.0])
        assert attacker_profit(actual, reported, FlatRatePricing(0.2)) < 0


class TestNeighbourLoss:
    def test_eq10(self):
        actual = np.array([1.0, 1.0])
        reported = np.array([2.0, 3.0])
        loss = neighbour_loss(actual, reported, FlatRatePricing(0.2))
        assert loss == pytest.approx(0.5 * 0.2 * 3.0)

    def test_loss_is_attacker_gain(self):
        """Conservation: what the neighbour overpays equals what Mallory
        gains (alpha = sum of L_n, Section VI-B)."""
        actual = np.array([1.0, 2.0])
        reported = np.array([2.5, 2.5])
        tariff = TimeOfUsePricing()
        loss = neighbour_loss(actual, reported, tariff)
        gain = -attacker_profit(actual, reported, tariff)
        assert loss == pytest.approx(gain)


class TestPerceivedBenefit:
    def test_eq11_positive_illusion(self):
        """A 4B victim billed at the true (lower) price than his forged
        ADR price believes he benefited."""
        reported = np.array([2.0, 2.0])
        true_prices = np.array([0.2, 0.2])
        forged = np.array([0.3, 0.3])
        delta_b = perceived_benefit(reported, true_prices, forged)
        assert delta_b == pytest.approx(0.5 * 2.0 * 0.1 * 2)
        assert delta_b > 0

    def test_uncompromised_neighbour_sees_zero(self):
        reported = np.array([2.0])
        prices = np.array([0.2])
        assert perceived_benefit(reported, prices, prices) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(PricingError):
            perceived_benefit(np.ones(2), np.ones(2) * 0.2, np.ones(3) * 0.3)
