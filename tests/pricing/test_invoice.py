"""Tests for billing cycles and invoices."""

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing.billing import bill
from repro.pricing.invoice import (
    bill_cycle,
    make_invoice,
)
from repro.pricing.schemes import FlatRatePricing, TimeOfUsePricing
from repro.timeseries.seasonal import SLOTS_PER_WEEK


class TestInvoice:
    def test_line_items_split_by_price(self):
        tariff = TimeOfUsePricing()
        week = np.ones(SLOTS_PER_WEEK)
        invoice = make_invoice("c1", week, tariff)
        assert set(invoice.line_items) == {0.18, 0.21}
        # 18 off-peak + 30 peak half-hours per day.
        assert invoice.line_items[0.18] == pytest.approx(7 * 18 * 0.5)
        assert invoice.line_items[0.21] == pytest.approx(7 * 30 * 0.5)

    def test_total_matches_billing_function(self, rng):
        tariff = TimeOfUsePricing()
        week = rng.uniform(0, 3, size=SLOTS_PER_WEEK)
        invoice = make_invoice("c1", week, tariff)
        assert invoice.total == pytest.approx(bill(week, tariff))

    def test_service_fee_added(self):
        invoice = make_invoice(
            "c1", np.ones(4), FlatRatePricing(0.2)
        ).with_service_fee(1.5)
        assert invoice.total == pytest.approx(invoice.energy_charge + 1.5)

    def test_rejects_negative_fee(self):
        invoice = make_invoice("c1", np.ones(4), FlatRatePricing(0.2))
        with pytest.raises(PricingError):
            invoice.with_service_fee(-1.0)

    def test_rejects_negative_readings(self):
        with pytest.raises(PricingError):
            make_invoice("c1", np.array([-1.0]), FlatRatePricing())


class TestBillCycle:
    def _population(self, rng, theft_kw=0.0):
        actual = {
            "honest": rng.uniform(0.5, 1.5, size=SLOTS_PER_WEEK),
            "mallory": rng.uniform(0.5, 1.5, size=SLOTS_PER_WEEK),
        }
        reported = {cid: week.copy() for cid, week in actual.items()}
        if theft_kw:
            actual["mallory"] = actual["mallory"] + theft_kw  # consumes more
        return reported, actual

    def test_honest_cycle_balances(self, rng):
        reported, actual = self._population(rng)
        result = bill_cycle(reported, actual)
        assert result.unaccounted_kwh == pytest.approx(0.0)
        assert result.revenue > 0

    def test_theft_shows_as_unaccounted_energy(self, rng):
        reported, actual = self._population(rng, theft_kw=2.0)
        result = bill_cycle(reported, actual)
        assert result.unaccounted_kwh == pytest.approx(
            2.0 * SLOTS_PER_WEEK * 0.5
        )

    def test_utility_absorbs_loss_by_default(self, rng):
        reported, actual = self._population(rng, theft_kw=2.0)
        result = bill_cycle(reported, actual)
        for invoice in result.invoices.values():
            assert invoice.service_fee == 0.0

    def test_socialised_losses_become_service_fees(self, rng):
        """Section VI-A: the theft is 'jointly paid as service fees by
        all the consumers' — including the honest one."""
        reported, actual = self._population(rng, theft_kw=2.0)
        result = bill_cycle(
            reported, actual, socialise_losses=True, loss_recovery_rate=0.2
        )
        fees = [inv.service_fee for inv in result.invoices.values()]
        assert all(fee > 0 for fee in fees)
        assert sum(fees) == pytest.approx(result.unaccounted_kwh * 0.2)

    def test_fees_proportional_to_billed_energy(self, rng):
        reported, actual = self._population(rng, theft_kw=1.0)
        reported["honest"] = reported["honest"] * 2.0  # bigger consumer
        actual["honest"] = actual["honest"] * 2.0
        result = bill_cycle(reported, actual, socialise_losses=True)
        fee_ratio = (
            result.invoices["honest"].service_fee
            / result.invoices["mallory"].service_fee
        )
        energy_ratio = (
            result.invoices["honest"].energy_kwh
            / result.invoices["mallory"].energy_kwh
        )
        assert fee_ratio == pytest.approx(energy_ratio)

    def test_rejects_mismatched_populations(self, rng):
        with pytest.raises(PricingError):
            bill_cycle(
                {"a": np.ones(4)}, {"b": np.ones(4)}, FlatRatePricing()
            )

    def test_rejects_empty_population(self):
        with pytest.raises(PricingError):
            bill_cycle({}, {})
