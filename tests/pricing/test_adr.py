"""Unit tests for ADR and the Consumer Own Elasticity model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PricingError
from repro.pricing.adr import ADRInterface, ElasticConsumer


class TestElasticConsumer:
    def test_demand_at_reference_price_is_baseline(self):
        consumer = ElasticConsumer(elasticity=-0.5, reference_price=0.2)
        assert consumer.demand(3.0, 0.2) == pytest.approx(3.0)

    def test_demand_monotonically_decreasing_in_price(self):
        """The paper's requirement: consumption is a monotonically
        decreasing function of price."""
        consumer = ElasticConsumer(elasticity=-0.3)
        prices = np.linspace(0.05, 1.0, 50)
        demands = [consumer.demand(2.0, p) for p in prices]
        assert all(a > b for a, b in zip(demands, demands[1:]))

    def test_constant_elasticity_property(self):
        consumer = ElasticConsumer(elasticity=-0.5, reference_price=0.2)
        # Doubling the price scales demand by 2^-0.5.
        ratio = consumer.demand(1.0, 0.4) / consumer.demand(1.0, 0.2)
        assert ratio == pytest.approx(2.0 ** -0.5)

    def test_vectorised_matches_scalar(self, rng):
        consumer = ElasticConsumer()
        base = rng.uniform(0.5, 3.0, size=10)
        prices = rng.uniform(0.1, 0.5, size=10)
        vec = consumer.demand_vector(base, prices)
        scalars = [consumer.demand(b, p) for b, p in zip(base, prices)]
        assert np.allclose(vec, scalars)

    def test_rejects_positive_elasticity(self):
        with pytest.raises(ConfigurationError):
            ElasticConsumer(elasticity=0.3)

    def test_rejects_zero_price(self):
        with pytest.raises(PricingError):
            ElasticConsumer().demand(1.0, 0.0)

    def test_rejects_negative_baseline(self):
        with pytest.raises(ConfigurationError):
            ElasticConsumer().demand(-1.0, 0.2)


class TestADRInterface:
    def test_honest_interface_passes_price_through(self):
        adr = ADRInterface(consumer=ElasticConsumer())
        assert adr.seen_price(0.25) == 0.25
        assert not adr.is_compromised

    def test_compromise_inflates_price(self):
        adr = ADRInterface(consumer=ElasticConsumer())
        adr.compromise(1.5)
        assert adr.seen_price(0.2) == pytest.approx(0.3)
        assert adr.is_compromised

    def test_compromise_suppresses_demand(self):
        """The 4B mechanism: inflated price -> ADR sheds load."""
        adr = ADRInterface(consumer=ElasticConsumer(elasticity=-0.5))
        honest = adr.respond(2.0, 0.2)
        adr.compromise(2.0)
        suppressed = adr.respond(2.0, 0.2)
        assert suppressed < honest

    def test_restore(self):
        adr = ADRInterface(consumer=ElasticConsumer())
        adr.compromise(2.0)
        adr.restore()
        assert not adr.is_compromised

    def test_respond_vector(self, rng):
        adr = ADRInterface(consumer=ElasticConsumer())
        base = rng.uniform(0.5, 2.0, size=8)
        prices = rng.uniform(0.15, 0.3, size=8)
        honest = adr.respond_vector(base, prices)
        adr.compromise(1.5)
        suppressed = adr.respond_vector(base, prices)
        assert np.all(suppressed < honest)

    def test_rejects_bad_multiplier(self):
        adr = ADRInterface(consumer=ElasticConsumer())
        with pytest.raises(PricingError):
            adr.compromise(0.0)
