"""Checkpoint scrub-and-repair: corruption found, repaired, verdicts kept."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.durability.recovery import DurableTheftMonitor, recover_monitor
from repro.durability.wal import WriteAheadLog
from repro.errors import CheckpointError, ScrubError
from repro.observability.metrics import MetricsRegistry
from repro.quarantine import FirewallPolicy, ReadingFirewall
from repro.resilience.checkpoint import (
    load_checkpoint,
    previous_generation_path,
    save_checkpoint,
    verify_checkpoint,
)
from repro.resilience.config import ResilienceConfig
from repro.storage.scrub import CheckpointScrubber
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("c1", "c2", "c3")
WEEKS = 3


def _factory():
    return KLDDetector(significance=0.05)


def _service():
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=2,
        retrain_every_weeks=4,
        resilience=ResilienceConfig(),
        population=CONSUMERS,
        firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
    )


def _readings(t):
    rng = np.random.default_rng((23, t))
    return {cid: float(rng.gamma(2.0, 0.5)) for cid in CONSUMERS}


def _signature(service):
    return [
        (r.week_index, tuple(a.consumer_id for a in r.alerts))
        for r in service.reports
    ]


def _run_durable(tmp_path, generations=2, weeks=WEEKS, segment_bytes=1 << 20):
    """Run ``weeks`` through a durable monitor; returns (ckpt, wal_dir)."""
    ckpt = str(tmp_path / "service.ckpt")
    wal_dir = str(tmp_path / "wal")
    monitor = DurableTheftMonitor(
        _service(),
        WriteAheadLog(wal_dir, segment_max_bytes=segment_bytes),
        checkpoint_path=ckpt,
        checkpoint_generations=generations,
    )
    for t in range(weeks * SLOTS_PER_WEEK):
        monitor.ingest_cycle(_readings(t))
    monitor.close()
    return ckpt, wal_dir


def _corrupt(path, offset_fraction=0.4):
    size = os.path.getsize(path)
    offset = int(size * offset_fraction)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes((byte[0] ^ 0xFF,)))


def _baseline_signature(weeks=WEEKS):
    service = _service()
    for t in range(weeks * SLOTS_PER_WEEK):
        service.ingest_cycle(_readings(t))
    return _signature(service)


class TestVerifyCheckpoint:
    def test_sealed_checkpoint_verifies_ok(self, tmp_path):
        ckpt, _ = _run_durable(tmp_path)
        assert verify_checkpoint(ckpt) == "ok"
        assert verify_checkpoint(previous_generation_path(ckpt)) == "ok"

    def test_missing_and_corrupt_statuses(self, tmp_path):
        assert verify_checkpoint(str(tmp_path / "absent")) == "missing"
        ckpt, _ = _run_durable(tmp_path)
        _corrupt(ckpt)
        assert verify_checkpoint(ckpt) == "corrupt"

    def test_load_refuses_a_corrupt_checkpoint(self, tmp_path):
        ckpt, _ = _run_durable(tmp_path)
        _corrupt(ckpt)
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(ckpt, _factory)

    def test_previous_generation_survives_each_save(self, tmp_path):
        ckpt = str(tmp_path / "s.ckpt")
        service = _service()
        for t in range(SLOTS_PER_WEEK):
            service.ingest_cycle(_readings(t))
        save_checkpoint(service, ckpt)
        first = Path(ckpt).read_bytes()
        for t in range(SLOTS_PER_WEEK, 2 * SLOTS_PER_WEEK):
            service.ingest_cycle(_readings(t))
        save_checkpoint(service, ckpt)
        previous = Path(previous_generation_path(ckpt)).read_bytes()
        assert previous == first


class TestScrubClean:
    def test_clean_generations_report_ok(self, tmp_path):
        ckpt, wal_dir = _run_durable(tmp_path)
        metrics = MetricsRegistry()
        report = CheckpointScrubber(
            ckpt, wal_dir, detector_factory=_factory, metrics=metrics
        ).scrub()
        assert report.ok
        assert report.checked == 2
        assert report.corrupt == 0
        totals = metrics.totals()
        assert totals[("fdeta_storage_scrubs_total", ())] == 1.0
        assert (
            "fdeta_storage_checkpoint_corruptions_total",
            (),
        ) not in totals


class TestScrubRepair:
    def test_corrupt_current_is_rebuilt_with_identical_verdicts(
        self, tmp_path
    ):
        ckpt, wal_dir = _run_durable(tmp_path)
        _corrupt(ckpt)
        metrics = MetricsRegistry()
        report = CheckpointScrubber(
            ckpt, wal_dir, detector_factory=_factory, metrics=metrics
        ).scrub()
        assert report.corrupt == 1 and report.repaired == 1
        assert verify_checkpoint(ckpt) == "ok"
        totals = metrics.totals()
        assert totals[("fdeta_storage_checkpoint_repairs_total", ())] == 1.0
        # The repaired checkpoint plus WAL recovers the exact verdicts
        # an undisturbed run produced.
        result = recover_monitor(
            wal_dir,
            detector_factory=_factory,
            checkpoint_path=ckpt,
            service_factory=_service,
        )
        assert _signature(result.service) == _baseline_signature()

    def test_repair_without_previous_needs_service_factory(self, tmp_path):
        ckpt, wal_dir = _run_durable(tmp_path, generations=3)
        _corrupt(ckpt)
        os.unlink(previous_generation_path(ckpt))
        with pytest.raises(ScrubError, match="service_factory"):
            CheckpointScrubber(
                ckpt, wal_dir, detector_factory=_factory
            ).scrub()
        # With a factory the WAL alone rebuilds it (generations=3 kept
        # the full log, so the replay covers from cycle zero).
        report = CheckpointScrubber(
            ckpt,
            wal_dir,
            detector_factory=_factory,
            service_factory=_service,
        ).scrub()
        assert report.repaired == 1
        assert verify_checkpoint(ckpt) == "ok"

    def test_unrepairable_when_wal_does_not_cover_the_gap(self, tmp_path):
        # generations=1 compacts to the *current* checkpoint, so once it
        # corrupts, the previous generation plus the remaining WAL has a
        # hole — exactly the failure mode generations>=2 exists to stop.
        # Small segments force rotations so compaction actually drops
        # the covered cycles (one big active segment is never removed).
        ckpt, wal_dir = _run_durable(
            tmp_path, generations=1, segment_bytes=4096
        )
        _corrupt(ckpt)
        with pytest.raises(ScrubError, match="checkpoint_generations"):
            CheckpointScrubber(
                ckpt, wal_dir, detector_factory=_factory
            ).scrub()

    def test_scrub_without_repair_only_reports(self, tmp_path):
        ckpt, wal_dir = _run_durable(tmp_path)
        _corrupt(ckpt)
        report = CheckpointScrubber(
            ckpt, wal_dir, detector_factory=_factory
        ).scrub(repair=False)
        assert report.corrupt == 1 and report.repaired == 0
        assert verify_checkpoint(ckpt) == "corrupt"
