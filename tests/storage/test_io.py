"""The storage seam: typed errno triage, bounded retry, atomic writes."""

import errno
import json
import os

import pytest

from repro.errors import (
    ConfigurationError,
    DiskFullError,
    StorageError,
    TransientStorageError,
)
from repro.observability.metrics import MetricsRegistry
from repro.resilience.retry import RetryPolicy
from repro.storage import (
    FaultSchedule,
    FaultyIO,
    StorageIO,
    atomic_write_bytes,
    atomic_write_json,
    classify_storage_error,
    current_io,
    install_io,
    retry_io,
)


class TestStorageIO:
    def test_roundtrip_write_fsync_replace(self, tmp_path):
        io = StorageIO()
        tmp = str(tmp_path / "x.tmp")
        target = str(tmp_path / "x")
        handle = io.open(tmp, "wb", site="test")
        try:
            assert io.write(handle, b"payload", site="test") == len(b"payload")
            io.fsync(handle, site="test")
        finally:
            handle.close()
        io.replace(tmp, target, site="test")
        io.fsync_dir(str(tmp_path), site="test")
        with open(target, "rb") as check:
            assert check.read() == b"payload"

    def test_fsync_dir_tolerates_missing_platform_support(self, tmp_path):
        # Must never raise for a plain directory, whatever the platform.
        StorageIO().fsync_dir(str(tmp_path), site="test")


class TestInstallCurrent:
    def test_default_is_plain_storage_io(self):
        assert type(current_io()) is StorageIO

    def test_install_swaps_and_restores(self):
        faulty = FaultyIO(FaultSchedule.parse("never:open@1=eio"))
        install_io(faulty)
        try:
            assert current_io() is faulty
        finally:
            install_io(StorageIO())
        assert type(current_io()) is StorageIO


class TestClassify:
    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EDQUOT])
    def test_disk_full_errnos(self, code):
        exc = classify_storage_error(OSError(code, "full"), site="wal.append")
        assert isinstance(exc, DiskFullError)
        assert "wal.append" in str(exc)

    @pytest.mark.parametrize(
        "code", [errno.EIO, errno.EAGAIN, errno.EINTR]
    )
    def test_transient_errnos(self, code):
        exc = classify_storage_error(OSError(code, "io"), site="checkpoint")
        assert isinstance(exc, TransientStorageError)

    def test_unknown_errno_is_plain_storage_error(self):
        exc = classify_storage_error(
            OSError(errno.EPERM, "denied"), site="manifest"
        )
        assert isinstance(exc, StorageError)
        assert not isinstance(exc, (DiskFullError, TransientStorageError))

    def test_chains_the_original_oserror(self):
        original = OSError(errno.ENOSPC, "full")
        exc = classify_storage_error(original, site="s")
        assert exc.__cause__ is original


class TestRetryIO:
    def test_transient_failures_are_retried_to_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "blip")
            return "done"

        waits = []
        metrics = MetricsRegistry()
        result = retry_io(
            flaky,
            policy=RetryPolicy(max_attempts=4),
            site="wal.sync",
            metrics=metrics,
            sleep=waits.append,
        )
        assert result == "done"
        assert len(calls) == 3
        assert len(waits) == 2
        totals = metrics.totals()
        assert totals[("fdeta_storage_retries_total", ("wal.sync",))] == 2.0

    def test_exhausted_budget_raises_typed_error(self):
        def always():
            raise OSError(errno.EIO, "dead disk")

        with pytest.raises(TransientStorageError):
            retry_io(
                always,
                policy=RetryPolicy(max_attempts=3),
                site="wal.append",
                sleep=lambda _: None,
            )

    def test_total_attempts_equal_policy_budget(self):
        calls = []

        def always():
            calls.append(1)
            raise OSError(errno.EIO, "dead")

        with pytest.raises(TransientStorageError):
            retry_io(
                always,
                policy=RetryPolicy(max_attempts=3),
                site="s",
                sleep=lambda _: None,
            )
        assert len(calls) == 3

    def test_disk_full_is_never_retried(self):
        calls = []

        def full():
            calls.append(1)
            raise OSError(errno.ENOSPC, "full")

        with pytest.raises(DiskFullError):
            retry_io(
                full, policy=RetryPolicy(max_attempts=5), site="s"
            )
        assert len(calls) == 1


class TestAtomicWrite:
    def test_publishes_bytes_and_leaves_no_droppings(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"abc", site="test")
        assert target.read_bytes() == b"abc"
        assert list(tmp_path.iterdir()) == [target]

    def test_json_roundtrip_with_sorted_keys(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(
            target, {"b": 2, "a": 1}, site="test", sort_keys=True
        )
        text = target.read_text()
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_failed_write_raises_typed_and_cleans_tmp(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("survivor")
        io = FaultyIO(FaultSchedule.parse("test:write@1=enospc"))
        with pytest.raises(DiskFullError):
            atomic_write_bytes(target, b"new", site="test", io=io)
        # The old content survives and no temp file is left behind.
        assert target.read_text() == "survivor"
        assert not os.path.exists(f"{target}.tmp")

    def test_failed_replace_keeps_previous_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"v": 1}, site="test")
        io = FaultyIO(FaultSchedule.parse("test:replace@1=eio"))
        with pytest.raises(StorageError):
            atomic_write_json(target, {"v": 2}, site="test", io=io)
        assert json.loads(target.read_text()) == {"v": 1}


class TestFaultScheduleParse:
    def test_parses_multiple_events(self):
        schedule = FaultSchedule.parse(
            "wal.append:write@3=torn, checkpoint:replace@1=bitrot"
        )
        assert [e.spec() for e in schedule.events] == [
            "wal.append:write@3=torn",
            "checkpoint:replace@1=bitrot",
        ]

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "   ",
            "wal.append",
            "wal.append:write=torn",
            "wal.append:write@x=torn",
            "wal.append:write@3=made_up",
            "wal.append:poke@3=eio",
            "wal.append:write@0=eio",
        ],
    )
    def test_bad_specs_raise_configuration_error(self, spec):
        with pytest.raises(ConfigurationError):
            FaultSchedule.parse(spec)
