"""FaultyIO semantics: each fault kind lies exactly the way disks do."""

import errno

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.storage import FaultSchedule, FaultyIO


def _io(spec, metrics=None):
    return FaultyIO(FaultSchedule.parse(spec), metrics=metrics)


class TestScheduleStepping:
    def test_fires_on_exact_occurrence_and_only_once(self):
        schedule = FaultSchedule.parse("wal.append:write@3=eio")
        assert schedule.step("wal.append", "write") is None
        assert schedule.step("wal.append", "write") is None
        fired = schedule.step("wal.append", "write")
        assert fired is not None and fired.kind == "eio"
        assert schedule.step("wal.append", "write") is None
        assert schedule.exhausted

    def test_site_glob_and_op_wildcard(self):
        schedule = FaultSchedule.parse("export.*:*@2=enospc")
        assert schedule.step("export.health", "open") is None
        fired = schedule.step("export.slo", "write")
        assert fired is not None

    def test_other_sites_do_not_advance_the_counter(self):
        schedule = FaultSchedule.parse("checkpoint:write@1=eio")
        assert schedule.step("wal.append", "write") is None
        assert schedule.step("checkpoint", "fsync") is None
        assert schedule.step("checkpoint", "write") is not None

    def test_ledger_records_every_injection(self):
        schedule = FaultSchedule.parse("a:write@1=eio,b:write@1=torn")
        schedule.step("a", "write")
        schedule.step("b", "write")
        assert schedule.injected == 2
        assert [entry["kind"] for entry in schedule.ledger] == ["eio", "torn"]
        payload = schedule.to_dict()
        assert payload["injected"] == 2
        assert all(event["fired"] for event in payload["events"])


class TestFaultKinds:
    def test_enospc_on_open(self, tmp_path):
        io = _io("site:open@1=enospc")
        with pytest.raises(OSError) as excinfo:
            io.open(str(tmp_path / "f"), "wb", site="site")
        assert excinfo.value.errno == errno.ENOSPC

    def test_torn_write_lands_half_the_buffer(self, tmp_path):
        io = _io("site:write@1=torn")
        path = str(tmp_path / "f")
        handle = open(path, "wb")
        try:
            with pytest.raises(OSError) as excinfo:
                io.write(handle, b"0123456789", site="site")
            assert excinfo.value.errno == errno.EIO
            handle.flush()
        finally:
            handle.close()
        with open(path, "rb") as check:
            assert check.read() == b"01234"

    def test_bitrot_flips_one_byte_after_a_complete_write(self, tmp_path):
        io = _io("site:write@1=bitrot")
        path = str(tmp_path / "f")
        handle = open(path, "wb")
        try:
            io.write(handle, b"\x00" * 10, site="site")
        finally:
            handle.close()
        with open(path, "rb") as check:
            data = check.read()
        assert len(data) == 10
        assert data.count(b"\xff") == 1

    def test_torn_replace_truncates_the_destination(self, tmp_path):
        io = _io("site:replace@1=torn")
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        with open(src, "wb") as handle:
            handle.write(b"x" * 100)
        io.replace(src, dst, site="site")
        import os

        assert os.path.getsize(dst) == 50

    def test_metrics_count_injections(self, tmp_path):
        metrics = MetricsRegistry()
        io = _io("site:open@1=eio", metrics=metrics)
        with pytest.raises(OSError):
            io.open(str(tmp_path / "f"), "wb", site="site")
        totals = metrics.totals()
        assert (
            totals[("fdeta_storage_faults_injected_total", ("eio", "open"))]
            == 1.0
        )


class TestLyingFsync:
    def test_power_loss_truncates_to_last_true_sync(self, tmp_path):
        io = _io("site:fsync@2=lying_fsync")
        path = str(tmp_path / "f")
        handle = io.open(path, "wb", site="site")
        try:
            io.write(handle, b"durable", site="site")
            io.fsync(handle, site="site")  # real: 7 bytes on the platter
            io.write(handle, b"-volatile", site="site")
            io.fsync(handle, site="site")  # the lie: reports ok, syncs nothing
        finally:
            handle.close()
        with open(path, "rb") as check:
            assert check.read() == b"durable-volatile"
        truncated = io.simulate_power_loss()
        assert truncated == [(path, 7, 9)]
        with open(path, "rb") as check:
            assert check.read() == b"durable"

    def test_power_loss_is_a_noop_when_every_sync_was_honest(self, tmp_path):
        io = _io("other:fsync@1=lying_fsync")
        path = str(tmp_path / "f")
        handle = io.open(path, "wb", site="site")
        try:
            io.write(handle, b"data", site="site")
            io.fsync(handle, site="site")
        finally:
            handle.close()
        assert io.simulate_power_loss() == []

    def test_replace_transfers_the_synced_watermark(self, tmp_path):
        io = _io("other:fsync@1=lying_fsync")
        tmp, target = str(tmp_path / "t.tmp"), str(tmp_path / "t")
        handle = io.open(tmp, "wb", site="site")
        try:
            io.write(handle, b"abcdef", site="site")
            io.fsync(handle, site="site")
        finally:
            handle.close()
        io.replace(tmp, target, site="site")
        assert io.simulate_power_loss() == []
        with open(target, "rb") as check:
            assert check.read() == b"abcdef"
