"""Checkpoint + WAL reconciliation and crash-recovery equivalence."""

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.durability.crash import CrashingWAL, CrashPoint, SimulatedCrash
from repro.durability.recovery import DurableTheftMonitor, recover_monitor
from repro.durability.wal import WriteAheadLog
from repro.errors import ConfigurationError, RecoveryError
from repro.quarantine import FirewallPolicy, ReadingFirewall
from repro.resilience.config import ResilienceConfig
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("c1", "c2", "c3")


def _factory():
    return KLDDetector(significance=0.05)


def _service():
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=2,
        retrain_every_weeks=4,
        resilience=ResilienceConfig(),
        population=CONSUMERS,
        firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
    )


def _readings(t):
    """Deterministic per-cycle readings with sprinkled malformed values."""
    rng = np.random.default_rng((11, t))
    out = {cid: float(rng.gamma(2.0, 0.5)) for cid in CONSUMERS}
    if t % 97 == 0:
        out["c1"] = float("nan")
    if t % 113 == 0:
        out["c2"] = -1.0
    return out


def _alert_signature(service):
    return [
        (r.week_index, tuple(a.consumer_id for a in r.alerts))
        for r in service.reports
    ]


class TestRecoverMonitor:
    def test_fresh_service_required_without_checkpoint(self, tmp_path):
        with pytest.raises(ConfigurationError):
            recover_monitor(tmp_path / "wal")

    def test_checkpoint_requires_detector_factory(self, tmp_path):
        service = _service()
        ckpt = tmp_path / "ckpt.bin"
        service.checkpoint(ckpt)
        with pytest.raises(ConfigurationError):
            recover_monitor(tmp_path / "wal", checkpoint_path=ckpt)

    def test_replays_wal_into_fresh_service(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for t in range(10):
                wal.append_cycle(t, _readings(t))
            wal.sync()
        result = recover_monitor(tmp_path / "wal", service_factory=_service)
        assert not result.restored_from_checkpoint
        assert result.replayed_cycles == 10
        assert result.service.cycles_ingested == 10

    def test_skips_records_covered_by_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt.bin"
        service = _service()
        with WriteAheadLog(tmp_path / "wal") as wal:
            for t in range(8):
                readings = _readings(t)
                wal.append_cycle(t, readings)
                wal.sync()
                service.ingest_cycle(readings)
                if t == 4:
                    service.checkpoint(ckpt)
        result = recover_monitor(
            tmp_path / "wal",
            detector_factory=_factory,
            checkpoint_path=ckpt,
            service_factory=_service,
        )
        assert result.restored_from_checkpoint
        assert result.skipped_records == 5  # cycles 0..4 covered
        assert result.replayed_cycles == 3  # cycles 5..7 replayed
        assert result.service.cycles_ingested == 8

    def test_wal_gap_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(0, _readings(0))
            wal.append_cycle(2, _readings(2))  # cycle 1 lost
            wal.sync()
        with pytest.raises(RecoveryError):
            recover_monitor(tmp_path / "wal", service_factory=_service)


class TestDurableTheftMonitor:
    def test_sync_cadence_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            DurableTheftMonitor(
                _service(),
                WriteAheadLog(tmp_path / "wal"),
                sync_every_cycles=0,
            )

    def test_rejects_skipped_ahead_cycles(self, tmp_path):
        with DurableTheftMonitor(
            _service(), WriteAheadLog(tmp_path / "wal")
        ) as monitor:
            monitor.ingest_cycle(_readings(0))
            with pytest.raises(RecoveryError):
                monitor.ingest_cycle(_readings(5), cycle_index=5)

    def test_redelivered_cycle_is_idempotent(self, tmp_path):
        service = _service()
        with DurableTheftMonitor(
            service, WriteAheadLog(tmp_path / "wal")
        ) as monitor:
            clean = {cid: 1.0 for cid in CONSUMERS}
            monitor.ingest_cycle(clean)
            monitor.ingest_cycle(clean)
            before = {cid: service.store.length(cid) for cid in CONSUMERS}
            # Re-deliver cycle 0: absorbed, clock does not move.
            monitor.ingest_cycle(
                {cid: 2.0 for cid in CONSUMERS}, cycle_index=0
            )
            assert service.cycles_ingested == 2
            assert monitor.redelivered_cycles == 1
            for cid in CONSUMERS:
                assert service.store.length(cid) == before[cid]
                assert service.store.series(cid)[0] == 2.0  # last write wins

    def test_redelivery_ignores_garbage(self, tmp_path):
        service = _service()
        with DurableTheftMonitor(
            service, WriteAheadLog(tmp_path / "wal")
        ) as monitor:
            monitor.ingest_cycle({cid: 1.0 for cid in CONSUMERS})
            monitor.ingest_cycle(
                {"c1": float("nan"), "c2": -4.0, "c3": "junk"},
                cycle_index=0,
            )
            assert service.store.series("c1")[0] == 1.0
            assert service.store.series("c2")[0] == 1.0
            assert service.store.series("c3")[0] == 1.0

    def test_weekly_checkpoint_and_compaction(self, tmp_path):
        ckpt = tmp_path / "ckpt.bin"
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=4096)
        with DurableTheftMonitor(
            _service(), wal, checkpoint_path=ckpt
        ) as monitor:
            for t in range(SLOTS_PER_WEEK + 5):
                monitor.ingest_cycle(_readings(t))
            assert ckpt.exists()
            # Compaction ran at the week boundary: the oldest segments
            # (covered by the checkpoint) are gone.
            assert wal.segments()[0] != str(
                tmp_path / "wal" / "wal-00000001.seg"
            )


class TestCrashRecoveryEquivalence:
    """The acceptance criterion: crash + recover == never crashed."""

    WEEKS = 3

    def _baseline(self):
        service = _service()
        for t in range(self.WEEKS * SLOTS_PER_WEEK):
            service.ingest_cycle(_readings(t))
        return service

    def test_hard_crash_mid_week_recovers_equivalently(self, tmp_path):
        baseline = self._baseline()
        ckpt = tmp_path / "ckpt.bin"
        wal_dir = tmp_path / "wal"

        crash_at = SLOTS_PER_WEEK + 123  # mid-second-week
        service = _service()
        monitor = DurableTheftMonitor(
            service, WriteAheadLog(wal_dir), checkpoint_path=ckpt
        )
        for t in range(crash_at):
            monitor.ingest_cycle(_readings(t))
        del monitor  # hard kill: no close(), no final sync

        result = recover_monitor(
            wal_dir,
            detector_factory=_factory,
            checkpoint_path=ckpt,
            service_factory=_service,
        )
        recovered = result.service
        assert recovered.cycles_ingested == crash_at
        with DurableTheftMonitor(
            recovered, WriteAheadLog(wal_dir), checkpoint_path=ckpt
        ) as monitor:
            for t in range(recovered.cycles_ingested, self.WEEKS * SLOTS_PER_WEEK):
                monitor.ingest_cycle(_readings(t))

        assert recovered.weeks_completed == baseline.weeks_completed
        assert _alert_signature(recovered) == _alert_signature(baseline)
        assert (
            recovered.firewall.store.counts_by_reason()
            == baseline.firewall.store.counts_by_reason()
        )

    def test_torn_write_crash_recovers_equivalently(self, tmp_path):
        baseline = self._baseline()
        wal_dir = tmp_path / "wal"
        service = _service()
        wal = CrashingWAL(wal_dir, CrashPoint(at_byte=20_000))
        monitor = DurableTheftMonitor(service, wal)
        ingested = 0
        with pytest.raises(SimulatedCrash):
            for t in range(self.WEEKS * SLOTS_PER_WEEK):
                monitor.ingest_cycle(_readings(t))
                ingested += 1

        result = recover_monitor(wal_dir, service_factory=_service)
        recovered = result.service
        # Prefix consistency: nothing but the unsynced tail is lost.
        assert recovered.cycles_ingested >= ingested
        with DurableTheftMonitor(recovered, WriteAheadLog(wal_dir)) as m2:
            for t in range(
                recovered.cycles_ingested, self.WEEKS * SLOTS_PER_WEEK
            ):
                m2.ingest_cycle(_readings(t))
        assert _alert_signature(recovered) == _alert_signature(baseline)
