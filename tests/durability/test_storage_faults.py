"""Injected storage faults against the durable monitor and the WAL.

Every fault either retries to success, degrades to read-only, or rolls
back — never a raw :class:`OSError`, never a silently-lost reading.
"""

import os

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.durability.recovery import DurableTheftMonitor, recover_monitor
from repro.durability.wal import WriteAheadLog, list_segments, replay_wal
from repro.errors import (
    RecoveryError,
    StorageDegradedError,
    TransientStorageError,
    WALCorruptionError,
)
from repro.loadcontrol.queue import BackpressureSignal
from repro.observability.metrics import MetricsRegistry
from repro.quarantine import FirewallPolicy, ReadingFirewall
from repro.resilience.config import ResilienceConfig
from repro.resilience.retry import RetryPolicy
from repro.storage import FaultSchedule, FaultyIO
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("c1", "c2", "c3")
WEEKS = 3


def _factory():
    return KLDDetector(significance=0.05)


def _service(metrics=None):
    return TheftMonitoringService(
        detector_factory=_factory,
        min_training_weeks=2,
        retrain_every_weeks=4,
        resilience=ResilienceConfig(),
        population=CONSUMERS,
        metrics=metrics,
        firewall=ReadingFirewall(FirewallPolicy(max_reading_kwh=50.0)),
    )


def _readings(t):
    rng = np.random.default_rng((31, t))
    return {cid: float(rng.gamma(2.0, 0.5)) for cid in CONSUMERS}


def _signature(service):
    return [
        (r.week_index, tuple(a.consumer_id for a in r.alerts))
        for r in service.reports
    ]


def _baseline_signature(weeks=WEEKS):
    service = _service()
    for t in range(weeks * SLOTS_PER_WEEK):
        service.ingest_cycle(_readings(t))
    return _signature(service)


def _faulty(spec, metrics=None):
    return FaultyIO(FaultSchedule.parse(spec), metrics=metrics)


class TestTypedWALErrors:
    """Satellite: raw OSError from append/sync surfaces typed, not raw."""

    def test_transient_append_is_retried_to_success(self, tmp_path):
        metrics = MetricsRegistry()
        wal = WriteAheadLog(
            tmp_path / "wal",
            io=_faulty("wal.append:write@2=eio"),
            metrics=metrics,
        )
        wal.append_cycle(0, _readings(0))
        wal.close()
        records = list(replay_wal(tmp_path / "wal").cycles())
        assert [r.cycle for r in records] == [0]
        totals = metrics.totals()
        assert totals[("fdeta_storage_retries_total", ("wal.append",))] == 1.0

    def test_exhausted_append_budget_raises_typed_error(self, tmp_path):
        # Default RetryPolicy allows 2 attempts; two back-to-back EIO
        # injections exhaust it.  The caller must see the typed
        # hierarchy, never the raw OSError.
        wal = WriteAheadLog(
            tmp_path / "wal",
            io=_faulty("wal.append:write@2=eio,wal.append:write@3=eio"),
            retry=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(TransientStorageError):
            wal.append_cycle(0, _readings(0))
        # The failed append rolled back: a later append lands clean and
        # the log replays exactly one record for the cycle.
        wal.append_cycle(0, _readings(0))
        wal.close()
        records = list(replay_wal(tmp_path / "wal").cycles())
        assert [r.cycle for r in records] == [0]

    def test_torn_append_rolls_back_and_retry_lands_clean(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal", io=_faulty("wal.append:write@2=torn")
        )
        wal.append_cycle(0, _readings(0))
        wal.append_cycle(1, _readings(1))
        wal.close()
        replay = replay_wal(tmp_path / "wal")
        records = list(replay.cycles())
        assert [r.cycle for r in records] == [0, 1]
        assert records[0].readings == pytest.approx(_readings(0))
        assert not replay.torn_tail

    def test_sync_failure_is_typed_and_counted(self, tmp_path):
        metrics = MetricsRegistry()
        wal = WriteAheadLog(
            tmp_path / "wal",
            io=_faulty("wal.sync:fsync@1=eio,wal.sync:fsync@2=eio"),
            metrics=metrics,
            retry=RetryPolicy(max_attempts=2),
        )
        wal.append_cycle(0, _readings(0))
        with pytest.raises(TransientStorageError):
            wal.sync()
        totals = metrics.totals()
        assert (
            totals[("fdeta_storage_ops_total", ("wal.sync", "error"))] == 1.0
        )
        # The device recovers (no more scheduled faults): same WAL syncs.
        wal.sync()
        assert wal.last_synced_cycle == 0
        wal.close()


class TestDiskFullDegradedMode:
    def test_enospc_degrades_and_redelivery_converges(self, tmp_path):
        metrics = MetricsRegistry()
        signal = BackpressureSignal()
        service = _service(metrics=metrics)
        service.backpressure = signal
        monitor = DurableTheftMonitor(
            service,
            WriteAheadLog(
                tmp_path / "wal", io=_faulty("wal.append:write@400=enospc")
            ),
            checkpoint_path=str(tmp_path / "service.ckpt"),
            checkpoint_generations=2,
        )
        failed_at = None
        for t in range(WEEKS * SLOTS_PER_WEEK):
            try:
                monitor.ingest_cycle(_readings(t))
            except StorageDegradedError:
                failed_at = t
                break
        assert failed_at is not None
        # The rejected cycle was never acknowledged: the service clock
        # stopped exactly where the volume filled.
        assert monitor.read_only
        assert service.cycles_ingested == failed_at
        assert signal.engaged
        assert metrics.gauge("fdeta_storage_degraded").value() == 1.0
        totals = metrics.totals()
        assert totals[("fdeta_storage_degraded_entries_total", ())] == 1.0
        # While degraded, deliveries are rejected up front — no WAL
        # touch, no clock movement.
        with pytest.raises(StorageDegradedError, match="read-only"):
            monitor.ingest_cycle(_readings(failed_at))
        assert service.cycles_ingested == failed_at
        # Space frees (the schedule is exhausted); the probe is a real
        # durable write, and re-delivery from the failed cycle converges
        # on the undisturbed run's verdicts.
        assert monitor.try_resume()
        assert not monitor.read_only
        assert not signal.engaged
        assert metrics.gauge("fdeta_storage_degraded").value() == 0.0
        for t in range(failed_at, WEEKS * SLOTS_PER_WEEK):
            monitor.ingest_cycle(_readings(t))
        monitor.close()
        assert _signature(service) == _baseline_signature()

    def test_resume_fails_while_the_volume_is_still_full(self, tmp_path):
        service = _service()
        monitor = DurableTheftMonitor(
            service,
            WriteAheadLog(
                tmp_path / "wal",
                io=_faulty(
                    "wal.append:write@2=enospc,wal.sync:fsync@1=enospc"
                ),
            ),
        )
        with pytest.raises(StorageDegradedError):
            monitor.ingest_cycle(_readings(0))
        # The probe's fsync hits the still-full disk: stays read-only.
        assert not monitor.try_resume()
        assert monitor.read_only
        # Second probe finds space (schedule exhausted).
        assert monitor.try_resume()
        monitor.ingest_cycle(_readings(0))
        assert service.cycles_ingested == 1
        monitor.close()


class TestRecoveryDiagnostics:
    """Satellite: clear diagnostics for missing dirs and empty segments."""

    def test_missing_wal_dir_without_checkpoint_is_explicit(self, tmp_path):
        with pytest.raises(RecoveryError, match="does not exist"):
            recover_monitor(
                tmp_path / "never-created",
                detector_factory=_factory,
                service_factory=_service,
            )

    def test_zero_length_non_final_segment_is_corruption(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append_cycle(0, _readings(0))
        wal.close()
        first = list_segments(tmp_path / "wal")[0]
        seq = int(os.path.basename(first)[len("wal-") : -len(".seg")])
        hollow = os.path.join(
            os.fspath(tmp_path / "wal"), f"wal-{seq - 1:08d}.seg"
        )
        open(hollow, "wb").close()
        with pytest.raises(WALCorruptionError, match="zero-length"):
            replay_wal(tmp_path / "wal")

    def test_zero_length_final_segment_is_dropped_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append_cycle(0, _readings(0))
        wal.close()
        last = list_segments(tmp_path / "wal")[-1]
        seq = int(os.path.basename(last)[len("wal-") : -len(".seg")])
        hollow = os.path.join(
            os.fspath(tmp_path / "wal"), f"wal-{seq + 1:08d}.seg"
        )
        open(hollow, "wb").close()
        reopened = WriteAheadLog(tmp_path / "wal")
        reopened.append_cycle(1, _readings(1))
        reopened.close()
        assert not os.path.exists(hollow)
        records = list(replay_wal(tmp_path / "wal").cycles())
        assert [r.cycle for r in records] == [0, 1]
