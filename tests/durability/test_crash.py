"""Crash-point fault injection: torn writes and recovery from them."""

import pytest

from repro.durability.crash import CrashingWAL, CrashPoint, SimulatedCrash
from repro.durability.wal import WriteAheadLog, replay_wal
from repro.errors import ConfigurationError, FDetaError


def _fill(wal, n=100):
    for t in range(n):
        wal.append_cycle(t, {"c1": float(t)})
        wal.sync()


class TestCrashPoint:
    def test_needs_at_least_one_trigger(self):
        with pytest.raises(ConfigurationError):
            CrashPoint()

    def test_negative_offsets_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashPoint(at_byte=-1)
        with pytest.raises(ConfigurationError):
            CrashPoint(before_record=-1)

    def test_simulated_crash_is_not_a_library_error(self):
        # Production `except FDetaError` must never swallow the crash.
        assert not issubclass(SimulatedCrash, FDetaError)


class TestCrashingWAL:
    def test_crash_before_record(self, tmp_path):
        wal = CrashingWAL(tmp_path / "wal", CrashPoint(before_record=3))
        with pytest.raises(SimulatedCrash):
            _fill(wal)
        assert wal.crashed
        replay = replay_wal(tmp_path / "wal")
        assert [r.cycle for r in replay.cycles()] == [0, 1, 2]
        assert not replay.torn_tail  # record-boundary crash tears nothing

    def test_crash_at_byte_leaves_torn_prefix(self, tmp_path):
        wal = CrashingWAL(tmp_path / "wal", CrashPoint(at_byte=100))
        with pytest.raises(SimulatedCrash):
            _fill(wal)
        replay = replay_wal(tmp_path / "wal")
        # The torn write is visible, and everything before it replays.
        assert replay.torn_tail or len(replay.records) > 0

    def test_crash_during_construction(self, tmp_path):
        # The 18-byte segment header write itself can die.
        with pytest.raises(SimulatedCrash):
            CrashingWAL(tmp_path / "wal", CrashPoint(at_byte=5))
        replay = replay_wal(tmp_path / "wal")
        assert replay.records == ()
        assert replay.torn_tail  # a partial header is a torn tail

    def test_operations_after_crash_raise(self, tmp_path):
        wal = CrashingWAL(tmp_path / "wal", CrashPoint(before_record=1))
        wal.append_cycle(0, {"c1": 1.0})
        with pytest.raises(SimulatedCrash):
            wal.append_cycle(1, {"c1": 2.0})
        with pytest.raises(SimulatedCrash):
            wal.append_cycle(2, {"c1": 3.0})
        with pytest.raises(SimulatedCrash):
            wal.sync()

    def test_reopen_after_torn_crash_recovers(self, tmp_path):
        wal = CrashingWAL(tmp_path / "wal", CrashPoint(at_byte=150))
        with pytest.raises(SimulatedCrash):
            _fill(wal)
        survived = [r.cycle for r in replay_wal(tmp_path / "wal").cycles()]
        # Reopen repairs the tail; appending resumes cleanly.
        with WriteAheadLog(tmp_path / "wal") as fresh:
            next_cycle = (survived[-1] + 1) if survived else 0
            fresh.append_cycle(next_cycle, {"c1": 9.0})
            fresh.sync()
        replay = replay_wal(tmp_path / "wal")
        assert not replay.torn_tail
        assert [r.cycle for r in replay.cycles()] == survived + [next_cycle]
