"""WAL format, rotation, torn-tail handling, repair, and compaction."""

import os

import pytest

from repro.durability.wal import (
    WAL_VERSION,
    WALRecord,
    WriteAheadLog,
    list_segments,
    replay_wal,
)
from repro.errors import ConfigurationError, WALCorruptionError, WALError
from repro.observability.metrics import MetricsRegistry
from repro.quarantine.firewall import MeterReading


def _readings(t):
    return {"c1": float(t), "c2": float(t) * 0.5}


class TestRoundTrip:
    def test_append_sync_replay(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir) as wal:
            for t in range(10):
                wal.append_cycle(t, _readings(t))
            wal.sync()
        replay = replay_wal(wal_dir)
        cycles = list(replay.cycles())
        assert [r.cycle for r in cycles] == list(range(10))
        assert cycles[3].readings == _readings(3)
        assert not replay.torn_tail

    def test_stamped_readings_survive_replay(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(
                0,
                {
                    "plain": 2.5,
                    "stamped": MeterReading(1.0, slot=7, fold=True),
                },
            )
            wal.sync()
        (record,) = replay_wal(tmp_path / "wal").cycles()
        assert record.readings["plain"] == 2.5
        assert record.readings["stamped"] == MeterReading(
            1.0, slot=7, fold=True
        )

    def test_non_finite_values_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(0, {"bad": float("nan"), "inf": float("inf")})
            wal.sync()
        (record,) = replay_wal(tmp_path / "wal").cycles()
        assert record.readings["bad"] != record.readings["bad"]  # NaN
        assert record.readings["inf"] == float("inf")

    def test_mark_records_are_not_cycles(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(0, _readings(0))
            wal.mark_checkpoint(1)
            wal.sync()
        replay = replay_wal(tmp_path / "wal")
        assert len(replay.records) == 2
        assert len(list(replay.cycles())) == 1
        assert replay.last_cycle == 0

    def test_empty_directory_replays_empty(self, tmp_path):
        replay = replay_wal(tmp_path / "missing")
        assert replay.records == ()
        assert replay.segments == 0
        assert not replay.torn_tail

    def test_sync_tracks_durable_cycle(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(0, _readings(0))
            assert wal.last_synced_cycle == -1
            wal.sync()
            assert wal.last_synced_cycle == 0

    def test_closed_wal_rejects_writes(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        with pytest.raises(WALError):
            wal.append_cycle(0, _readings(0))
        with pytest.raises(WALError):
            wal.sync()

    def test_segment_max_bytes_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path / "wal", segment_max_bytes=8)


class TestRotation:
    def test_small_segments_rotate(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", segment_max_bytes=256) as wal:
            for t in range(50):
                wal.append_cycle(t, _readings(t))
            wal.sync()
            assert wal.rotations > 0
        segments = list_segments(tmp_path / "wal")
        assert len(segments) > 1
        replay = replay_wal(tmp_path / "wal")
        assert [r.cycle for r in replay.cycles()] == list(range(50))

    def test_reopen_continues_in_fresh_segment(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(0, _readings(0))
            wal.sync()
        before = list_segments(tmp_path / "wal")
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(1, _readings(1))
            wal.sync()
        after = list_segments(tmp_path / "wal")
        assert len(after) == len(before) + 1
        assert [r.cycle for r in replay_wal(tmp_path / "wal").cycles()] == [
            0,
            1,
        ]

    def test_metrics_counters(self, tmp_path):
        registry = MetricsRegistry()
        with WriteAheadLog(
            tmp_path / "wal", segment_max_bytes=256, metrics=registry
        ) as wal:
            for t in range(30):
                wal.append_cycle(t, _readings(t))
            wal.sync()
        snapshot = registry.snapshot()
        names = {family["name"] for family in snapshot["families"]}
        assert "fdeta_wal_appends_total" in names
        assert "fdeta_wal_syncs_total" in names
        assert "fdeta_wal_rotations_total" in names


class TestTornTail:
    def test_truncated_record_is_torn_not_corrupt(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for t in range(5):
                wal.append_cycle(t, _readings(t))
            wal.sync()
        (segment,) = list_segments(tmp_path / "wal")
        size = os.path.getsize(segment)
        with open(segment, "r+b") as handle:
            handle.truncate(size - 3)
        replay = replay_wal(tmp_path / "wal")
        assert replay.torn_tail
        assert [r.cycle for r in replay.cycles()] == [0, 1, 2, 3]

    def test_flipped_byte_in_tail_fails_crc(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for t in range(3):
                wal.append_cycle(t, _readings(t))
            wal.sync()
        (segment,) = list_segments(tmp_path / "wal")
        with open(segment, "r+b") as handle:
            handle.seek(-2, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-2, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        replay = replay_wal(tmp_path / "wal")
        assert replay.torn_tail
        assert [r.cycle for r in replay.cycles()] == [0, 1]

    def test_torn_non_final_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", segment_max_bytes=256) as wal:
            for t in range(40):
                wal.append_cycle(t, _readings(t))
            wal.sync()
        segments = list_segments(tmp_path / "wal")
        assert len(segments) >= 2
        with open(segments[0], "r+b") as handle:
            handle.truncate(os.path.getsize(segments[0]) - 3)
        with pytest.raises(WALCorruptionError):
            replay_wal(tmp_path / "wal")

    def test_bad_magic_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(0, _readings(0))
            wal.sync()
        (segment,) = list_segments(tmp_path / "wal")
        with open(segment, "r+b") as handle:
            handle.write(b"NOTAWAL!")
        with pytest.raises(WALCorruptionError):
            replay_wal(tmp_path / "wal")

    def test_wrong_version_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(0, _readings(0))
            wal.sync()
        (segment,) = list_segments(tmp_path / "wal")
        with open(segment, "r+b") as handle:
            handle.seek(8)
            handle.write((WAL_VERSION + 1).to_bytes(2, "little"))
        with pytest.raises(WALCorruptionError):
            replay_wal(tmp_path / "wal")

    def test_reopen_repairs_torn_tail(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for t in range(5):
                wal.append_cycle(t, _readings(t))
            wal.sync()
        (segment,) = list_segments(tmp_path / "wal")
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) - 1)
        # Re-opening truncates the unacknowledged partial record ...
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_cycle(4, _readings(4))
            wal.sync()
        # ... so a full replay is clean again.
        replay = replay_wal(tmp_path / "wal")
        assert not replay.torn_tail
        assert [r.cycle for r in replay.cycles()] == [0, 1, 2, 3, 4]


class TestCompaction:
    def _multi_segment_wal(self, directory):
        wal = WriteAheadLog(directory, segment_max_bytes=256)
        for t in range(60):
            wal.append_cycle(t, _readings(t))
        wal.sync()
        return wal

    def test_compact_removes_covered_segments(self, tmp_path):
        wal = self._multi_segment_wal(tmp_path / "wal")
        before = wal.segments()
        assert len(before) > 2
        removed = wal.compact(up_to_cycle=40)
        assert removed > 0
        survivors = wal.segments()
        assert len(survivors) == len(before) - removed
        # Every surviving record at/past the horizon is still there.
        replay = replay_wal(tmp_path / "wal")
        cycles = [r.cycle for r in replay.cycles()]
        assert all(t in cycles for t in range(40, 60))
        wal.close()

    def test_compact_never_touches_active_segment(self, tmp_path):
        wal = self._multi_segment_wal(tmp_path / "wal")
        wal.compact(up_to_cycle=10_000)
        assert wal.segments() == [wal.active_segment]
        wal.append_cycle(60, _readings(60))
        wal.sync()
        wal.close()
        assert [r.cycle for r in replay_wal(tmp_path / "wal").cycles()][
            -1
        ] == 60

    def test_compact_stops_at_first_uncovered(self, tmp_path):
        wal = self._multi_segment_wal(tmp_path / "wal")
        removed_low = wal.compact(up_to_cycle=1)
        assert removed_low == 0
        wal.close()


class TestWALRecord:
    def test_record_defaults(self):
        record = WALRecord(kind="mark", cycle=7)
        assert record.readings is None
