"""Unit tests for the KLD detector — the paper's core contribution."""

import numpy as np
import pytest

from repro.core.kld import KLDDetector
from repro.errors import ConfigurationError, NotFittedError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def fitted(train_matrix):
    return KLDDetector(bins=10, significance=0.05).fit(train_matrix)


class TestFitArtifacts:
    def test_reference_distribution_normalised(self, fitted):
        assert fitted.reference_distribution.sum() == pytest.approx(1.0)
        assert fitted.reference_distribution.size == 10

    def test_training_divergences_one_per_week(self, fitted, train_matrix):
        assert fitted.training_divergences.size == train_matrix.shape[0]

    def test_threshold_is_95th_percentile(self, fitted):
        expected = fitted.training_divergences.percentile(95.0)
        assert fitted.threshold == pytest.approx(expected)

    def test_10pct_threshold_lower_than_5pct(self, train_matrix):
        aggressive = KLDDetector(significance=0.10).fit(train_matrix)
        conservative = KLDDetector(significance=0.05).fit(train_matrix)
        assert aggressive.threshold <= conservative.threshold

    def test_bin_edges_span_training_data(self, fitted, train_matrix):
        assert fitted.histogram.edges[0] == pytest.approx(train_matrix.min())
        assert fitted.histogram.edges[-1] == pytest.approx(train_matrix.max())

    def test_unfitted_access_raises(self):
        detector = KLDDetector()
        with pytest.raises(NotFittedError):
            detector.threshold
        with pytest.raises(NotFittedError):
            detector.reference_distribution


class TestEquation12:
    def test_divergence_of_training_week_matches_k_i(self, fitted, train_matrix):
        """K_i recomputed through the public API equals the stored one."""
        k0 = fitted.divergence_of(train_matrix[0])
        assert k0 == pytest.approx(fitted.training_divergences.samples.min(), abs=10)
        # More precisely: it must be one of the stored K_i values.
        assert any(
            np.isclose(k0, k) for k in fitted.training_divergences.samples
        )

    def test_divergence_base2(self, fitted, train_matrix):
        """Eq 12 uses log base 2; a manual recomputation must agree."""
        from repro.stats.divergence import kl_divergence

        week = train_matrix[3]
        manual = kl_divergence(
            fitted.week_distribution(week), fitted.reference_distribution, base=2
        )
        assert fitted.divergence_of(week) == pytest.approx(manual)

    def test_identical_distribution_zero_divergence(self, fitted, train_matrix):
        assert fitted.divergence_of(train_matrix.ravel()[:SLOTS_PER_WEEK]) >= 0


class TestDetection:
    def test_training_false_positive_rate_near_alpha(self, train_matrix):
        detector = KLDDetector(significance=0.10).fit(train_matrix)
        flags = [detector.flags(week) for week in train_matrix]
        # By construction ~10% of training weeks sit above the 90th pct.
        assert np.mean(flags) == pytest.approx(0.10, abs=0.05)

    def test_shifted_week_flagged(self, fitted, train_matrix):
        """A week at triple the historic level has a clearly different
        reading distribution."""
        assert fitted.flags(train_matrix[0] * 3.0)

    def test_constant_week_flagged(self, fitted, train_matrix):
        week = np.full(SLOTS_PER_WEEK, float(train_matrix.mean()))
        assert fitted.flags(week)

    def test_permuted_week_not_distinguishable(self, fitted, train_matrix, rng):
        """Reordering readings cannot change the KLD statistic — the
        Optimal Swap blindness the conditional detector fixes."""
        week = train_matrix[1]
        shuffled = rng.permutation(week)
        assert fitted.divergence_of(shuffled) == pytest.approx(
            fitted.divergence_of(week)
        )

    def test_score_detail_mentions_threshold(self, fitted, train_matrix):
        result = fitted.score_week(train_matrix[0])
        assert "threshold" in result.detail

    def test_name_includes_significance(self):
        assert "5%" in KLDDetector(significance=0.05).name
        assert "10%" in KLDDetector(significance=0.10).name


class TestQuantileBinning:
    def test_mass_binning_near_uniform_reference(self, train_matrix):
        detector = KLDDetector(binning="mass").fit(train_matrix)
        reference = detector.reference_distribution
        assert reference.max() < 0.2  # ~0.1 each for 10 bins
        assert reference.min() > 0.05

    def test_mass_binning_detects_attacks_too(self, train_matrix):
        detector = KLDDetector(binning="mass", significance=0.05).fit(
            train_matrix
        )
        assert detector.flags(train_matrix[0] * 3.0)

    def test_mass_binning_training_fp_near_alpha(self, train_matrix):
        detector = KLDDetector(binning="mass", significance=0.10).fit(
            train_matrix
        )
        import numpy as np

        flags = [detector.flags(week) for week in train_matrix]
        assert np.mean(flags) <= 0.2

    def test_rejects_unknown_binning(self):
        with pytest.raises(ConfigurationError):
            KLDDetector(binning="log")


class TestDegradedMode:
    """Partial-week (gappy) scoring for the resilient pipeline."""

    def test_declares_support(self):
        assert KLDDetector.supports_partial_weeks is True

    def test_full_week_agrees_with_normal_path(self, fitted, train_matrix):
        week = train_matrix[0]
        assert fitted.score_partial_week(week) == fitted.score_week(week)

    def test_mild_gaps_barely_move_the_score(self, fitted, train_matrix):
        """Histogram mass renormalises over observed slots: knocking out
        a few slots of a normal week must not invent an anomaly."""
        week = train_matrix[1].copy()
        full_score = fitted.score_week(week).score
        week[10:14] = np.nan
        degraded = fitted.score_partial_week(week)
        assert not degraded.flagged
        assert degraded.score == pytest.approx(full_score, abs=0.1)
        assert degraded.threshold == fitted.threshold

    def test_attack_still_detected_with_gaps(self, fitted, train_matrix):
        week = train_matrix[0] * 3.0
        week[0:48] = np.nan  # a whole day missing
        result = fitted.score_partial_week(week)
        assert result.flagged

    def test_detail_mentions_degraded_mode(self, fitted, train_matrix):
        week = train_matrix[2].copy()
        week[100:110] = np.nan
        detail = fitted.score_partial_week(week).detail
        assert "degraded" in detail
        assert "97%" in detail  # 326/336 observed slots


class TestConfiguration:
    def test_rejects_bad_bins(self):
        with pytest.raises(ConfigurationError):
            KLDDetector(bins=1)

    def test_rejects_bad_significance(self):
        with pytest.raises(ConfigurationError):
            KLDDetector(significance=0.0)
        with pytest.raises(ConfigurationError):
            KLDDetector(significance=1.0)

    def test_more_bins_more_sensitive(self, train_matrix, rng):
        """Section VIII-D: fewer bins -> fewer false positives (the KLD
        statistic is coarser).  Check the training-set flag rate is
        monotone-ish in the bin count."""
        coarse = KLDDetector(bins=4, significance=0.10).fit(train_matrix)
        fine = KLDDetector(bins=40, significance=0.10).fit(train_matrix)
        week = train_matrix[0] * 1.3  # mild anomaly
        assert fine.divergence_of(week) >= coarse.divergence_of(week) - 0.05


class TestInputHardening:
    """NaN/inf and empty inputs fail with typed errors, never NaN scores."""

    def test_fit_rejects_nan_training_matrix(self, train_matrix):
        from repro.errors import NonFiniteInputError

        poisoned = train_matrix.copy()
        poisoned[0, 0] = np.nan
        with pytest.raises(NonFiniteInputError):
            KLDDetector().fit(poisoned)

    def test_fit_rejects_empty_training_matrix(self):
        from repro.errors import DataError

        with pytest.raises(DataError):
            KLDDetector().fit(np.empty((0, SLOTS_PER_WEEK)))

    def test_divergence_of_rejects_nan_week(self, fitted):
        from repro.errors import NonFiniteInputError

        week = np.full(SLOTS_PER_WEEK, 1.0)
        week[7] = np.nan
        with pytest.raises(NonFiniteInputError):
            fitted.divergence_of(week)

    def test_partial_week_with_zero_observed_slots_raises(self, fitted):
        from repro.errors import DataError

        week = np.full(SLOTS_PER_WEEK, np.nan)
        observed = np.zeros(SLOTS_PER_WEEK, dtype=bool)
        with pytest.raises(DataError):
            fitted._score_partial_week(week, observed)
