"""Tests for the online theft-monitoring service."""

import numpy as np
import pytest

from repro.core.framework import AnomalyNature
from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService
from repro.errors import ConfigurationError, DataError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def _make_service(**kwargs):
    defaults = dict(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=6,
        retrain_every_weeks=4,
    )
    defaults.update(kwargs)
    return TheftMonitoringService(**defaults)


def _feed_week(service, weeks, week_index, transform=None):
    """Feed one week of per-consumer readings into the service."""
    report = None
    for slot in range(SLOTS_PER_WEEK):
        cycle = {}
        for cid, series in weeks.items():
            value = float(series[week_index * SLOTS_PER_WEEK + slot])
            if transform is not None:
                value = transform(cid, value)
            cycle[cid] = value
        report = service.ingest_cycle(cycle)
    return report


@pytest.fixture(scope="module")
def consumer_series(paper_dataset):
    ids = paper_dataset.consumers()[:3]
    return {cid: paper_dataset.series(cid) for cid in ids}


class TestLifecycle:
    def test_untrained_until_min_weeks(self, consumer_series):
        service = _make_service()
        for week in range(5):
            _feed_week(service, consumer_series, week)
        assert not service.is_trained
        _feed_week(service, consumer_series, 5)
        assert service.is_trained
        assert service.weeks_completed == 6

    def test_mid_week_cycles_return_none(self, consumer_series):
        service = _make_service()
        cycle = {cid: 1.0 for cid in consumer_series}
        assert service.ingest_cycle(cycle) is None

    def test_reports_accumulate(self, consumer_series):
        service = _make_service()
        for week in range(8):
            _feed_week(service, consumer_series, week)
        assert len(service.reports) == 8

    def test_rejects_empty_cycle(self):
        service = _make_service()
        with pytest.raises(DataError):
            service.ingest_cycle({})

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            _make_service(min_training_weeks=1)
        with pytest.raises(ConfigurationError):
            _make_service(retrain_every_weeks=0)

    def test_rejects_population_drift(self):
        """A cycle missing a consumer would desynchronise the store;
        the service must reject it loudly."""
        service = _make_service()
        service.ingest_cycle({"a": 1.0, "b": 2.0})
        with pytest.raises(DataError):
            service.ingest_cycle({"a": 1.0})
        with pytest.raises(DataError):
            service.ingest_cycle({"a": 1.0, "b": 2.0, "ghost": 3.0})
        # A matching cycle is still accepted afterwards.
        assert service.ingest_cycle({"a": 1.0, "b": 2.0}) is None


class TestAlertAndReportValueObjects:
    def test_quiet_report(self):
        from repro.core.online import MonitoringReport

        assert MonitoringReport(week_index=0).quiet
        assert not MonitoringReport(
            week_index=0, balance_failures=("N1",)
        ).quiet

    def test_severity_in_threshold_units(self):
        from repro.core.framework import AnomalyNature
        from repro.core.online import TheftAlert

        alert = TheftAlert(
            week_index=1,
            consumer_id="c",
            nature=AnomalyNature.SUSPECTED_VICTIM,
            score=0.3,
            threshold=0.1,
            balance_check_failed=False,
        )
        assert alert.severity == pytest.approx(3.0)

    def test_severity_with_zero_threshold(self):
        from repro.core.framework import AnomalyNature
        from repro.core.online import TheftAlert

        alert = TheftAlert(
            week_index=1,
            consumer_id="c",
            nature=AnomalyNature.SUSPECTED_ATTACKER,
            score=5.0,
            threshold=0.0,
            balance_check_failed=True,
        )
        assert alert.severity == 5.0


class TestDetectionInOperation:
    def test_quiet_on_normal_weeks(self, consumer_series):
        service = _make_service(min_training_weeks=8)
        alerts = 0
        for week in range(12):
            report = _feed_week(service, consumer_series, week)
            if report is not None:
                alerts += len(report.alerts)
        # Natural anomalies may fire occasionally; sustained quiet
        # operation is the norm.
        assert alerts <= 6

    def test_victim_alert_on_over_report(self, consumer_series):
        service = _make_service(min_training_weeks=8)
        ids = list(consumer_series)
        victim = ids[0]
        for week in range(10):
            _feed_week(service, consumer_series, week)
        report = _feed_week(
            service,
            consumer_series,
            10,
            transform=lambda cid, v: v * 4.0 if cid == victim else v,
        )
        assert report is not None
        flagged = {alert.consumer_id for alert in report.alerts}
        assert victim in flagged
        assert victim in service.suspected_victims()

    def test_attacker_alert_on_under_report(self, consumer_series):
        service = _make_service(min_training_weeks=8)
        ids = list(consumer_series)
        mallory = ids[1]
        for week in range(10):
            _feed_week(service, consumer_series, week)
        report = _feed_week(
            service,
            consumer_series,
            10,
            transform=lambda cid, v: v * 0.05 if cid == mallory else v,
        )
        assert report is not None
        assert mallory in service.suspected_attackers()
        alert = service.alerts_for(mallory)[0]
        assert alert.nature is AnomalyNature.SUSPECTED_ATTACKER
        assert alert.severity > 1.0

    def test_attacked_weeks_quarantined_from_retraining(self, consumer_series):
        """An ongoing attack must not poison its own detector: the
        flagged week is excluded from the retraining data."""
        service = _make_service(min_training_weeks=8, retrain_every_weeks=1)
        ids = list(consumer_series)
        victim = ids[0]
        for week in range(10):
            _feed_week(service, consumer_series, week)
        _feed_week(
            service,
            consumer_series,
            10,
            transform=lambda cid, v: v * 4.0 if cid == victim else v,
        )
        quarantined = service._quarantined_weeks.get(victim, set())
        assert 10 in quarantined
        # The retrained detector still flags a repeat of the attack.
        report = _feed_week(
            service,
            consumer_series,
            11,
            transform=lambda cid, v: v * 4.0 if cid == victim else v,
        )
        assert report is not None
        assert victim in {a.consumer_id for a in report.alerts}
