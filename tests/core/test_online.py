"""Tests for the online theft-monitoring service."""

import pytest

from repro.core.framework import AnomalyNature
from repro.core.kld import KLDDetector
from repro.core.online import TheftMonitoringService, _abbreviate_ids
from repro.errors import ConfigurationError, DataError
from repro.resilience import ResilienceConfig
from repro.resilience.circuit import BreakerState
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def _make_service(**kwargs):
    defaults = dict(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=6,
        retrain_every_weeks=4,
    )
    defaults.update(kwargs)
    return TheftMonitoringService(**defaults)


def _feed_week(service, weeks, week_index, transform=None):
    """Feed one week of per-consumer readings into the service."""
    report = None
    for slot in range(SLOTS_PER_WEEK):
        cycle = {}
        for cid, series in weeks.items():
            value = float(series[week_index * SLOTS_PER_WEEK + slot])
            if transform is not None:
                value = transform(cid, value)
            cycle[cid] = value
        report = service.ingest_cycle(cycle)
    return report


@pytest.fixture(scope="module")
def consumer_series(paper_dataset):
    ids = paper_dataset.consumers()[:3]
    return {cid: paper_dataset.series(cid) for cid in ids}


class TestLifecycle:
    def test_untrained_until_min_weeks(self, consumer_series):
        service = _make_service()
        for week in range(5):
            _feed_week(service, consumer_series, week)
        assert not service.is_trained
        _feed_week(service, consumer_series, 5)
        assert service.is_trained
        assert service.weeks_completed == 6

    def test_mid_week_cycles_return_none(self, consumer_series):
        service = _make_service()
        cycle = {cid: 1.0 for cid in consumer_series}
        assert service.ingest_cycle(cycle) is None

    def test_reports_accumulate(self, consumer_series):
        service = _make_service()
        for week in range(8):
            _feed_week(service, consumer_series, week)
        assert len(service.reports) == 8

    def test_rejects_empty_cycle(self):
        service = _make_service()
        with pytest.raises(DataError):
            service.ingest_cycle({})

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            _make_service(min_training_weeks=1)
        with pytest.raises(ConfigurationError):
            _make_service(retrain_every_weeks=0)

    def test_rejects_population_drift(self):
        """A cycle missing a consumer would desynchronise the store;
        the service must reject it loudly."""
        service = _make_service()
        service.ingest_cycle({"a": 1.0, "b": 2.0})
        with pytest.raises(DataError):
            service.ingest_cycle({"a": 1.0})
        with pytest.raises(DataError):
            service.ingest_cycle({"a": 1.0, "b": 2.0, "ghost": 3.0})
        # A matching cycle is still accepted afterwards.
        assert service.ingest_cycle({"a": 1.0, "b": 2.0}) is None

    def test_mismatch_error_lists_both_sides(self):
        service = _make_service()
        service.ingest_cycle({"a": 1.0, "b": 2.0})
        with pytest.raises(DataError, match=r"missing \['b'\]"):
            service.ingest_cycle({"a": 1.0, "ghost": 3.0})
        with pytest.raises(DataError, match=r"unexpected \['ghost'\]"):
            service.ingest_cycle({"a": 1.0, "ghost": 3.0})

    def test_mismatch_error_truncates_large_populations(self):
        """A thousand-consumer drift must not produce a megabyte error."""
        population = {f"c{i:04d}": 1.0 for i in range(600)}
        service = _make_service()
        service.ingest_cycle(population)
        # 599 of 600 consumers go missing: only the first 10 are named.
        with pytest.raises(DataError, match=r"\(\+589 more\)") as excinfo:
            service.ingest_cycle({"c0000": 1.0})
        message = str(excinfo.value)
        assert len(message) < 500
        assert "c0010" in message  # first ten missing ids spelled out
        assert "c0011" not in message


class TestAbbreviateIds:
    def test_short_lists_verbatim(self):
        assert _abbreviate_ids(["b", "a"]) == "['a', 'b']"

    def test_exactly_at_limit_not_truncated(self):
        ids = [f"c{i}" for i in range(10)]
        assert "more" not in _abbreviate_ids(ids)

    def test_truncates_past_limit(self):
        ids = [f"c{i:02d}" for i in range(25)]
        rendered = _abbreviate_ids(ids)
        assert rendered.endswith("(+15 more)")
        assert "'c09'" in rendered and "c10" not in rendered

    def test_deterministic_ordering(self):
        assert _abbreviate_ids({"z", "a", "m"}) == "['a', 'm', 'z']"


class TestAlertAndReportValueObjects:
    def test_quiet_report(self):
        from repro.core.online import MonitoringReport

        assert MonitoringReport(week_index=0).quiet
        assert not MonitoringReport(
            week_index=0, balance_failures=("N1",)
        ).quiet

    def test_severity_in_threshold_units(self):
        from repro.core.framework import AnomalyNature
        from repro.core.online import TheftAlert

        alert = TheftAlert(
            week_index=1,
            consumer_id="c",
            nature=AnomalyNature.SUSPECTED_VICTIM,
            score=0.3,
            threshold=0.1,
            balance_check_failed=False,
        )
        assert alert.severity == pytest.approx(3.0)

    def test_severity_with_zero_threshold(self):
        from repro.core.framework import AnomalyNature
        from repro.core.online import TheftAlert

        alert = TheftAlert(
            week_index=1,
            consumer_id="c",
            nature=AnomalyNature.SUSPECTED_ATTACKER,
            score=5.0,
            threshold=0.0,
            balance_check_failed=True,
        )
        assert alert.severity == 5.0


class TestDetectionInOperation:
    def test_quiet_on_normal_weeks(self, consumer_series):
        service = _make_service(min_training_weeks=8)
        alerts = 0
        for week in range(12):
            report = _feed_week(service, consumer_series, week)
            if report is not None:
                alerts += len(report.alerts)
        # Natural anomalies may fire occasionally; sustained quiet
        # operation is the norm.
        assert alerts <= 6

    def test_victim_alert_on_over_report(self, consumer_series):
        service = _make_service(min_training_weeks=8)
        ids = list(consumer_series)
        victim = ids[0]
        for week in range(10):
            _feed_week(service, consumer_series, week)
        report = _feed_week(
            service,
            consumer_series,
            10,
            transform=lambda cid, v: v * 4.0 if cid == victim else v,
        )
        assert report is not None
        flagged = {alert.consumer_id for alert in report.alerts}
        assert victim in flagged
        assert victim in service.suspected_victims()

    def test_attacker_alert_on_under_report(self, consumer_series):
        service = _make_service(min_training_weeks=8)
        ids = list(consumer_series)
        mallory = ids[1]
        for week in range(10):
            _feed_week(service, consumer_series, week)
        report = _feed_week(
            service,
            consumer_series,
            10,
            transform=lambda cid, v: v * 0.05 if cid == mallory else v,
        )
        assert report is not None
        assert mallory in service.suspected_attackers()
        alert = service.alerts_for(mallory)[0]
        assert alert.nature is AnomalyNature.SUSPECTED_ATTACKER
        assert alert.severity > 1.0

    def test_attacked_weeks_quarantined_from_retraining(self, consumer_series):
        """An ongoing attack must not poison its own detector: the
        flagged week is excluded from the retraining data."""
        service = _make_service(min_training_weeks=8, retrain_every_weeks=1)
        ids = list(consumer_series)
        victim = ids[0]
        for week in range(10):
            _feed_week(service, consumer_series, week)
        _feed_week(
            service,
            consumer_series,
            10,
            transform=lambda cid, v: v * 4.0 if cid == victim else v,
        )
        quarantined = service._quarantined_weeks.get(victim, set())
        assert 10 in quarantined
        # The retrained detector still flags a repeat of the attack.
        report = _feed_week(
            service,
            consumer_series,
            11,
            transform=lambda cid, v: v * 4.0 if cid == victim else v,
        )
        assert report is not None
        assert victim in {a.consumer_id for a in report.alerts}


def _make_tolerant(ids, **config):
    return TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.05),
        min_training_weeks=6,
        retrain_every_weeks=4,
        resilience=ResilienceConfig(**config),
        population=ids,
    )


class TestGapTolerantMode:
    def test_accepts_partial_cycles(self, consumer_series):
        ids = sorted(consumer_series)
        service = _make_tolerant(ids)
        absent = ids[0]
        for slot in range(SLOTS_PER_WEEK):
            cycle = {
                cid: float(consumer_series[cid][slot]) for cid in ids
            }
            if slot % 90 == 7:
                del cycle[absent]
            service.ingest_cycle(cycle)
        assert service.weeks_completed == 1
        # Gap markers kept the series slot-aligned.
        for cid in ids:
            assert service.store.length(cid) == SLOTS_PER_WEEK

    def test_accepts_empty_cycle(self, consumer_series):
        ids = sorted(consumer_series)
        service = _make_tolerant(ids)
        service.ingest_cycle({})
        for cid in ids:
            assert service.store.gap_count(cid) == 1

    def test_rejects_unknown_consumers(self, consumer_series):
        ids = sorted(consumer_series)
        service = _make_tolerant(ids)
        with pytest.raises(DataError, match="unknown consumers"):
            service.ingest_cycle({"ghost": 1.0})

    def test_invalid_readings_become_gaps(self, consumer_series):
        ids = sorted(consumer_series)
        service = _make_tolerant(ids)
        bad = ids[1]
        cycle = {cid: 1.0 for cid in ids}
        for value in (float("nan"), float("inf"), -2.0):
            cycle[bad] = value
            service.ingest_cycle(cycle)
        assert service.store.gap_count(bad) == 3
        assert service.store.gap_count(ids[0]) == 0

    def test_breaker_quarantines_silent_consumer(self, consumer_series):
        ids = sorted(consumer_series)
        service = _make_tolerant(ids, failure_threshold=8)
        silent = ids[2]
        for slot in range(SLOTS_PER_WEEK):
            cycle = {cid: 1.0 for cid in ids if cid != silent}
            service.ingest_cycle(cycle)
        assert service.breaker_state(silent) is BreakerState.OPEN
        assert silent in service.quarantined_consumers()
        assert silent in service.reports[-1].quarantined

    def test_low_coverage_week_suppressed(self, paper_dataset):
        """A consumer observed under min_coverage is never alerted."""
        ids = sorted(paper_dataset.consumers()[:3])
        series = {cid: paper_dataset.series(cid) for cid in ids}
        # High threshold so the breaker never opens: gaps then flow into
        # coverage accounting instead of quarantine.
        service = _make_tolerant(
            ids, min_coverage=0.9, failure_threshold=10_000
        )
        spotty = ids[0]
        for t in range(7 * SLOTS_PER_WEEK):
            cycle = {cid: float(series[cid][t]) for cid in ids}
            # Drop 1 slot in 2 (in runs of 8, beyond repair) from week 6.
            if t >= 6 * SLOTS_PER_WEEK and t % 16 < 8:
                del cycle[spotty]
            service.ingest_cycle(cycle)
        report = service.reports[-1]
        assert spotty in report.suppressed
        assert all(a.consumer_id != spotty for a in report.alerts)
        # The other consumers were scored normally.
        assert report.coverage[ids[1]] == 1.0

    def test_strict_mode_breaker_queries_are_benign(self, consumer_series):
        service = _make_service()
        assert service.breaker_state("anyone") is BreakerState.CLOSED
        assert service.quarantined_consumers() == ()

    def test_clean_data_matches_strict_mode(self, consumer_series):
        """On loss-free input the resilient service is a no-op wrapper:
        reports must be identical to strict mode's."""
        ids = sorted(consumer_series)
        strict = _make_service(min_training_weeks=6)
        tolerant = _make_tolerant(ids)
        for week in range(9):
            _feed_week(strict, consumer_series, week)
            _feed_week(tolerant, consumer_series, week)
        assert len(strict.reports) == len(tolerant.reports)
        for ours, theirs in zip(tolerant.reports, strict.reports):
            assert [
                (a.consumer_id, a.score, a.threshold) for a in ours.alerts
            ] == [
                (a.consumer_id, a.score, a.threshold) for a in theirs.alerts
            ]
