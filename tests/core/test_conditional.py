"""Unit tests for the price-conditioned KLD detector."""

import numpy as np
import pytest

from repro.core.conditional import PriceConditionedKLDDetector
from repro.errors import ConfigurationError, NotFittedError
from repro.pricing.schemes import FlatRatePricing, TimeOfUsePricing


@pytest.fixture(scope="module")
def fitted(train_matrix):
    return PriceConditionedKLDDetector(
        pricing=TimeOfUsePricing(), bins=10, significance=0.05
    ).fit(train_matrix)


class TestConditioning:
    def test_two_price_levels_for_tou(self, fitted):
        assert len(fitted.price_levels) == 2
        assert set(fitted.price_levels) == {0.18, 0.21}

    def test_divergences_per_level(self, fitted, train_matrix):
        divergences = fitted.divergences_of(train_matrix[0])
        assert set(divergences) == {0.18, 0.21}
        assert all(v >= 0 for v in divergences.values())

    def test_rejects_flat_rate(self):
        with pytest.raises(ConfigurationError):
            PriceConditionedKLDDetector(pricing=FlatRatePricing())

    def test_unfitted_raises(self):
        detector = PriceConditionedKLDDetector(pricing=TimeOfUsePricing())
        with pytest.raises(NotFittedError):
            detector.price_levels


class TestSwapDetection:
    def test_catches_optimal_swap(self, fitted, train_matrix, rng):
        """Section VIII-F3: conditioning on price reveals the swap that
        the plain KLD detector cannot see."""
        from repro.attacks.injection.base import InjectionContext
        from repro.attacks.injection.optimal_swap import OptimalSwapAttack

        week = train_matrix[2]
        context = InjectionContext(
            train_matrix=train_matrix,
            actual_week=week,
            band_lower=np.zeros_like(week),
            band_upper=np.full_like(week, week.max() * 10),
        )
        vector = OptimalSwapAttack(respect_band=False).inject(context, rng)
        divergences_attack = fitted.divergences_of(vector.reported)
        divergences_normal = fitted.divergences_of(week)
        # The swap deforms both conditional distributions.
        assert (
            max(divergences_attack.values())
            > max(divergences_normal.values())
        )
        assert fitted.flags(vector.reported)

    def test_normal_week_usually_passes(self, fitted, paper_dataset):
        cid = paper_dataset.consumers()[0]
        flags = [
            fitted.flags(week) for week in paper_dataset.test_matrix(cid)[:5]
        ]
        assert sum(flags) <= 2

    def test_training_flag_rate_bounded(self, fitted, train_matrix):
        flags = [fitted.flags(week) for week in train_matrix]
        # Union of two alpha=5% tests: at most ~10-15% of training weeks.
        assert np.mean(flags) <= 0.2

    def test_score_detail_names_price(self, fitted, train_matrix):
        result = fitted.score_week(train_matrix[0])
        assert "$/kWh" in result.detail


class TestConfiguration:
    def test_rejects_bad_bins(self):
        with pytest.raises(ConfigurationError):
            PriceConditionedKLDDetector(pricing=TimeOfUsePricing(), bins=1)

    def test_rejects_bad_significance(self):
        with pytest.raises(ConfigurationError):
            PriceConditionedKLDDetector(
                pricing=TimeOfUsePricing(), significance=2.0
            )

    def test_rtp_multi_level_conditioning(self, train_matrix):
        """The paper's RTP extension: one conditional distribution per
        price level."""
        from repro.pricing.schemes import RealTimePricing

        prices = np.tile(np.array([0.1, 0.2, 0.3]), 112)
        scheme = RealTimePricing(prices=prices, update_period=1)
        detector = PriceConditionedKLDDetector(pricing=scheme).fit(train_matrix)
        assert len(detector.price_levels) == 3
