"""Tests for the layered detector ensemble."""

import numpy as np
import pytest

from repro.core.ensemble import LayeredDetector
from repro.core.kld import KLDDetector
from repro.detectors.arima_detector import ARIMADetector
from repro.detectors.integrated_arima import IntegratedARIMADetector
from repro.detectors.threshold import MinimumAverageDetector
from repro.errors import ConfigurationError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def layered(train_matrix):
    arima = ARIMADetector(max_violations=16)
    return LayeredDetector(
        [
            arima,
            IntegratedARIMADetector(arima=arima),
            KLDDetector(significance=0.05),
        ]
    ).fit(train_matrix)


class TestLayeredDetector:
    def test_flags_when_any_member_flags(self, layered, train_matrix):
        """Zero week: the moment checks and KLD both fire."""
        assert layered.flags(np.zeros(SLOTS_PER_WEEK))

    def test_normal_week_passes_all_layers(self, layered, paper_dataset):
        cid = paper_dataset.consumers()[0]
        week = paper_dataset.test_matrix(cid)[0]
        result = layered.score_week(week)
        # A clean week usually passes; when it does, no member fired.
        if not result.flagged:
            assert result.detail == "no member fired"

    def test_member_results_exposed(self, layered, train_matrix):
        results = layered.member_results(train_matrix[0])
        assert len(results) == 3
        assert any("KLD" in name for name in results)

    def test_detail_names_firing_member(self, layered, train_matrix):
        result = layered.score_week(train_matrix[0] * 5.0)
        assert result.flagged
        assert "fired:" in result.detail

    def test_layering_dominates_each_member(self, layered, train_matrix, rng):
        """The paper's 'additional layer' argument: the ensemble detects
        at least whatever its strongest member detects."""
        from repro.attacks.injection.base import InjectionContext
        from repro.attacks.injection.integrated_arima import (
            IntegratedARIMAAttack,
        )

        arima = layered.members[0]
        lower, upper = arima.confidence_band()
        context = InjectionContext(
            train_matrix=train_matrix,
            actual_week=train_matrix[-1],
            band_lower=lower,
            band_upper=upper,
        )
        vector = IntegratedARIMAAttack(direction="over").inject(context, rng)
        member_flags = [m.flags(vector.reported) for m in layered.members]
        assert layered.flags(vector.reported) == any(member_flags)

    def test_rejects_empty_member_list(self):
        with pytest.raises(ConfigurationError):
            LayeredDetector([])

    def test_prefit_members_not_refit(self, train_matrix):
        member = MinimumAverageDetector().fit(train_matrix)
        tau_before = member.tau
        LayeredDetector([member]).fit(train_matrix)
        assert member.tau == tau_before

    def test_name_lists_members(self, layered):
        assert "ARIMA detector" in layered.name
        assert "KLD" in layered.name
