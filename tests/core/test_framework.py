"""Unit tests for the F-DETA five-step pipeline."""

import pytest

from repro.core.framework import (
    AnomalyNature,
    ExternalEvidence,
    FDetaFramework,
)
from repro.core.kld import KLDDetector
from repro.errors import ConfigurationError, DataError
from repro.grid.balance import BalanceAuditor
from repro.grid.builder import build_figure2_topology
from repro.grid.snapshot import DemandSnapshot


@pytest.fixture(scope="module")
def framework(paper_dataset):
    fw = FDetaFramework(
        detector_factory=lambda: KLDDetector(significance=0.05)
    )
    fw.train(
        {
            cid: paper_dataset.train_matrix(cid)
            for cid in paper_dataset.consumers()[:4]
        }
    )
    return fw


class TestTraining:
    def test_detector_per_consumer(self, framework, paper_dataset):
        for cid in paper_dataset.consumers()[:4]:
            assert framework.detector_for(cid) is not None

    def test_unknown_consumer_raises(self, framework):
        with pytest.raises(DataError):
            framework.detector_for("ghost")

    def test_empty_training_rejected(self):
        fw = FDetaFramework(detector_factory=KLDDetector)
        with pytest.raises(DataError):
            fw.train({})

    def test_bad_quantiles_rejected(self):
        with pytest.raises(ConfigurationError):
            FDetaFramework(
                detector_factory=KLDDetector, triage_quantiles=(0.8, 0.2)
            )
        with pytest.raises(ConfigurationError):
            FDetaFramework(
                detector_factory=KLDDetector, triage_quantiles=(0.0, 0.8)
            )


class TestAssessment:
    def test_normal_week_normal(self, framework, paper_dataset):
        cid = paper_dataset.consumers()[0]
        assessment = framework.assess_week(
            cid, paper_dataset.test_matrix(cid)[0]
        )
        # Normal weeks are usually unflagged (95% by construction).
        if not assessment.result.flagged:
            assert assessment.nature is AnomalyNature.NORMAL
            assert not assessment.needs_investigation

    def test_step3_high_readings_mean_victim(self, framework, paper_dataset):
        """Proposition 2 in the pipeline: abnormally high readings mark
        a victimised neighbour (Attack Classes 1B-3B)."""
        cid = paper_dataset.consumers()[0]
        week = paper_dataset.test_matrix(cid)[0] * 4.0
        assessment = framework.assess_week(cid, week)
        assert assessment.result.flagged
        assert assessment.nature is AnomalyNature.SUSPECTED_VICTIM

    def test_step3_low_readings_mean_attacker(self, framework, paper_dataset):
        cid = paper_dataset.consumers()[0]
        week = paper_dataset.test_matrix(cid)[0] * 0.05
        assessment = framework.assess_week(cid, week)
        assert assessment.result.flagged
        assert assessment.nature is AnomalyNature.SUSPECTED_ATTACKER

    def test_step4_external_evidence_suppresses(self, framework, paper_dataset):
        cid = paper_dataset.consumers()[0]
        week = paper_dataset.test_matrix(cid)[0] * 0.05
        evidence = ExternalEvidence(holiday_weeks=frozenset({3}))
        assessment = framework.assess_week(cid, week, week_index=3, evidence=evidence)
        assert assessment.false_positive_suspected
        assert not assessment.needs_investigation

    def test_population_assessment(self, framework, paper_dataset):
        weeks = {
            cid: paper_dataset.test_matrix(cid)[0]
            for cid in paper_dataset.consumers()[:4]
        }
        out = framework.assess_population(weeks)
        assert set(out) == set(weeks)


class TestStep5Investigation:
    def test_balance_failure_investigated(self):
        topo = build_figure2_topology()
        auditor = BalanceAuditor(topo)
        actual = {c: 2.0 for c in topo.consumers()}
        snap = DemandSnapshot(topology=topo, actual=actual).with_reported(
            {"C4": 0.5}
        )
        result = FDetaFramework.investigate(auditor, snap)
        assert result is not None
        assert "C4" in result.suspect_consumers

    def test_balanced_attack_yields_none(self):
        """Step 5 alone is insufficient for the B classes — the reason
        the data-driven steps exist."""
        topo = build_figure2_topology()
        auditor = BalanceAuditor(topo)
        actual = {c: 2.0 for c in topo.consumers()}
        actual["C4"] = 5.0  # Mallory consumes 3 extra
        snap = DemandSnapshot(topology=topo, actual=actual).with_reported(
            {"C4": 2.0, "C5": 5.0}  # neighbour over-reported
        )
        assert FDetaFramework.investigate(auditor, snap) is None
