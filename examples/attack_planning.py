#!/usr/bin/env python
"""Adversarial planning and the economics of theft.

Uses the attack planner to answer the defender's question — *which
attack class would an optimal Mallory pick against my current defenses,
and how much would it cost me?* — and the billing engine to show who
actually pays under the two recovery models of Section VI-A (the utility
absorbs the loss, or it is socialised as service fees).

Run:  python examples/attack_planning.py
"""

from __future__ import annotations


from repro import (
    ARIMADetector,
    IntegratedARIMADetector,
    SyntheticCERConfig,
    TimeOfUsePricing,
    generate_cer_like_dataset,
)
from repro.attacks import DefensePosture, plan_attack
from repro.pricing import bill_cycle


def show_plans(title, plans):
    print(f"\n{title}")
    for plan in plans:
        gain = (
            "unbounded"
            if plan.expected_weekly_gain_usd == float("inf")
            else f"${plan.expected_weekly_gain_usd:,.0f}/week"
        )
        print(f"  {plan.attack_class.value}: {gain:<16} ({plan.rationale})")


def main() -> None:
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=10, n_weeks=74, seed=9)
    )
    mallory = dataset.consumers_by_size()[0]
    train = dataset.train_matrix(mallory)
    week = dataset.test_matrix(mallory)[0]
    tariff = TimeOfUsePricing()
    print(f"Mallory is consumer {mallory} "
          f"(mean {train.mean():.2f} kW)")

    # Escalating defense postures.
    show_plans(
        "posture 0: no defenses at all",
        plan_attack(week, tariff, DefensePosture(balance_check=False)),
    )
    show_plans(
        "posture 1: trusted root balance meter only",
        plan_attack(week, tariff, DefensePosture(balance_check=True)),
    )
    arima = ARIMADetector(max_violations=16).fit(train)
    lower, upper = arima.confidence_band()
    show_plans(
        "posture 2: + ARIMA band detector",
        plan_attack(
            week,
            tariff,
            DefensePosture(band_lower=lower, band_upper=upper),
        ),
    )
    integrated = IntegratedARIMADetector(arima=arima).fit(train)
    show_plans(
        "posture 3: + Integrated moment checks",
        plan_attack(
            week,
            tariff,
            DefensePosture(
                band_lower=lower,
                band_upper=upper,
                max_weekly_mean=integrated.mean_range[1],
            ),
        ),
    )

    # Who pays?  Run one attacked billing cycle both ways.
    victims = [c for c in dataset.consumers() if c != mallory][:4]
    steal_kw = 1.5
    actual = {cid: dataset.test_matrix(cid)[0].copy() for cid in victims}
    actual[mallory] = week + steal_kw
    reported = {cid: series.copy() for cid, series in actual.items()}
    reported[mallory] = week.copy()  # under-reports her raised usage

    absorbed = bill_cycle(reported, actual, tariff)
    socialised = bill_cycle(reported, actual, tariff, socialise_losses=True)
    print(f"\nMallory steals {absorbed.unaccounted_kwh:,.0f} kWh this week.")
    print("utility-absorbs model: every bill unchanged; the utility eats "
          f"${absorbed.unaccounted_kwh * 0.2:,.0f}")
    fees = {
        cid: inv.service_fee for cid, inv in socialised.invoices.items()
    }
    print("socialised model: service fees land on everyone -")
    for cid, fee in sorted(fees.items()):
        who = "Mallory herself" if cid == mallory else "an honest neighbour"
        print(f"  {cid}: +${fee:,.2f} ({who})")


if __name__ == "__main__":
    main()
