#!/usr/bin/env python
"""Attack Class 4B: stealing through a neighbour's ADR price signal.

The paper's most exotic attack class (Section VI-B), deferred there to
future work, simulated here end-to-end:

1. a real-time pricing feed drives an elastic consumer's ADR interface;
2. Mallory forges an inflated price to the victim's interface; the
   victim's Automated Demand Response sheds load;
3. Mallory consumes the freed headroom, so the parent-node balance
   check stays green;
4. the victim is billed at the *true* price for his *reported* (higher)
   consumption: he loses money (eq 10) while the bill looks like a
   windfall against what his ADR screen promised (eq 11);
5. the price-conditioned KLD detector spots the victim's suppressed
   load shape.

Run:  python examples/adr_price_attack.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks.injection import ADRPriceAttack, InjectionContext
from repro.core import PriceConditionedKLDDetector
from repro.data import SyntheticCERConfig, generate_cer_like_dataset
from repro.pricing import ElasticConsumer, RealTimePricing
from repro.pricing.billing import neighbour_loss, perceived_benefit
from repro.timeseries.seasonal import SLOTS_PER_WEEK


def main() -> None:
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=8, n_weeks=74, seed=13)
    )
    victim = dataset.consumers_by_size()[0]
    train = dataset.train_matrix(victim)
    baseline_week = dataset.test_matrix(victim)[0]

    # A quantised RTP feed that repeats weekly (so conditional
    # distributions are trainable, as with a TOU tariff).
    pattern = np.round(
        RealTimePricing.simulate(
            n_slots=SLOTS_PER_WEEK, update_period=8, seed=2
        ).prices
        / 0.05
    ) * 0.05
    pattern = np.clip(pattern, 0.10, 0.30)
    pricing = RealTimePricing(
        prices=np.tile(pattern, dataset.n_weeks + 1), update_period=8
    )

    attack = ADRPriceAttack(
        pricing=pricing,
        consumer=ElasticConsumer(elasticity=-0.6, reference_price=0.2),
        price_multiplier=1.8,
    )
    context = InjectionContext(
        train_matrix=train,
        actual_week=baseline_week,
        band_lower=np.zeros(SLOTS_PER_WEEK),
        band_upper=np.full(SLOTS_PER_WEEK, np.inf),
    )
    vector = attack.inject(context, np.random.default_rng(0))

    prices = pricing.price_vector(SLOTS_PER_WEEK)
    loss = neighbour_loss(vector.actual, vector.reported, prices)
    illusion = perceived_benefit(
        vector.reported, prices, attack.compromised_prices()
    )
    suppressed = float((vector.reported - vector.actual).mean())
    print(f"victim {victim}: ADR sees prices x1.8, sheds "
          f"{suppressed:.2f} kW on average")
    print(f"victim's real weekly loss to Mallory (eq 10): ${loss:.2f}")
    print(f"victim's perceived bill 'windfall'   (eq 11): ${illusion:.2f}")
    assert loss > 0 and illusion > 0

    detector = PriceConditionedKLDDetector(
        pricing=pricing, bins=10, significance=0.05
    ).fit(train)
    result = detector.score_week(vector.actual)
    print(f"price-conditioned KLD on the victim's true load: "
          f"score={result.score:.4f} threshold={result.threshold:.4f} "
          f"flagged={result.flagged}")
    print("the conditioning the paper proposes for 3A/3B extends to 4B.")


if __name__ == "__main__":
    main()
