#!/usr/bin/env python
"""Online monitoring: F-DETA running as a control-centre service.

Streams sixteen weeks of polling cycles from a small AMI deployment into
:class:`TheftMonitoringService`.  The service trains itself after eight
weeks, watches quietly, then — when Mallory launches a balanced Class-1B
theft in week 13 — raises a victim alert, quarantines the poisoned week
from retraining, and keeps firing while the attack persists.

Run:  python examples/online_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.core import KLDDetector, TheftMonitoringService
from repro.data.consumers import ConsumerProfile, ConsumerType
from repro.data.synthetic import generate_consumer_series
from repro.timeseries.seasonal import SLOTS_PER_WEEK

CONSUMERS = ("house-a", "house-b", "house-c", "house-d")
TOTAL_WEEKS = 16
ATTACK_WEEK = 13
MALLORY, VICTIM = "house-a", "house-b"
STEAL_KW = 2.0


def main() -> None:
    # Ground-truth consumption for each home.
    series = {}
    for i, cid in enumerate(CONSUMERS):
        profile = ConsumerProfile(
            consumer_id=cid,
            kind=ConsumerType.RESIDENTIAL,
            scale_kw=0.8 + 0.4 * i,
            vacation_rate=0.0,
            party_rate=0.0,
        )
        series[cid] = generate_consumer_series(
            profile, TOTAL_WEEKS, np.random.default_rng(40 + i)
        )

    # A conservative operating point: with only ~10 training weeks the
    # empirical KLD quantiles are coarse, so alpha = 1% keeps seasonal
    # drift from chattering while the x100 attack still screams.
    service = TheftMonitoringService(
        detector_factory=lambda: KLDDetector(significance=0.01),
        min_training_weeks=10,
        retrain_every_weeks=4,
    )

    print(f"streaming {TOTAL_WEEKS} weeks of polling cycles...")
    for week in range(TOTAL_WEEKS):
        attacking = week >= ATTACK_WEEK
        for slot in range(SLOTS_PER_WEEK):
            t = week * SLOTS_PER_WEEK + slot
            cycle = {cid: float(series[cid][t]) for cid in CONSUMERS}
            if attacking:
                # Mallory consumes +2 kW, reports her normal value, and
                # the surplus is billed to the victim's meter.
                cycle[VICTIM] = cycle[VICTIM] + STEAL_KW
            report = service.ingest_cycle(cycle)
        if report is None:
            continue
        status = "training" if not service.is_trained else "monitoring"
        alerts = ", ".join(
            f"{a.consumer_id} ({a.nature.value}, x{a.severity:.1f})"
            for a in report.alerts
        )
        marker = " <-- attack active" if attacking else ""
        print(
            f"week {week:>2} [{status}]: "
            + (alerts if alerts else "quiet")
            + marker
        )

    print()
    victims = service.suspected_victims()
    print(f"suspected victims:   {victims}")
    print(f"suspected attackers: {service.suspected_attackers()}")
    assert VICTIM in victims, "the victim should carry an alert"
    print(
        "Step 5 would now audit the victim's feeder: the balanced theft "
        "passes the balance check, so the utility inspects the victim's "
        "siblings - which is where Mallory lives."
    )


if __name__ == "__main__":
    main()
