#!/usr/bin/env python
"""Balance checks and theft investigation on a distribution grid.

Walks through Section V of the paper end-to-end:

1. builds a radial distribution topology (an n-ary tree);
2. deploys smart meters and balance meters;
3. stages a line-tapping theft (Attack Class 1A, Fig. 1) and localises
   it with the W-event rules and the serviceman BFS search (Case 2);
4. stages a balanced Class-1B theft that over-reports a neighbour and
   shows the balance check is blind to it — the gap the KLD detector
   (see quickstart.py) closes.

Run:  python examples/balance_check_investigation.py
"""

from __future__ import annotations

import numpy as np

from repro.grid import (
    BalanceAuditor,
    build_random_topology,
    serviceman_search,
)
from repro.grid.investigation import exhaustive_inspection_cost
from repro.metering import AMINetwork, MeasurementErrorModel


def main() -> None:
    rng = np.random.default_rng(3)
    topology = build_random_topology(n_consumers=64, branching=4, seed=10)
    ami = AMINetwork.deploy(topology, error_model=MeasurementErrorModel.exact())
    print(f"grid: {len(topology.consumers())} consumers, "
          f"{len(topology.internal_nodes())} buses")

    demands = {cid: float(rng.uniform(1.0, 4.0)) for cid in topology.consumers()}

    # --- Scenario 1: a line tap (Attack Class 1A) --------------------
    thief = topology.consumers()[17]
    ami.meter(thief).install_upstream_tap(2.5)
    snapshot = ami.snapshot(demands, rng)
    auditor = BalanceAuditor(topology, tolerance=1e-6)
    report = auditor.audit(snapshot)
    print(f"\nscenario 1: {thief} taps 2.5 kW upstream of an honest meter")
    print(f"balance checks failing: {len(report.failing_nodes())} "
          f"(W propagates to the root: {report.w(topology.root_id)})")

    result = serviceman_search(topology, snapshot)
    print(f"serviceman search: {result.checks_performed} portable-meter "
          f"checks vs {exhaustive_inspection_cost(topology)} exhaustive")
    print(f"suspects: {result.suspect_consumers}")
    assert thief in result.suspect_consumers
    ami.meter(thief).restore()

    # --- Scenario 2: a balanced Class-1B theft ------------------------
    mallory = topology.consumers()[5]
    victims = topology.siblings(mallory)
    victim = victims[0]
    steal_kw = 3.0
    ami.meter(mallory).compromise(lambda m: max(m - steal_kw, 0.0))
    ami.meter(victim).compromise(lambda m: m + steal_kw)
    attacked_demands = dict(demands)
    attacked_demands[mallory] += steal_kw  # Mallory consumes the stolen power
    snapshot = ami.snapshot(attacked_demands, rng)
    report = auditor.audit(snapshot)
    print(f"\nscenario 2: {mallory} steals {steal_kw} kW, billed to {victim}")
    print(f"balance checks failing: {len(report.failing_nodes())}")
    assert not report.any_failure, "balanced theft must evade eq (5)"
    print("the balance check is blind - Proposition 2's over-report is in "
          "play, and only data-driven detection (Section VII) can catch it.")


if __name__ == "__main__":
    main()
