#!/usr/bin/env python
"""Quickstart: train the KLD detector on one consumer and catch an attack.

Generates a small CER-like dataset, fits the paper's KLD detector
(Section VII-D) on a consumer's 60-week training history, verifies a
normal week passes, then injects an Integrated ARIMA attack (the
strongest published Class-1B realisation) and watches it get flagged.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ARIMADetector,
    InjectionContext,
    IntegratedARIMAAttack,
    KLDDetector,
    SyntheticCERConfig,
    generate_cer_like_dataset,
)


def main() -> None:
    # 1. Data: 20 consumers x 74 weeks of half-hourly readings (the CER
    #    shape).  Licence holders can load the real thing instead with
    #    repro.data.load_cer_file("cer_export.txt").
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=20, n_weeks=74, seed=1)
    )
    consumer = dataset.consumers_by_size()[0]  # the juiciest target
    train = dataset.train_matrix(consumer)
    normal_week = dataset.test_matrix(consumer)[0]
    print(f"consumer {consumer}: {train.shape[0]} training weeks, "
          f"mean demand {train.mean():.2f} kW")

    # 2. Detector: KLD with B=10 bins at the 5% significance level.
    detector = KLDDetector(bins=10, significance=0.05).fit(train)
    print(f"KLD threshold (95th pct of training divergences): "
          f"{detector.threshold:.4f}")

    # 3. A normal week should pass.
    result = detector.score_week(normal_week)
    print(f"normal week:  KLD={result.score:.4f}  flagged={result.flagged}")

    # 4. The attack: Mallory replicates the utility's ARIMA confidence
    #    band and injects a truncated-normal week that evades both the
    #    ARIMA detector and the Integrated ARIMA detector.
    arima = ARIMADetector(max_violations=16).fit(train)
    lower, upper = arima.confidence_band()
    context = InjectionContext(
        train_matrix=train,
        actual_week=normal_week,
        band_lower=lower,
        band_upper=upper,
    )
    vector = IntegratedARIMAAttack(direction="over").inject(
        context, np.random.default_rng(7)
    )
    print(f"injected vector: {vector.description}")
    print(f"energy stolen if undetected: {vector.stolen_kwh():,.0f} kWh/week")

    # 5. The ARIMA detector misses it; the KLD detector catches it.
    print(f"ARIMA detector flags attack: {arima.flags(vector.reported)}")
    attack_result = detector.score_week(vector.reported)
    print(f"KLD detector:  KLD={attack_result.score:.4f}  "
          f"flagged={attack_result.flagged}")
    assert attack_result.flagged, "expected the KLD detector to flag this"
    print("OK: the KLD detector caught what the ARIMA detector missed.")


if __name__ == "__main__":
    main()
