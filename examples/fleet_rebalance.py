#!/usr/bin/env python
"""Elastic fleet: live shard handoff with a kill thrown in.

Twelve smart meters stream half-hourly readings into an
:class:`~repro.scaleout.ElasticFleet` of two shards placed on a
consistent-hash ring.  Mid-run the control centre:

* **grows** the fleet — a third shard is added live, and the ring arc
  it owns migrates to it through the snapshot+WAL handoff protocol
  (quiesce -> snapshot -> commit -> install -> finalize);
* **loses a worker** — one shard is killed outright and heals itself
  from its WAL and checkpoint at the next polling cycle, with its
  ownership epoch bumped so any zombie writer is fenced out.

At the end, the fleet's merged weekly verdicts are proven
**bit-identical** to a single unsharded service fed the same readings:
scale-out and chaos are invisible to the detection maths.

Run:  python examples/fleet_rebalance.py
"""

from __future__ import annotations

import tempfile

from repro.core import KLDDetector, TheftMonitoringService
from repro.data import StreamedCERPopulation, SyntheticCERConfig
from repro.resilience import ResilienceConfig
from repro.scaleout import ElasticFleet, merged_signature
from repro.timeseries.seasonal import SLOTS_PER_WEEK

METERS = 12
WEEKS = 3
GROW_AT = SLOTS_PER_WEEK + 30  # mid-week 1: add a shard live
KILL_AT = 2 * SLOTS_PER_WEEK + 10  # week 2: a worker dies


def detector_factory():
    return KLDDetector(significance=0.05)


def service_factory(consumers):
    return TheftMonitoringService(
        detector_factory=detector_factory,
        min_training_weeks=2,
        resilience=ResilienceConfig(),
        population=consumers,
    )


def main() -> None:
    # Readings are a pure function of (seed, cycle): the population is
    # streamed, never materialised, so the same generator feeds both
    # the reference service and the fleet bit-for-bit.
    population = StreamedCERPopulation(
        SyntheticCERConfig(n_consumers=METERS, n_weeks=WEEKS)
    )
    ids = population.consumer_ids

    print(f"reference run: one unsharded service over {METERS} meters")
    solo = service_factory(ids)
    for _, readings in population.iter_cycles():
        solo.ingest_cycle(readings)

    with tempfile.TemporaryDirectory() as base_dir:
        fleet = ElasticFleet(
            ids, base_dir, service_factory, detector_factory, n_shards=2
        )
        try:
            placement = {w.name: len(w.consumers) for w in fleet.workers()}
            print(f"fleet run: ring placement {placement}")
            for cycle, readings in population.iter_cycles():
                if cycle == GROW_AT:
                    before = {
                        w.name: set(w.consumers) for w in fleet.workers()
                    }
                    new_shard = fleet.add_shard()
                    moved = sorted(
                        cid
                        for name, members in before.items()
                        for cid in members
                        if cid not in set(fleet._worker(name).consumers)
                    )
                    print(
                        f"cycle {cycle}: grew to {len(fleet.shards)} "
                        f"shards — {new_shard} took over meters {moved}"
                    )
                if cycle == KILL_AT:
                    victim = fleet.shards[0]
                    fleet.kill(victim)
                    print(
                        f"cycle {cycle}: killed {victim} — it will heal "
                        "from its WAL at the next cycle"
                    )
                fleet.ingest_cycle(readings)

            print(
                f"fleet healed {fleet.restarts_total} worker(s); epochs "
                + ", ".join(
                    f"{name}={fleet.epoch(name)}" for name in fleet.shards
                )
            )
            for report in fleet.merged_reports():
                alerts = ", ".join(
                    f"{a.consumer_id} ({a.nature.value})"
                    for a in report.alerts
                )
                print(
                    f"week {report.week_index}: "
                    f"{len(report.shards)} shard(s) merged, "
                    + (alerts if alerts else "quiet")
                )

            assert fleet.merged_signature() == merged_signature(
                {"solo": solo.reports}
            )
            print(
                "merged fleet verdicts are bit-identical to the "
                "unsharded service: the handoff and the kill changed "
                "nothing the detector can see"
            )
        finally:
            fleet.close()


if __name__ == "__main__":
    main()
