#!/usr/bin/env python
"""Layered defense and streaming detection.

The paper positions the KLD detector as a *complement* to existing
checks, not a replacement (Section VII).  This example assembles the
full layered defense — ARIMA band check, Integrated moment checks, PCA
subspace residual, and the KLD distribution test — then measures each
layer (and the ensemble) against three attack realisations, and finishes
with the streaming time-to-detection analysis of Section VII-D: how many
hours of attacked readings arrive before the alarm.

Run:  python examples/layered_defense.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ARIMADetector,
    IntegratedARIMADetector,
    KLDDetector,
    SyntheticCERConfig,
    generate_cer_like_dataset,
)
from repro.attacks.injection import (
    ARIMAAttack,
    InjectionContext,
    IntegratedARIMAAttack,
    ScalingAttack,
)
from repro.core import LayeredDetector
from repro.detectors import PCADetector
from repro.evaluation import streaming_detection


def main() -> None:
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(n_consumers=12, n_weeks=74, seed=6)
    )
    cid = dataset.consumers_by_size()[0]
    train = dataset.train_matrix(cid)
    actual_week = dataset.test_matrix(cid)[0]

    arima = ARIMADetector(max_violations=16)
    layers = [
        arima,
        IntegratedARIMADetector(arima=arima),
        PCADetector(significance=0.05),
        KLDDetector(significance=0.05),
    ]
    ensemble = LayeredDetector(layers).fit(train)
    lower, upper = arima.confidence_band()
    context = InjectionContext(
        train_matrix=train,
        actual_week=actual_week,
        band_lower=lower,
        band_upper=upper,
    )

    rng = np.random.default_rng(11)
    attacks = {
        "naive 50% under-report": ScalingAttack(factor=0.5).inject(context, rng),
        "ARIMA attack (band-pinned)": ARIMAAttack(direction="over").inject(
            context, rng
        ),
        "Integrated ARIMA attack": IntegratedARIMAAttack(
            direction="over"
        ).inject(context, rng),
    }

    print(f"consumer {cid}: which layer catches which attack?\n")
    names = [layer.name for layer in layers]
    header = f"{'attack':<28}" + "".join(f"{n[:16]:>18}" for n in names)
    print(header + f"{'ENSEMBLE':>10}")
    for label, vector in attacks.items():
        member = ensemble.member_results(vector.reported)
        cells = "".join(
            f"{('FLAG' if member[n].flagged else '-'):>18}" for n in names
        )
        overall = "FLAG" if ensemble.flags(vector.reported) else "-"
        print(f"{label:<28}{cells}{overall:>10}")

    # Streaming: how fast does the KLD layer catch the strongest attack?
    kld = layers[-1]
    vector = attacks["Integrated ARIMA attack"]
    latency = streaming_detection(kld, train[-1], vector.reported)
    if latency.detected:
        print(
            f"\nstreaming KLD: alarm after {latency.slots_to_detection} "
            f"readings ({latency.hours_to_detection:.1f} hours into the week)"
        )
    else:
        print("\nstreaming KLD: not detected within the week")

    normal_latency = streaming_detection(kld, train[-1], actual_week)
    print(
        "streaming KLD on the normal week: "
        + ("false alarm" if normal_latency.detected else "quiet (correct)")
    )


if __name__ == "__main__":
    main()
