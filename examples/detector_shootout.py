#!/usr/bin/env python
"""Detector shoot-out: reproduce the paper's Tables II and III.

Runs the full Section VIII evaluation — the Integrated ARIMA attack as
Attack Classes 1B and 2A/2B plus the Optimal Swap attack as 3A/3B,
against the ARIMA detector, the Integrated ARIMA detector, and the KLD
detector at both significance levels — and prints Metric 1 / Metric 2
tables alongside the headline improvement percentages.

Scale is CLI-configurable; the paper's full run is
``--consumers 500 --vectors 50`` (budget an hour or so).

Run:  python examples/detector_shootout.py [--consumers 40] [--vectors 10]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import (
    EvaluationConfig,
    SyntheticCERConfig,
    generate_cer_like_dataset,
    run_evaluation,
)
from repro.evaluation.tables import (
    improvement_statistics,
    render_table2,
    render_table3,
    table2,
    table3,
)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--consumers", type=int, default=40)
    parser.add_argument("--vectors", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2016)
    args = parser.parse_args(argv)

    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(
            n_consumers=args.consumers, n_weeks=74, seed=args.seed
        )
    )
    config = EvaluationConfig(n_vectors=args.vectors, seed=args.seed)

    started = time.time()
    count = [0]

    def progress(cid: str) -> None:
        count[0] += 1
        if count[0] % 10 == 0:
            print(
                f"  evaluated {count[0]}/{dataset.n_consumers} consumers "
                f"({time.time() - started:.0f}s)",
                file=sys.stderr,
            )

    results = run_evaluation(dataset, config, progress=progress)
    rows2, rows3 = table2(results), table3(results)

    print("\nTable II - Metric 1: % of consumers with successful detection")
    print(render_table2(rows2))
    print("\nTable III - Metric 2: worst-case weekly gains")
    print(render_table3(rows3))

    stats = improvement_statistics(rows3)
    print(
        f"\nIntegrated ARIMA detector cuts 1B theft by "
        f"{stats.integrated_over_arima:.1f}% vs the ARIMA detector "
        f"(paper: ~78%)"
    )
    print(
        f"The KLD detector cuts a further {stats.kld_over_integrated:.1f}% "
        f"vs the Integrated ARIMA detector (paper: ~94.8%)"
    )


if __name__ == "__main__":
    main()
