"""Autocorrelation and partial autocorrelation functions."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelError


def acf(series: np.ndarray, nlags: int) -> np.ndarray:
    """Sample autocorrelation for lags ``0..nlags`` (biased estimator).

    The biased (``1/n``) estimator is used because it guarantees a positive
    semi-definite autocovariance sequence, which Yule-Walker fitting needs.
    """
    if nlags < 0:
        raise ConfigurationError(f"nlags must be >= 0, got {nlags}")
    arr = np.asarray(series, dtype=float).ravel()
    n = arr.size
    if n <= nlags:
        raise ModelError(f"series of length {n} too short for {nlags} lags")
    centred = arr - arr.mean()
    denom = float(centred @ centred)
    if denom == 0.0:
        # Constant series: autocorrelation is defined as 1 at lag 0 and 0
        # elsewhere by convention here.
        out = np.zeros(nlags + 1)
        out[0] = 1.0
        return out
    out = np.empty(nlags + 1)
    out[0] = 1.0
    for lag in range(1, nlags + 1):
        out[lag] = float(centred[lag:] @ centred[:-lag]) / denom
    return out


def pacf(series: np.ndarray, nlags: int) -> np.ndarray:
    """Partial autocorrelation for lags ``0..nlags`` via Durbin-Levinson."""
    rho = acf(series, nlags)
    out = np.empty(nlags + 1)
    out[0] = 1.0
    if nlags == 0:
        return out
    # Durbin-Levinson recursion.
    phi_prev = np.array([rho[1]])
    out[1] = rho[1]
    for k in range(2, nlags + 1):
        num = rho[k] - float(phi_prev @ rho[k - 1 : 0 : -1])
        den = 1.0 - float(phi_prev @ rho[1:k])
        phi_kk = num / den if abs(den) > 1e-12 else 0.0
        phi_new = np.empty(k)
        phi_new[:-1] = phi_prev - phi_kk * phi_prev[::-1]
        phi_new[-1] = phi_kk
        out[k] = phi_kk
        phi_prev = phi_new
    return out
