"""Forecast value object with confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Forecast:
    """Multi-step point forecast with symmetric confidence bands.

    Attributes
    ----------
    mean:
        Point forecasts, one per horizon step.
    std:
        Forecast standard errors, one per horizon step.
    z:
        The z-score used for the default interval (e.g. 1.96 for 95%).
    """

    mean: np.ndarray = field(repr=False)
    std: np.ndarray = field(repr=False)
    z: float = 1.959963984540054

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=float).ravel()
        std = np.asarray(self.std, dtype=float).ravel()
        if mean.shape != std.shape:
            raise ConfigurationError("mean and std must have equal length")
        if np.any(std < 0):
            raise ConfigurationError("forecast std must be non-negative")
        if self.z <= 0:
            raise ConfigurationError(f"z must be positive, got {self.z}")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "std", std)

    @property
    def horizon(self) -> int:
        return int(self.mean.size)

    @property
    def lower(self) -> np.ndarray:
        """Lower confidence bound at the default z."""
        return self.mean - self.z * self.std

    @property
    def upper(self) -> np.ndarray:
        """Upper confidence bound at the default z."""
        return self.mean + self.z * self.std

    def interval(self, z: float) -> tuple[np.ndarray, np.ndarray]:
        """Confidence bounds at a caller-supplied z-score."""
        if z <= 0:
            raise ConfigurationError(f"z must be positive, got {z}")
        return self.mean - z * self.std, self.mean + z * self.std

    def contains(self, values: np.ndarray, z: float | None = None) -> np.ndarray:
        """Boolean mask of which ``values`` fall inside the band."""
        lo, hi = self.interval(self.z if z is None else z)
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size != self.horizon:
            raise ConfigurationError(
                f"expected {self.horizon} values, got {arr.size}"
            )
        return (arr >= lo) & (arr <= hi)
