"""Model order selection by information criteria."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelError
from repro.timeseries.arima import ARIMA


def aic(loglikelihood: float, n_params: int) -> float:
    """Akaike information criterion."""
    return 2.0 * n_params - 2.0 * loglikelihood


def select_order(
    series: np.ndarray,
    p_values: Sequence[int] = (0, 1, 2, 3),
    d_values: Sequence[int] = (0, 1),
    q_values: Sequence[int] = (0, 1, 2),
    refine: bool = False,
) -> tuple[int, int, int]:
    """Grid-search ARIMA orders, returning the AIC-minimising triple.

    ``refine=False`` by default: Hannan-Rissanen estimates are cheap and
    accurate enough for ranking candidate orders; the winning order can be
    refit with CSS refinement afterwards.
    """
    best: tuple[float, tuple[int, int, int]] | None = None
    failures: list[str] = []
    for p in p_values:
        for d in d_values:
            for q in q_values:
                if p == 0 and q == 0 and d == 0:
                    continue
                try:
                    model = ARIMA(order=(p, d, q), refine=refine).fit(series)
                except ModelError as exc:
                    failures.append(f"({p},{d},{q}): {exc}")
                    continue
                fit = model.params
                score = aic(fit.loglikelihood, fit.n_params)
                if best is None or score < best[0]:
                    best = (score, (p, d, q))
    if best is None:
        raise ModelError(
            "no candidate ARIMA order could be fit; failures: "
            + "; ".join(failures)
        )
    return best[1]


def candidate_orders(
    max_p: int = 3, max_d: int = 1, max_q: int = 2
) -> Iterable[tuple[int, int, int]]:
    """Enumerate the candidate grid used by :func:`select_order`."""
    for p in range(max_p + 1):
        for d in range(max_d + 1):
            for q in range(max_q + 1):
                if p == 0 and q == 0 and d == 0:
                    continue
                yield (p, d, q)
