"""Autoregressive model estimation."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelError
from repro.timeseries.acf import acf


def fit_ar_yule_walker(series: np.ndarray, order: int) -> np.ndarray:
    """Estimate AR(``order``) coefficients from the Yule-Walker equations.

    Returns the coefficient vector ``phi`` of length ``order`` such that
    ``y_t ≈ phi_1 y_{t-1} + ... + phi_p y_{t-p}`` for the mean-centred
    series.
    """
    if order < 1:
        raise ConfigurationError(f"AR order must be >= 1, got {order}")
    rho = acf(series, order)
    # Toeplitz system R phi = r.
    big_r = np.empty((order, order))
    for i in range(order):
        for j in range(order):
            big_r[i, j] = rho[abs(i - j)]
    r = rho[1 : order + 1]
    try:
        return np.linalg.solve(big_r, r)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - degenerate input
        raise ModelError("Yule-Walker system is singular") from exc


def fit_ar_least_squares(
    series: np.ndarray, order: int
) -> tuple[float, np.ndarray, np.ndarray]:
    """Fit AR(``order``) with intercept by ordinary least squares.

    Returns ``(intercept, phi, residuals)`` where ``residuals`` has length
    ``len(series) - order`` and aligns with ``series[order:]``.
    """
    if order < 1:
        raise ConfigurationError(f"AR order must be >= 1, got {order}")
    arr = np.asarray(series, dtype=float).ravel()
    n = arr.size
    if n <= 2 * order:
        raise ModelError(f"series of length {n} too short for AR({order}) OLS fit")
    rows = n - order
    design = np.empty((rows, order + 1))
    design[:, 0] = 1.0
    for lag in range(1, order + 1):
        design[:, lag] = arr[order - lag : n - lag]
    target = arr[order:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = target - design @ coef
    return float(coef[0]), coef[1:], residuals
