"""Time-series substrate: ARIMA modelling built from scratch on numpy/scipy.

The baseline detectors evaluated in the paper (Section VII-C) rely on an
ARIMA model's forecast confidence intervals.  This subpackage provides that
substrate: differencing, autocorrelation, AR/MA estimation, a full
ARIMA(p, d, q) model with conditional-sum-of-squares fitting, multi-step
forecasts with confidence intervals, and AIC-based order selection.
"""

from repro.timeseries.acf import acf, pacf
from repro.timeseries.diagnostics import LjungBoxResult, ljung_box
from repro.timeseries.ar import fit_ar_least_squares, fit_ar_yule_walker
from repro.timeseries.arima import ARIMA, ARIMAFit
from repro.timeseries.differencing import difference, undifference
from repro.timeseries.forecast import Forecast
from repro.timeseries.holtwinters import HoltWinters, HoltWintersParams
from repro.timeseries.order import aic, select_order
from repro.timeseries.seasonal import SeasonalProfile

__all__ = [
    "ARIMA",
    "ARIMAFit",
    "Forecast",
    "HoltWinters",
    "HoltWintersParams",
    "LjungBoxResult",
    "SeasonalProfile",
    "ljung_box",
    "acf",
    "aic",
    "difference",
    "fit_ar_least_squares",
    "fit_ar_yule_walker",
    "pacf",
    "select_order",
    "undifference",
]
