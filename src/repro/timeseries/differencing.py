"""Integer-order differencing and its inverse."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelError


def difference(series: np.ndarray, order: int = 1) -> np.ndarray:
    """Apply the difference operator ``(1 - B)^order`` to ``series``.

    The result has ``len(series) - order`` elements.
    """
    if order < 0:
        raise ConfigurationError(f"difference order must be >= 0, got {order}")
    arr = np.asarray(series, dtype=float).ravel()
    if arr.size <= order:
        raise ModelError(
            f"series of length {arr.size} too short to difference {order} times"
        )
    for _ in range(order):
        arr = np.diff(arr)
    return arr


def undifference(
    differenced: np.ndarray, heads: np.ndarray, order: int = 1
) -> np.ndarray:
    """Invert :func:`difference`.

    Parameters
    ----------
    differenced:
        The differenced series (e.g. forecasts on the differenced scale).
    heads:
        The last ``order`` values of the *original* series, oldest first.
        For ``order == 1`` this is the single value preceding the first
        differenced element.
    order:
        How many integrations to apply.
    """
    if order < 0:
        raise ConfigurationError(f"difference order must be >= 0, got {order}")
    arr = np.asarray(differenced, dtype=float).ravel()
    heads = np.asarray(heads, dtype=float).ravel()
    if heads.size != order:
        raise ConfigurationError(
            f"need exactly {order} head value(s) to undifference, got {heads.size}"
        )
    if order == 0:
        return arr.copy()
    # Rebuild the chain of partial differences from highest order downward.
    # level_heads[k] is the value that precedes the series at difference
    # level k; it is the k-th difference of the original heads.
    level_heads = [heads.copy()]
    for _ in range(order):
        level_heads.append(np.diff(level_heads[-1]))
    current = arr
    for level in range(order, 0, -1):
        seed = level_heads[level - 1][-1]
        current = seed + np.cumsum(current)
    return current
