"""Residual diagnostics for fitted time-series models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2

from repro.errors import ConfigurationError, ModelError
from repro.timeseries.acf import acf


@dataclass(frozen=True)
class LjungBoxResult:
    """Outcome of a Ljung-Box portmanteau test.

    ``statistic`` is Q; ``p_value`` the chi-square tail probability with
    ``dof`` degrees of freedom.  Small p-values reject the null of
    uncorrelated residuals — i.e. the model has left structure behind.
    """

    statistic: float
    p_value: float
    lags: int
    dof: int

    @property
    def residuals_look_white(self) -> bool:
        """Convenience: no evidence of residual autocorrelation at 5%."""
        return self.p_value > 0.05


def ljung_box(
    residuals: np.ndarray, lags: int = 20, n_fitted_params: int = 0
) -> LjungBoxResult:
    """Ljung-Box test on a residual series.

    Parameters
    ----------
    residuals:
        The model's innovation series.
    lags:
        Number of autocorrelation lags pooled into the statistic.
    n_fitted_params:
        Parameters estimated by the model (p + q for an ARMA fit);
        subtracted from the degrees of freedom.
    """
    if lags < 1:
        raise ConfigurationError(f"lags must be >= 1, got {lags}")
    if n_fitted_params < 0:
        raise ConfigurationError(
            f"n_fitted_params must be >= 0, got {n_fitted_params}"
        )
    arr = np.asarray(residuals, dtype=float).ravel()
    n = arr.size
    if n <= lags + 1:
        raise ModelError(
            f"need more than {lags + 1} residuals for {lags} lags, got {n}"
        )
    rho = acf(arr, lags)
    terms = rho[1:] ** 2 / (n - np.arange(1, lags + 1))
    statistic = float(n * (n + 2) * terms.sum())
    dof = max(lags - n_fitted_params, 1)
    p_value = float(chi2.sf(statistic, dof))
    return LjungBoxResult(
        statistic=statistic, p_value=p_value, lags=lags, dof=dof
    )
