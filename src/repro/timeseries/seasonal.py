"""Seasonal profile model for half-hourly consumption data.

Consumer load shows strong weekly periodicity (Section VII-D: "consumers'
weekly consumption patterns tend to repeat").  :class:`SeasonalProfile`
captures the per-slot weekly mean and standard deviation, which the ARIMA
detectors combine with short-horizon dynamics, and which the synthetic data
generator uses as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ModelError

#: Half-hour slots in one week.
SLOTS_PER_WEEK = 336
#: Half-hour slots in one day.
SLOTS_PER_DAY = 48


@dataclass(frozen=True)
class SeasonalProfile:
    """Per-slot weekly mean/std learned from a training matrix.

    Attributes
    ----------
    mean:
        Array of length ``period`` with the average reading per slot.
    std:
        Array of length ``period`` with the per-slot standard deviation.
    period:
        Number of slots in one season (336 for weekly half-hour data).
    """

    mean: np.ndarray = field(repr=False)
    std: np.ndarray = field(repr=False)
    period: int = SLOTS_PER_WEEK

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=float).ravel()
        std = np.asarray(self.std, dtype=float).ravel()
        if mean.size != self.period or std.size != self.period:
            raise ConfigurationError(
                f"profile arrays must have length {self.period}"
            )
        if np.any(std < 0):
            raise ConfigurationError("per-slot std must be non-negative")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "std", std)

    @classmethod
    def fit(cls, series: np.ndarray, period: int = SLOTS_PER_WEEK) -> "SeasonalProfile":
        """Learn a profile from a flat series whose length is >= 2 periods.

        Trailing readings that do not complete a period are ignored.
        """
        arr = np.asarray(series, dtype=float).ravel()
        n_periods = arr.size // period
        if n_periods < 2:
            raise ModelError(
                f"need >= 2 full periods of {period} slots, got {arr.size} readings"
            )
        matrix = arr[: n_periods * period].reshape(n_periods, period)
        return cls(
            mean=matrix.mean(axis=0), std=matrix.std(axis=0), period=period
        )

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "SeasonalProfile":
        """Learn a profile from a ``(weeks, period)`` matrix."""
        m = np.asarray(matrix, dtype=float)
        if m.ndim != 2 or m.shape[0] < 2:
            raise ModelError("matrix must be 2-D with >= 2 rows")
        return cls(mean=m.mean(axis=0), std=m.std(axis=0), period=m.shape[1])

    def predict(self, horizon: int, start_slot: int = 0) -> np.ndarray:
        """Seasonal-naive forecast for ``horizon`` slots from ``start_slot``."""
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        idx = (start_slot + np.arange(horizon)) % self.period
        return self.mean[idx]

    def zscores(self, week: np.ndarray) -> np.ndarray:
        """Per-slot z-scores of one full period of readings."""
        arr = np.asarray(week, dtype=float).ravel()
        if arr.size != self.period:
            raise ConfigurationError(
                f"expected {self.period} readings, got {arr.size}"
            )
        safe_std = np.where(self.std > 1e-9, self.std, 1e-9)
        return (arr - self.mean) / safe_std
