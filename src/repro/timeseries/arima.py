"""ARIMA(p, d, q) estimation and forecasting.

This is a from-scratch implementation (no statsmodels) sufficient for the
paper's detectors: fitting via Hannan-Rissanen initialisation refined by
conditional-sum-of-squares (CSS) optimisation, and multi-step forecasting
with confidence intervals derived from the psi-weight (MA(infinity))
representation of the integrated process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize
from scipy.signal import lfilter

from repro.errors import ConfigurationError, ModelError, NotFittedError
from repro.timeseries.ar import fit_ar_least_squares
from repro.timeseries.differencing import difference
from repro.timeseries.forecast import Forecast


def _css_residuals(
    y: np.ndarray, intercept: float, phi: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """Conditional innovations of an ARMA model on ``y``.

    Pre-sample values and innovations are taken as zero (the standard CSS
    convention); the first ``p`` residuals are therefore conditional on
    that assumption.  Implemented with linear filters so the optimiser can
    afford thousands of evaluations on multi-week half-hourly series.
    """
    y = np.asarray(y, dtype=float)
    n = y.size
    # rhs_t = y_t - c - sum_i phi_i y_{t-i}, zero pre-sample.
    if phi.size:
        ar_poly = np.concatenate(([1.0], -phi))
        rhs = np.convolve(y, ar_poly)[:n] - intercept
    else:
        rhs = y - intercept
    if theta.size == 0:
        return rhs
    # theta(B) eps_t = rhs_t with zero initial conditions.
    ma_poly = np.concatenate(([1.0], theta))
    eps = lfilter([1.0], ma_poly, rhs)
    return np.asarray(eps, dtype=float)


def _psi_weights(
    phi: np.ndarray, theta: np.ndarray, d: int, horizon: int
) -> np.ndarray:
    """First ``horizon`` psi weights of the ARIMA MA(infinity) expansion.

    Solves ``phi*(B) psi(B) = theta(B)`` where ``phi*(B) = phi(B)(1-B)^d``
    is the combined (generalised) autoregressive polynomial.
    """
    # Expand phi(B) (1-B)^d into coefficient form: series applied as
    # y_t = sum_k phistar_k y_{t-k} + ...; we need the polynomial
    # a(B) = 1 - phi_1 B - ... then multiply by (1-B)^d.
    a = np.concatenate(([1.0], -phi))
    for _ in range(d):
        a = np.convolve(a, [1.0, -1.0])
    # a(B) psi(B) = b(B) where b(B) = 1 + theta_1 B + ...
    b = np.concatenate(([1.0], theta))
    psi = np.zeros(horizon)
    psi[0] = 1.0
    for j in range(1, horizon):
        total = b[j] if j < b.size else 0.0
        upper = min(j, a.size - 1)
        for k in range(1, upper + 1):
            total -= a[k] * psi[j - k]
        psi[j] = total
    return psi


@dataclass(frozen=True)
class ARIMAFit:
    """Fitted parameters and diagnostics of an ARIMA model."""

    order: tuple[int, int, int]
    intercept: float
    phi: np.ndarray = field(repr=False)
    theta: np.ndarray = field(repr=False)
    sigma2: float = 0.0
    loglikelihood: float = 0.0
    nobs: int = 0

    @property
    def n_params(self) -> int:
        """Number of estimated parameters (intercept + AR + MA + sigma2)."""
        return 2 + self.phi.size + self.theta.size


class ARIMA:
    """ARIMA(p, d, q) model with CSS fitting and interval forecasts.

    Usage::

        model = ARIMA(order=(3, 1, 2)).fit(series)
        fcst = model.forecast(horizon=336)
        fcst.lower, fcst.upper   # 95% band by default
    """

    def __init__(self, order: tuple[int, int, int], refine: bool = True) -> None:
        p, d, q = order
        if p < 0 or d < 0 or q < 0:
            raise ConfigurationError(f"ARIMA order components must be >= 0: {order}")
        if p == 0 and q == 0 and d == 0:
            raise ConfigurationError("ARIMA(0,0,0) has nothing to estimate")
        self.order = (int(p), int(d), int(q))
        self.refine = bool(refine)
        self._fit: ARIMAFit | None = None
        self._series: np.ndarray | None = None
        self._differenced: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, series: np.ndarray) -> "ARIMA":
        """Estimate parameters from ``series`` and return ``self``."""
        arr = np.asarray(series, dtype=float).ravel()
        p, d, q = self.order
        min_len = max(3 * (p + q + d + 1), 20)
        if arr.size < min_len:
            raise ModelError(
                f"series of length {arr.size} too short to fit ARIMA{self.order}"
            )
        if np.any(~np.isfinite(arr)):
            raise ModelError("series contains non-finite values")
        y = difference(arr, d) if d else arr.copy()
        intercept, phi, theta = self._hannan_rissanen(y, p, q)
        if self.refine and (p + q) > 0:
            intercept, phi, theta = self._css_refine(y, intercept, phi, theta, p, q)
        eps = _css_residuals(y, intercept, phi, theta)
        # Discard the burn-in residuals conditioned on zero pre-sample.
        burn = min(max(p, q), eps.size - 1)
        tail = eps[burn:]
        sigma2 = float(tail @ tail) / max(tail.size, 1)
        sigma2 = max(sigma2, 1e-12)
        n = tail.size
        loglik = -0.5 * n * (np.log(2 * np.pi * sigma2) + 1.0)
        self._fit = ARIMAFit(
            order=self.order,
            intercept=float(intercept),
            phi=np.asarray(phi, dtype=float),
            theta=np.asarray(theta, dtype=float),
            sigma2=sigma2,
            loglikelihood=float(loglik),
            nobs=int(arr.size),
        )
        self._series = arr
        self._differenced = y
        return self

    @staticmethod
    def _hannan_rissanen(
        y: np.ndarray, p: int, q: int
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Hannan-Rissanen two-stage ARMA estimate on the differenced scale."""
        if p == 0 and q == 0:
            return float(y.mean()), np.empty(0), np.empty(0)
        if q == 0:
            intercept, phi, _ = fit_ar_least_squares(y, p)
            return intercept, phi, np.empty(0)
        # Stage 1: long AR to approximate the innovations.
        long_order = min(max(2 * (p + q), 10), max(y.size // 4, p + q + 1))
        try:
            _, _, resid = fit_ar_least_squares(y, long_order)
        except ModelError:
            long_order = max(p + q, 1)
            _, _, resid = fit_ar_least_squares(y, long_order)
        eps = np.concatenate([np.zeros(long_order), resid])
        # Stage 2: OLS of y on its own lags and lagged innovations.
        start = max(p, q)
        rows = y.size - start
        if rows <= p + q + 1:
            raise ModelError("series too short for Hannan-Rissanen stage 2")
        design = np.empty((rows, 1 + p + q))
        design[:, 0] = 1.0
        for i in range(1, p + 1):
            design[:, i] = y[start - i : y.size - i]
        for j in range(1, q + 1):
            design[:, p + j] = eps[start - j : y.size - j]
        target = y[start:]
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        return float(coef[0]), coef[1 : 1 + p], coef[1 + p :]

    @staticmethod
    def _css_refine(
        y: np.ndarray,
        intercept: float,
        phi: np.ndarray,
        theta: np.ndarray,
        p: int,
        q: int,
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Refine parameters by minimising the conditional sum of squares."""

        def unpack(x: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
            return float(x[0]), x[1 : 1 + p], x[1 + p :]

        def objective(x: np.ndarray) -> float:
            c, ph, th = unpack(x)
            # Penalise wildly non-stationary / non-invertible parameters to
            # keep the optimiser in a sane region.
            if np.any(np.abs(ph) > 10) or np.any(np.abs(th) > 10):
                return 1e12
            eps = _css_residuals(y, c, ph, th)
            return float(eps @ eps)

        x0 = np.concatenate(([intercept], phi, theta))
        result = minimize(
            objective,
            x0,
            method="Nelder-Mead",
            options={"maxiter": 200 * x0.size, "xatol": 1e-6, "fatol": 1e-6},
        )
        if result.fun <= objective(x0):
            return unpack(result.x)
        return intercept, phi, theta

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def params(self) -> ARIMAFit:
        """Fitted parameters; raises :class:`NotFittedError` before fit."""
        if self._fit is None:
            raise NotFittedError("ARIMA model has not been fit")
        return self._fit

    def residuals(self) -> np.ndarray:
        """CSS innovations on the differenced scale."""
        fit = self.params
        assert self._differenced is not None
        return _css_residuals(self._differenced, fit.intercept, fit.phi, fit.theta)

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------

    def forecast(self, horizon: int, z: float = 1.959963984540054) -> Forecast:
        """Forecast ``horizon`` steps beyond the end of the training series."""
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        fit = self.params
        assert self._series is not None and self._differenced is not None
        p, d, q = self.order
        y = self._differenced
        eps = _css_residuals(y, fit.intercept, fit.phi, fit.theta)
        # Recursive point forecasts on the differenced scale.
        y_ext = list(y)
        eps_ext = list(eps)
        diff_forecasts = np.empty(horizon)
        for h in range(horizon):
            ar_part = sum(
                fit.phi[i] * y_ext[len(y_ext) - 1 - i] for i in range(p)
            )
            ma_part = 0.0
            for j in range(q):
                idx = len(eps_ext) - 1 - j
                # Future innovations have expectation zero.
                if idx >= eps.size + h:
                    continue
                ma_part += fit.theta[j] * eps_ext[idx]
            value = fit.intercept + ar_part + ma_part
            diff_forecasts[h] = value
            y_ext.append(value)
            eps_ext.append(0.0)
        # Integrate d times back to the original scale.
        point = diff_forecasts
        if d:
            heads = self._series[-d:]
            from repro.timeseries.differencing import undifference

            point = undifference(diff_forecasts, heads, d)
        # Interval widths from psi weights of the integrated process.
        psi = _psi_weights(fit.phi, fit.theta, d, horizon)
        var = fit.sigma2 * np.cumsum(psi * psi)
        return Forecast(mean=point, std=np.sqrt(var), z=z)

    def forecast_in_sample(self) -> np.ndarray:
        """One-step-ahead fitted values on the original scale."""
        fit = self.params
        assert self._series is not None and self._differenced is not None
        p, d, q = self.order
        y = self._differenced
        eps = _css_residuals(y, fit.intercept, fit.phi, fit.theta)
        fitted_diff = y - eps
        if not d:
            return fitted_diff
        # y_t(on diff scale) predicted + previous original values rebuilds
        # the one-step-ahead prediction on the original scale.
        original = self._series
        preds = np.empty(fitted_diff.size)
        for t in range(fitted_diff.size):
            # fitted_diff[t] predicts difference at original index t + d.
            base = original[t + d - 1]
            if d == 1:
                preds[t] = base + fitted_diff[t]
            else:
                # General d: add the predicted d-th difference to the
                # reconstruction from the previous d original values.
                window = original[t : t + d]
                coeffs = [
                    (-1) ** (k + 1) * _binomial(d, k) for k in range(1, d + 1)
                ]
                preds[t] = fitted_diff[t] + sum(
                    c * window[d - k] for k, c in zip(range(1, d + 1), coeffs)
                )
        return preds


def _binomial(n: int, k: int) -> float:
    from math import comb

    return float(comb(n, k))
