"""Holt-Winters triple exponential smoothing with additive seasonality.

Consumption series are dominated by their seasonal component; a seasonal
forecaster produces far tighter confidence bands than the low-order
ARIMA of the paper's baselines.  Provided as an *extension* substrate —
the ablation suite uses it to show how much of the ARIMA detector's
weakness is the model, not the band idea.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ModelError, NotFittedError
from repro.timeseries.forecast import Forecast
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@dataclass(frozen=True)
class HoltWintersParams:
    """Smoothing coefficients (all in [0, 1])."""

    alpha: float = 0.2  # level
    beta: float = 0.01  # trend
    gamma: float = 0.2  # seasonality

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )


class HoltWinters:
    """Additive Holt-Winters smoother/forecaster.

    Parameters
    ----------
    period:
        Season length in slots (336 for weekly seasonality on half-hour
        data; 48 for daily).
    params:
        Smoothing coefficients.
    damp_trend:
        Multiplied into the trend at each forecast step; < 1 keeps long
        horizons from running away on noisy data.
    """

    def __init__(
        self,
        period: int = SLOTS_PER_WEEK,
        params: HoltWintersParams | None = None,
        damp_trend: float = 0.98,
    ) -> None:
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period}")
        if not 0.0 < damp_trend <= 1.0:
            raise ConfigurationError(
                f"damp_trend must be in (0, 1], got {damp_trend}"
            )
        self.period = int(period)
        self.params = params if params is not None else HoltWintersParams()
        self.damp_trend = float(damp_trend)
        self._level: float | None = None
        self._trend: float | None = None
        self._season: np.ndarray | None = None
        self._sigma: float | None = None
        self._t: int = 0

    def fit(self, series: np.ndarray) -> "HoltWinters":
        """Run the smoothing recursions over a training series."""
        arr = np.asarray(series, dtype=float).ravel()
        m = self.period
        if arr.size < 2 * m:
            raise ModelError(
                f"need >= {2 * m} readings (two seasons), got {arr.size}"
            )
        if np.any(~np.isfinite(arr)):
            raise ModelError("series contains non-finite values")
        # Classical initialisation from the first two seasons.
        first = arr[:m]
        second = arr[m : 2 * m]
        level = float(first.mean())
        trend = float((second.mean() - first.mean()) / m)
        season = first - level
        a, b, g = self.params.alpha, self.params.beta, self.params.gamma
        errors = []
        for t in range(m, arr.size):
            s_idx = t % m
            predicted = level + trend + season[s_idx]
            errors.append(arr[t] - predicted)
            new_level = a * (arr[t] - season[s_idx]) + (1 - a) * (level + trend)
            new_trend = b * (new_level - level) + (1 - b) * trend
            season[s_idx] = g * (arr[t] - new_level) + (1 - g) * season[s_idx]
            level, trend = new_level, new_trend
        err = np.asarray(errors[m:] if len(errors) > m else errors)
        self._level = level
        self._trend = trend
        self._season = season
        self._sigma = float(max(err.std(), 1e-9))
        self._t = arr.size
        return self

    def _require_fit(self) -> None:
        if self._level is None:
            raise NotFittedError("Holt-Winters model has not been fit")

    @property
    def sigma(self) -> float:
        """One-step forecast error standard deviation."""
        self._require_fit()
        assert self._sigma is not None
        return self._sigma

    def forecast(self, horizon: int, z: float = 1.959963984540054) -> Forecast:
        """Forecast ``horizon`` slots beyond the end of the training data.

        Band width uses the flat one-step sigma — conservative at short
        horizons but faithful to how a utility applies HW bands in
        practice (re-fit weekly, trust the seasonal shape).
        """
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self._require_fit()
        assert (
            self._level is not None
            and self._trend is not None
            and self._season is not None
        )
        m = self.period
        mean = np.empty(horizon)
        trend_sum = 0.0
        damp = self.damp_trend
        for h in range(1, horizon + 1):
            trend_sum += self._trend * damp**h
            s_idx = (self._t + h - 1) % m
            mean[h - 1] = self._level + trend_sum + self._season[s_idx]
        # Error variance grows mildly with horizon (level uncertainty).
        a = self.params.alpha
        growth = np.sqrt(1.0 + a * a * np.arange(horizon))
        return Forecast(mean=mean, std=self.sigma * growth, z=z)
