"""Online mean/variance via Welford's algorithm.

The Integrated ARIMA detector keeps per-consumer running statistics of the
training readings; a streaming implementation lets the utility head-end
update them as new weeks arrive without retaining the full history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class RunningMoments:
    """Numerically stable running count, mean, and variance."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def update(self, value: float) -> None:
        """Incorporate one observation."""
        if not math.isfinite(value):
            raise ConfigurationError(f"observation must be finite, got {value}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def update_many(self, values: np.ndarray) -> None:
        """Incorporate a batch of observations."""
        for value in np.asarray(values, dtype=float).ravel():
            self.update(float(value))

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance (``n - 1`` denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Combine two sets of moments (parallel/Chan merge)."""
        if other.count == 0:
            return RunningMoments(self.count, self.mean, self._m2)
        if self.count == 0:
            return RunningMoments(other.count, other.mean, other._m2)
        total = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / total
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        return RunningMoments(total, mean, m2)
