"""Truncated normal distribution used by the Integrated ARIMA attack.

The paper injects false readings "from a Truncated Normal Distribution in a
way that the neighbor's readings are over-reported, while remaining within
the ARIMA confidence interval" (Section VIII-B1).  The attack needs a
distribution with a controllable mean and variance whose support is clipped
to the detector's confidence band; :class:`TruncatedNormal` provides exactly
that via inverse-CDF sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erf, erfinv

from repro.errors import ConfigurationError

_SQRT2 = float(np.sqrt(2.0))


def _std_normal_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + erf(np.asarray(x, dtype=float) / _SQRT2))


def _std_normal_ppf(u: np.ndarray) -> np.ndarray:
    return _SQRT2 * erfinv(2.0 * np.asarray(u, dtype=float) - 1.0)


def sample_truncated_normal(
    mu: float,
    sigma: float,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one value per (lower_i, upper_i) pair from TN(mu, sigma).

    Vectorised inverse-CDF sampling with per-element truncation bounds;
    used by the Integrated ARIMA attack, whose bounds follow the ARIMA
    confidence band slot by slot.  Degenerate intervals (no normal mass)
    fall back to uniform draws over the interval.
    """
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    lo = np.asarray(lower, dtype=float).ravel()
    hi = np.asarray(upper, dtype=float).ravel()
    if lo.shape != hi.shape:
        raise ConfigurationError("lower and upper must have equal length")
    if np.any(lo > hi):
        raise ConfigurationError("lower bounds must not exceed upper bounds")
    cdf_lo = _std_normal_cdf((lo - mu) / sigma)
    cdf_hi = _std_normal_cdf((hi - mu) / sigma)
    mass = cdf_hi - cdf_lo
    u = rng.uniform(0.0, 1.0, size=lo.size)
    with np.errstate(divide="ignore", invalid="ignore"):
        values = mu + sigma * _std_normal_ppf(cdf_lo + u * mass)
    degenerate = (mass < 1e-15) | ~np.isfinite(values)
    if np.any(degenerate):
        values[degenerate] = lo[degenerate] + u[degenerate] * (
            hi[degenerate] - lo[degenerate]
        )
    return np.clip(values, lo, hi)


@dataclass(frozen=True)
class TruncatedNormal:
    """Normal distribution with mean ``mu`` and scale ``sigma``, truncated
    to the closed interval ``[lower, upper]``.

    Sampling uses the inverse-CDF method, so a given
    :class:`numpy.random.Generator` state yields reproducible draws.
    """

    mu: float
    sigma: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {self.sigma}")
        if not self.lower < self.upper:
            raise ConfigurationError(
                f"lower bound {self.lower} must be below upper bound {self.upper}"
            )

    def _alpha_beta(self) -> tuple[float, float]:
        alpha = (self.lower - self.mu) / self.sigma
        beta = (self.upper - self.mu) / self.sigma
        return alpha, beta

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` values."""
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        alpha, beta = self._alpha_beta()
        cdf_lo = float(_std_normal_cdf(np.array(alpha)))
        cdf_hi = float(_std_normal_cdf(np.array(beta)))
        if cdf_hi - cdf_lo < 1e-15:
            # The interval carries essentially no normal mass; fall back to
            # uniform draws over the interval, which is the limiting shape.
            return rng.uniform(self.lower, self.upper, size=size)
        u = rng.uniform(cdf_lo, cdf_hi, size=size)
        values = self.mu + self.sigma * _std_normal_ppf(u)
        return np.clip(values, self.lower, self.upper)

    def mean(self) -> float:
        """Analytical mean of the truncated distribution."""
        alpha, beta = self._alpha_beta()
        phi = lambda x: np.exp(-0.5 * x * x) / np.sqrt(2 * np.pi)  # noqa: E731
        z = float(_std_normal_cdf(np.array(beta)) - _std_normal_cdf(np.array(alpha)))
        if z < 1e-15:
            return 0.5 * (self.lower + self.upper)
        return self.mu + self.sigma * (phi(alpha) - phi(beta)) / z

    def variance(self) -> float:
        """Analytical variance of the truncated distribution."""
        alpha, beta = self._alpha_beta()
        phi = lambda x: np.exp(-0.5 * x * x) / np.sqrt(2 * np.pi)  # noqa: E731
        z = float(_std_normal_cdf(np.array(beta)) - _std_normal_cdf(np.array(alpha)))
        if z < 1e-15:
            width = self.upper - self.lower
            return width * width / 12.0
        a_term = (alpha * phi(alpha) - beta * phi(beta)) / z
        b_term = (phi(alpha) - phi(beta)) / z
        return self.sigma**2 * (1.0 + a_term - b_term**2)
