"""Empirical distributions and percentile thresholds.

The KLD detector thresholds the distribution of training-set divergences at
its 90th and 95th percentiles (Section VII-D).  These helpers keep the
threshold semantics in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


def percentile(values: np.ndarray, q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation)."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ConfigurationError("cannot take a percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class EmpiricalDistribution:
    """Frozen empirical distribution of scalar observations.

    Supports percentile queries and upper-tail hypothesis tests: a new
    observation rejects the null ("drawn from this distribution") at
    significance level ``alpha`` when it exceeds the
    ``(1 - alpha)``-quantile.
    """

    samples: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.sort(np.asarray(self.samples, dtype=float).ravel())
        if arr.size == 0:
            raise ConfigurationError("empirical distribution needs >= 1 sample")
        if np.any(~np.isfinite(arr)):
            raise ConfigurationError("samples must be finite")
        object.__setattr__(self, "samples", arr)

    @property
    def size(self) -> int:
        return int(self.samples.size)

    def percentile(self, q: float) -> float:
        return percentile(self.samples, q)

    def upper_tail_threshold(self, alpha: float) -> float:
        """Threshold above which the null is rejected at level ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        return self.percentile(100.0 * (1.0 - alpha))

    def rejects(self, value: float, alpha: float) -> bool:
        """True when ``value`` is anomalous at upper-tail level ``alpha``."""
        return float(value) > self.upper_tail_threshold(alpha)

    def cdf(self, value: float) -> float:
        """Empirical CDF evaluated at ``value``."""
        return float(np.searchsorted(self.samples, value, side="right")) / self.size
