"""Divergence measures between discrete probability distributions.

Equation (12) of the paper defines the per-week KL divergence in base 2.
The helpers here operate on already-normalised probability vectors such as
those produced by :class:`repro.stats.FixedEdgeHistogram`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Small mass used to smooth empty bins in the reference distribution so the
#: divergence stays finite.  Empty bins arise when a candidate week contains
#: values in a bin that the training data never populated.
_SMOOTHING = 1e-12


def _validate_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=float).ravel()
    q = np.asarray(q, dtype=float).ravel()
    if p.shape != q.shape:
        raise ConfigurationError(
            f"distributions must have equal length, got {p.size} and {q.size}"
        )
    if p.size == 0:
        raise ConfigurationError("distributions must be non-empty")
    if np.any(p < -1e-9) or np.any(q < -1e-9):
        raise ConfigurationError("distributions must be non-negative")
    for name, vec in (("p", p), ("q", q)):
        total = vec.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ConfigurationError(f"{name} must sum to 1, sums to {total}")
    return p, q


def kl_divergence(p: np.ndarray, q: np.ndarray, base: float = 2.0) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` in the given log base.

    Terms with ``p_j == 0`` contribute zero (the usual convention).  Zero
    bins in ``q`` are smoothed with a tiny mass so the result is finite;
    this matches the detector's need for a usable ordering even when an
    attack pushes mass into bins the training data never saw.
    """
    p, q = _validate_pair(p, q)
    q = np.where(q <= 0, _SMOOTHING, q)
    mask = p > 0
    terms = p[mask] * (np.log(p[mask]) - np.log(q[mask]))
    return float(terms.sum() / np.log(base))


def symmetric_kl_divergence(p: np.ndarray, q: np.ndarray, base: float = 2.0) -> float:
    """Symmetrised KL divergence ``D(p||q) + D(q||p)``."""
    return kl_divergence(p, q, base=base) + kl_divergence(q, p, base=base)


def js_divergence(p: np.ndarray, q: np.ndarray, base: float = 2.0) -> float:
    """Jensen-Shannon divergence (bounded, symmetric alternative to KL).

    Provided for the ablation study comparing divergence choices; the paper
    itself uses plain KL divergence.
    """
    p, q = _validate_pair(p, q)
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m, base=base) + 0.5 * kl_divergence(q, m, base=base)
