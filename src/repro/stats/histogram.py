"""Fixed-edge histograms.

The KLD detector of the paper (Section VII-D) requires that the *same* bin
edges — derived once from the full training matrix ``X`` — be reused when
histogramming each training week ``X_i`` and each new candidate week.
:class:`FixedEdgeHistogram` encapsulates that contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, NonFiniteInputError


def _require_finite(arr: np.ndarray, what: str) -> None:
    """Reject NaN/inf early with a typed error.

    A NaN reaching ``np.min``/``np.histogram`` does not raise — it
    poisons the edges and every downstream probability/KLD score turns
    NaN, silently disabling detection.  Failing loudly here lets the
    degraded-mode service skip the consumer with an event instead.
    """
    if not np.all(np.isfinite(arr)):
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise NonFiniteInputError(
            f"{what} requires finite values; got {bad} NaN/inf of "
            f"{arr.size}"
        )


def histogram_edges(values: np.ndarray, bins: int) -> np.ndarray:
    """Compute ``bins + 1`` equal-width bin edges spanning ``values``.

    The edges span ``[min(values), max(values)]``.  If all values are equal,
    a degenerate-but-usable interval of width 1 centred on the value is
    returned so downstream probability computations stay well-defined.
    """
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ConfigurationError("cannot compute histogram edges of empty data")
    _require_finite(arr, "histogram_edges")
    lo = float(np.min(arr))
    hi = float(np.max(arr))
    if lo == hi:
        lo -= 0.5
        hi += 0.5
    edges = np.linspace(lo, hi, bins + 1)
    if not np.all(np.diff(edges) > 0):
        # The span is too narrow to subdivide in float64 (e.g. denormal
        # data); widen to a unit interval around the data instead.
        edges = np.linspace(lo - 0.5, hi + 0.5, bins + 1)
    return edges


def relative_frequencies(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Histogram ``values`` against ``edges``, normalised to sum to 1.

    Values that fall outside the edge range are clipped into the first or
    last bin: the paper compares a new (possibly attacked) week against
    edges derived from training data, and attacked readings may exceed the
    historical range.  Dropping them would hide exactly the anomalies the
    detector is looking for.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ConfigurationError("cannot histogram empty data")
    _require_finite(arr, "relative_frequencies")
    edges = np.asarray(edges, dtype=float)
    clipped = np.clip(arr, edges[0], edges[-1])
    counts, _ = np.histogram(clipped, bins=edges)
    return counts / counts.sum()


@dataclass(frozen=True)
class FixedEdgeHistogram:
    """A histogram whose bin edges are frozen at construction time.

    Parameters
    ----------
    edges:
        Monotonically increasing array of ``bins + 1`` edges.
    """

    edges: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ConfigurationError("edges must be a 1-D array of >= 2 values")
        if not np.all(np.diff(edges) > 0):
            raise ConfigurationError("edges must be strictly increasing")
        object.__setattr__(self, "edges", edges)

    @classmethod
    def from_data(cls, values: np.ndarray, bins: int) -> "FixedEdgeHistogram":
        """Build a histogram with equal-width edges spanning ``values``."""
        return cls(histogram_edges(values, bins))

    @classmethod
    def from_quantiles(
        cls, values: np.ndarray, bins: int
    ) -> "FixedEdgeHistogram":
        """Build a histogram with equal-mass (quantile) edges.

        Each bin holds ~the same share of the reference data, so the
        reference distribution is near-uniform and the KLD statistic
        spends its resolution where the data actually lives.  Duplicate
        quantiles (heavy ties) are nudged apart to keep edges strictly
        increasing.
        """
        if bins < 1:
            raise ConfigurationError(f"bins must be >= 1, got {bins}")
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ConfigurationError("cannot compute quantile edges of empty data")
        _require_finite(arr, "from_quantiles")
        edges = np.quantile(arr, np.linspace(0.0, 1.0, bins + 1))
        # Enforce strict monotonicity in the presence of ties.
        for i in range(1, edges.size):
            if edges[i] <= edges[i - 1]:
                edges[i] = np.nextafter(edges[i - 1], np.inf)
        if edges[-1] <= edges[0]:
            edges[-1] = edges[0] + 1.0
        return cls(edges)

    @property
    def bins(self) -> int:
        """Number of bins."""
        return self.edges.size - 1

    def probabilities(self, values: np.ndarray) -> np.ndarray:
        """Relative frequency of ``values`` in each bin (sums to 1)."""
        return relative_frequencies(values, self.edges)

    def counts(self, values: np.ndarray) -> np.ndarray:
        """Raw (clipped) counts of ``values`` in each bin."""
        arr = np.asarray(values, dtype=float).ravel()
        _require_finite(arr, "counts")
        clipped = np.clip(arr, self.edges[0], self.edges[-1])
        counts, _ = np.histogram(clipped, bins=self.edges)
        return counts
