"""Statistics substrate: histograms, divergences, sampling, and summaries.

These are the low-level numerical building blocks that the KLD detector
(:mod:`repro.core`) and the attack injectors (:mod:`repro.attacks`) are
built on.  Everything here is deterministic given a seed and operates on
plain :class:`numpy.ndarray` values.
"""

from repro.stats.histogram import (
    FixedEdgeHistogram,
    histogram_edges,
    relative_frequencies,
)
from repro.stats.divergence import (
    js_divergence,
    kl_divergence,
    symmetric_kl_divergence,
)
from repro.stats.truncated_normal import TruncatedNormal, sample_truncated_normal
from repro.stats.percentile import EmpiricalDistribution, percentile
from repro.stats.running import RunningMoments

__all__ = [
    "EmpiricalDistribution",
    "FixedEdgeHistogram",
    "RunningMoments",
    "TruncatedNormal",
    "histogram_edges",
    "js_divergence",
    "kl_divergence",
    "percentile",
    "relative_frequencies",
    "sample_truncated_normal",
    "symmetric_kl_divergence",
]
