"""Per-consumer circuit breakers for the monitoring pipeline.

A meter whose readings repeatedly go silent or fail validation must not
keep feeding its detector: a half-observed week biases the training
history, and an attacker who can suppress a victim's link could otherwise
blind the control centre one gap at a time.  The classic remedy is the
circuit-breaker state machine (closed → open → half-open) used by
service meshes, applied here per consumer with time measured in polling
cycles rather than wall-clock seconds.

States
------
``CLOSED``
    Normal operation.  Each cycle the consumer either *succeeds* (a
    valid reading arrived) or *fails* (silent, non-finite, or negative);
    ``failure_threshold`` consecutive failures trip the breaker.
``OPEN``
    Quarantine: the consumer is excluded from scoring and training for
    ``cooldown_cycles`` polling cycles.
``HALF_OPEN``
    Probation after the cool-down: ``recovery_probes`` consecutive
    successful cycles re-close the breaker; a single failure re-opens
    it for another full cool-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError


class BreakerState(Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Failure-count breaker with cool-down measured in polling cycles.

    Parameters
    ----------
    failure_threshold:
        Consecutive failed cycles that trip a closed breaker.
    cooldown_cycles:
        Cycles an open breaker waits before probing (half-open).
    recovery_probes:
        Consecutive successful half-open cycles needed to re-close.
    """

    failure_threshold: int = 8
    cooldown_cycles: int = 336
    recovery_probes: int = 4
    state: BreakerState = BreakerState.CLOSED
    _failures: int = field(default=0, repr=False)
    _cooldown_left: int = field(default=0, repr=False)
    _probes: int = field(default=0, repr=False)
    _trips: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_cycles < 1:
            raise ConfigurationError(
                f"cooldown_cycles must be >= 1, got {self.cooldown_cycles}"
            )
        if self.recovery_probes < 1:
            raise ConfigurationError(
                f"recovery_probes must be >= 1, got {self.recovery_probes}"
            )

    @property
    def trip_count(self) -> int:
        """How many times this breaker has ever tripped open."""
        return self._trips

    @property
    def allows_scoring(self) -> bool:
        """Whether the consumer may participate in detection this week."""
        return self.state is BreakerState.CLOSED

    def record(self, success: bool) -> BreakerState:
        """Advance the breaker by one polling cycle; returns the new state."""
        if self.state is BreakerState.CLOSED:
            if success:
                self._failures = 0
            else:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip()
        elif self.state is BreakerState.OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = BreakerState.HALF_OPEN
                self._probes = 0
        else:  # HALF_OPEN
            if success:
                self._probes += 1
                if self._probes >= self.recovery_probes:
                    self.state = BreakerState.CLOSED
                    self._failures = 0
            else:
                self._trip()
        return self.state

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self._cooldown_left = self.cooldown_cycles
        self._failures = 0
        self._probes = 0
        self._trips += 1


@dataclass
class BreakerBoard:
    """One :class:`CircuitBreaker` per consumer, created lazily.

    The board is the service-facing API: each polling cycle the service
    reports every consumer's success/failure, and at week boundaries asks
    which consumers are quarantined.
    """

    failure_threshold: int = 8
    cooldown_cycles: int = 336
    recovery_probes: int = 4
    breakers: dict[str, CircuitBreaker] = field(default_factory=dict)

    def breaker(self, consumer_id: str) -> CircuitBreaker:
        board = self.breakers.get(consumer_id)
        if board is None:
            board = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_cycles=self.cooldown_cycles,
                recovery_probes=self.recovery_probes,
            )
            self.breakers[consumer_id] = board
        return board

    def record(self, consumer_id: str, success: bool) -> BreakerState:
        return self.breaker(consumer_id).record(success)

    def state(self, consumer_id: str) -> BreakerState:
        board = self.breakers.get(consumer_id)
        return board.state if board is not None else BreakerState.CLOSED

    def allows_scoring(self, consumer_id: str) -> bool:
        return self.state(consumer_id) is BreakerState.CLOSED

    def quarantined(self) -> tuple[str, ...]:
        """Consumers whose breakers are currently not closed."""
        return tuple(
            cid
            for cid in sorted(self.breakers)
            if self.breakers[cid].state is not BreakerState.CLOSED
        )

    def trip_count(self, consumer_id: str) -> int:
        board = self.breakers.get(consumer_id)
        return board.trip_count if board is not None else 0

    def state_counts(self) -> dict[BreakerState, int]:
        """How many tracked consumers sit in each breaker state.

        Every state appears as a key (zero-valued when empty) so
        per-state gauges reset cleanly when the last breaker leaves a
        state.
        """
        counts = {state: 0 for state in BreakerState}
        for breaker in self.breakers.values():
            counts[breaker.state] += 1
        return counts

    def total_trips(self) -> int:
        """Lifetime trip events across the whole board."""
        return sum(b.trip_count for b in self.breakers.values())
