"""Crash-safe checkpoint/restore of the monitoring service.

A control-centre process that dies mid-week must not lose weeks of
accumulated history and trained detectors: retraining from scratch opens
exactly the blind window an attacker wants.  The checkpoint captures the
full :class:`~repro.core.online.TheftMonitoringService` state — store
contents, fitted detectors, circuit-breaker states, quarantine sets,
reports — so a restarted process resumes mid-week and produces reports
bit-identical to an uninterrupted run.

Three things are deliberately *not* serialized and must be re-supplied
at restore time, because they are code or open resources, not state: the
``detector_factory`` callable (frequently a lambda, hence unpicklable),
the optional balance ``auditor``, and the optional ``events`` logger
(it holds an open stream).  The service's metrics registry and tracer
*are* state and round-trip with the checkpoint, so a resumed run's
counters continue from where the checkpointed run stopped.

Writes are atomic (temp file + ``os.replace``) so a crash during
checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import TYPE_CHECKING, Callable

from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.online import TheftMonitoringService
    from repro.detectors.base import WeeklyDetector
    from repro.grid.balance import BalanceAuditor
    from repro.observability.events import EventLogger
    from repro.observability.tracing import Tracer

#: Bump when the state layout changes; old checkpoints are rejected.
#: v2 added the observability state (metrics registry + tracer).
#: v3 added the reading-integrity firewall (policy + quarantine store).
#: v4 added overload control (loadcontrol config; reports carry
#: ``shed``).
#: v5 added event-time state (EventTimeConfig, the revision log, and
#: the per-week pinned scoring frameworks).
CHECKPOINT_VERSION = 5

_MAGIC = "fdeta-checkpoint"


def save_checkpoint(service: "TheftMonitoringService", path: str | os.PathLike) -> None:
    """Atomically serialize the full service state to ``path``."""
    payload = {
        "magic": _MAGIC,
        "version": CHECKPOINT_VERSION,
        "state": service._state_dict(),
    }
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(
    path: str | os.PathLike,
    detector_factory: Callable[[], "WeeklyDetector"],
    auditor: "BalanceAuditor | None" = None,
    events: "EventLogger | None" = None,
    tracer: "Tracer | None" = None,
) -> "TheftMonitoringService":
    """Restore a service from ``path``.

    ``detector_factory`` (and ``auditor``, if one was in use) must match
    the ones the checkpointed service was built with; already-fitted
    detectors are restored as-is, the factory is only used for future
    retraining.  ``events`` attaches a fresh event logger; ``tracer``
    overrides the checkpointed trace state when provided.
    """
    from repro.core.online import TheftMonitoringService

    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path!r}") from None
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"checkpoint {path!r} is corrupt: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError(f"{path!r} is not an F-DETA checkpoint")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {version}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    return TheftMonitoringService._from_state(
        payload["state"],
        detector_factory=detector_factory,
        auditor=auditor,
        events=events,
        tracer=tracer,
    )
