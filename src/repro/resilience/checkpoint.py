"""Crash-safe checkpoint/restore of the monitoring service.

A control-centre process that dies mid-week must not lose weeks of
accumulated history and trained detectors: retraining from scratch opens
exactly the blind window an attacker wants.  The checkpoint captures the
full :class:`~repro.core.online.TheftMonitoringService` state — store
contents, fitted detectors, circuit-breaker states, quarantine sets,
reports — so a restarted process resumes mid-week and produces reports
bit-identical to an uninterrupted run.

Three things are deliberately *not* serialized and must be re-supplied
at restore time, because they are code or open resources, not state: the
``detector_factory`` callable (frequently a lambda, hence unpicklable),
the optional balance ``auditor``, and the optional ``events`` logger
(it holds an open stream).  The service's metrics registry and tracer
*are* state and round-trip with the checkpoint, so a resumed run's
counters continue from where the checkpointed run stopped.

Writes are atomic (temp file + fsync + ``os.replace`` + parent-directory
fsync, all through the pluggable :mod:`repro.storage` I/O layer) so a
crash — or an injected fault — during checkpointing leaves the previous
checkpoint intact.  Each file ends with a SHA-256 integrity footer
(``pickle.load`` reads exactly one object and ignores trailing bytes,
so the format stays loadable by structure while at-rest bit-rot becomes
*detectable*: a flipped byte fails verification instead of silently
restoring a forged history).  Saving also preserves the previous
checkpoint at ``<path>.prev`` — the generation the scrubber repairs
from when the current one is corrupt.
"""

from __future__ import annotations

import hashlib
import io as _io
import os
import pickle
from typing import TYPE_CHECKING, Callable

from repro.errors import CheckpointError
from repro.storage.io import (
    atomic_write_bytes,
    classify_storage_error,
    current_io,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.online import TheftMonitoringService
    from repro.detectors.base import WeeklyDetector
    from repro.grid.balance import BalanceAuditor
    from repro.observability.events import EventLogger
    from repro.observability.tracing import Tracer

#: Bump when the state layout changes; old checkpoints are rejected.
#: v2 added the observability state (metrics registry + tracer).
#: v3 added the reading-integrity firewall (policy + quarantine store).
#: v4 added overload control (loadcontrol config; reports carry
#: ``shed``).
#: v5 added event-time state (EventTimeConfig, the revision log, and
#: the per-week pinned scoring frameworks).
#: v6 added training-integrity state (IntegrityConfig, the versioned
#: model registry with lineage and restore points, and the sentinel's
#: suspect-week exclusions).
CHECKPOINT_VERSION = 6

_MAGIC = "fdeta-checkpoint"

#: Integrity footer: 8-byte magic + SHA-256 of every preceding byte.
#: ``pickle.load`` stops at the end of the pickled object, so the
#: footer is invisible to loading and only consulted by verification.
_FOOTER_MAGIC = b"FDETASUM"
_FOOTER_LEN = len(_FOOTER_MAGIC) + hashlib.sha256().digest_size

#: Where :func:`save_checkpoint` preserves the previous generation.
PREVIOUS_SUFFIX = ".prev"


def previous_generation_path(path: str | os.PathLike) -> str:
    """The on-disk location of the preserved previous checkpoint."""
    return os.fspath(path) + PREVIOUS_SUFFIX


def _seal(data: bytes) -> bytes:
    """Append the integrity footer to serialized checkpoint bytes."""
    return data + _FOOTER_MAGIC + hashlib.sha256(data).digest()


def verify_checkpoint_bytes(data: bytes) -> str:
    """Integrity verdict for raw checkpoint bytes.

    Returns ``"ok"`` (footer present and digest matches), ``"legacy"``
    (no footer — written before integrity sealing, unverifiable but not
    evidence of corruption), or ``"corrupt"`` (footer present, digest
    mismatch: the file changed after it was sealed).
    """
    if len(data) < _FOOTER_LEN:
        return "legacy"
    body, footer = data[:-_FOOTER_LEN], data[-_FOOTER_LEN:]
    if not footer.startswith(_FOOTER_MAGIC):
        return "legacy"
    digest = footer[len(_FOOTER_MAGIC):]
    return "ok" if hashlib.sha256(body).digest() == digest else "corrupt"


def verify_checkpoint(path: str | os.PathLike) -> str:
    """Integrity verdict for a checkpoint file.

    ``"missing"`` when the file does not exist; otherwise the
    :func:`verify_checkpoint_bytes` verdict (``"ok"`` / ``"legacy"`` /
    ``"corrupt"``).
    """
    try:
        with open(os.fspath(path), "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return "missing"
    return verify_checkpoint_bytes(data)


def save_checkpoint(
    service: "TheftMonitoringService",
    path: str | os.PathLike,
    *,
    keep_previous: bool = True,
) -> None:
    """Atomically serialize the full service state to ``path``.

    When ``keep_previous`` is true (the default) and a checkpoint
    already exists, its bytes are first preserved at ``<path>.prev`` —
    a generation the scrubber can repair from — via its own atomic
    write, so no crash window ever leaves the tree without at least one
    complete checkpoint.
    """
    payload = {
        "magic": _MAGIC,
        "version": CHECKPOINT_VERSION,
        "state": service._state_dict(),
    }
    target = os.fspath(path)
    data = _seal(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    io = current_io()
    if keep_previous:
        try:
            with open(target, "rb") as handle:
                current = handle.read()
        except OSError:
            current = None
        # Only promote a *verifiably sane* current file to .prev — a
        # corrupt current must never overwrite the good generation the
        # scrubber would repair from.
        if current is not None and verify_checkpoint_bytes(current) != "corrupt":
            atomic_write_bytes(
                previous_generation_path(target),
                current,
                site="checkpoint.prev",
                io=io,
            )
    try:
        atomic_write_bytes(target, data, site="checkpoint", io=io)
    except OSError as exc:  # pragma: no cover - classified by atomic write
        raise classify_storage_error(exc, "checkpoint") from exc


def load_checkpoint(
    path: str | os.PathLike,
    detector_factory: Callable[[], "WeeklyDetector"],
    auditor: "BalanceAuditor | None" = None,
    events: "EventLogger | None" = None,
    tracer: "Tracer | None" = None,
) -> "TheftMonitoringService":
    """Restore a service from ``path``.

    ``detector_factory`` (and ``auditor``, if one was in use) must match
    the ones the checkpointed service was built with; already-fitted
    detectors are restored as-is, the factory is only used for future
    retraining.  ``events`` attaches a fresh event logger; ``tracer``
    overrides the checkpointed trace state when provided.

    A checkpoint whose integrity footer does not match its contents is
    **never** loaded — bit-rot surfaces as :class:`CheckpointError`
    (mentioning the scrubber) instead of silently restoring a forged
    history.
    """
    from repro.core.online import TheftMonitoringService

    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path!r}") from None
    if verify_checkpoint_bytes(data) == "corrupt":
        raise CheckpointError(
            f"checkpoint {path!r} failed integrity verification (at-rest "
            f"corruption); run the checkpoint scrubber to repair from the "
            f"previous generation plus WAL replay"
        )
    try:
        payload = pickle.load(_io.BytesIO(data))
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"checkpoint {path!r} is corrupt: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError(f"{path!r} is not an F-DETA checkpoint")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {version}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    return TheftMonitoringService._from_state(
        payload["state"],
        detector_factory=detector_factory,
        auditor=auditor,
        events=events,
        tracer=tracer,
    )
