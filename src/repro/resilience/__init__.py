"""Fault tolerance for the online monitoring pipeline.

The paper frames F-DETA as "a centralized online algorithm that would run
at an electric utility's control center" (Section VII-A).  Real control
centres poll millions of meters over lossy PLC/mesh links for years at a
time, and an adversary can exploit availability gaps to mask injections;
graceful degradation under faults is therefore a correctness property of
the detector, not an operational nicety.  This subpackage supplies the
building blocks:

* :mod:`repro.resilience.circuit` — per-consumer circuit breakers that
  quarantine meters whose readings repeatedly go silent or fail
  validation, instead of letting them poison their detectors;
* :mod:`repro.resilience.config` — the knobs that govern degraded-mode
  ingestion in :class:`repro.core.online.TheftMonitoringService`;
* :mod:`repro.resilience.retry` — the head-end's within-cycle
  re-polling budget for dropped readings;
* :mod:`repro.resilience.faults` — a fault-injection harness layering
  duplicate, stuck, corrupted, and clock-skewed readings on top of the
  :class:`~repro.metering.channel.LossyChannel` loss model;
* :mod:`repro.resilience.checkpoint` — crash-safe checkpoint/restore of
  the full monitoring-service state.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.circuit import BreakerBoard, BreakerState, CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.faults import FaultInjector, FaultyChannel
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CHECKPOINT_VERSION",
    "CircuitBreaker",
    "FaultInjector",
    "FaultyChannel",
    "ResilienceConfig",
    "RetryPolicy",
    "load_checkpoint",
    "retry_call",
    "save_checkpoint",
]
