"""Configuration for gap-tolerant (degraded-mode) monitoring."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timeseries.seasonal import SLOTS_PER_WEEK


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs governing fault tolerance in the monitoring service.

    Passing an instance to
    :class:`~repro.core.online.TheftMonitoringService` switches ingestion
    from strict mode (any population mismatch raises) to gap-tolerant
    mode: missing or invalid readings become NaN gap markers, short gaps
    are repaired by interpolation at week boundaries, and weeks with
    residual gaps are scored in degraded mode when coverage permits.

    Parameters
    ----------
    failure_threshold:
        Consecutive silent/invalid cycles that trip a consumer's circuit
        breaker (see :mod:`repro.resilience.circuit`).
    cooldown_cycles:
        Polling cycles a tripped breaker stays open before probing.
        Defaults to one week.
    recovery_probes:
        Consecutive good cycles in half-open state needed to re-close.
    max_repair_gap:
        Longest NaN run (in slots) repaired by linear interpolation at
        the week boundary; longer gaps remain missing and reduce the
        week's coverage.
    min_coverage:
        Minimum fraction of observed slots (after repair) a week needs
        to be scored at all; below it the week is suppressed — recorded
        but never alerted on, so an attacker cannot hide behind a link
        they have mostly silenced.
    """

    failure_threshold: int = 8
    cooldown_cycles: int = SLOTS_PER_WEEK
    recovery_probes: int = 4
    max_repair_gap: int = 4
    min_coverage: float = 0.5

    def __post_init__(self) -> None:
        for name in ("failure_threshold", "cooldown_cycles", "recovery_probes"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.max_repair_gap < 0:
            raise ConfigurationError(
                f"max_repair_gap must be >= 0, got {self.max_repair_gap}"
            )
        if not 0.0 < self.min_coverage <= 1.0:
            raise ConfigurationError(
                f"min_coverage must be in (0, 1], got {self.min_coverage}"
            )
