"""Within-cycle re-polling policy for the utility head-end.

When a polling cycle ends with readings missing, the head-end does not
immediately record gaps: AMI protocols allow it to re-request individual
meters while the cycle window is still open.  Re-requests are not free —
each retry round waits longer for stragglers (exponential backoff), so
later rounds consume more of the fixed cycle window.  :class:`RetryPolicy`
models that budget; :class:`~repro.metering.ami.ResilientHeadEnd` applies
it.

Re-polling repairs *independent* drops (a lost frame on an otherwise
healthy link) but deliberately cannot repair *outages*: a meter that is
dark stays dark for the whole cycle, which is exactly the failure the
downstream circuit breaker exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted exponential-backoff re-polling within one cycle.

    Parameters
    ----------
    max_attempts:
        Retry rounds per cycle; each round re-requests every reading
        still missing (budget permitting).
    cycle_budget:
        Total budget units available per polling cycle.  A re-request in
        round ``r`` costs ``backoff_base ** r`` units, modelling the
        geometrically longer wait each backoff round spends inside the
        fixed cycle window.
    backoff_base:
        Growth factor of the per-round cost.
    """

    max_attempts: int = 2
    cycle_budget: int = 64
    backoff_base: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ConfigurationError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        if self.cycle_budget < 0:
            raise ConfigurationError(
                f"cycle_budget must be >= 0, got {self.cycle_budget}"
            )
        if self.backoff_base < 1.0:
            raise ConfigurationError(
                f"backoff_base must be >= 1, got {self.backoff_base}"
            )

    def attempt_cost(self, attempt: int) -> float:
        """Budget units one re-request costs in retry round ``attempt``."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        return float(self.backoff_base**attempt)
