"""The one bounded-retry policy shared across the whole pipeline.

:class:`RetryPolicy` started life as the head-end's within-cycle
re-polling budget (:class:`~repro.metering.ami.ResilientHeadEnd`): when
a polling cycle ends with readings missing, AMI protocols allow
re-requesting individual meters while the cycle window is still open,
and each retry round waits geometrically longer for stragglers.  The
same shape — bounded attempts, exponential backoff — turned out to be
what every other retry loop in the tree needs too, so this module now
owns it for all of them:

* the head-end's re-polling budget (``cycle_budget`` + ``attempt_cost``);
* transient storage errors (:func:`repro.storage.io.retry_io`);
* control-plane transport timeouts
  (:class:`repro.transport.ShardClient`), which additionally use the
  deterministic ``jitter`` so a fleet of retrying coordinators does not
  hammer a recovering shard in lockstep.

:func:`retry_call` is the one generic retry loop those callers share:
run an operation, retry the exception classes the caller declares
retryable, give up after ``max_attempts``.  Backoff never sleeps by
default — the pipeline is simulation-clocked — but the per-attempt
delay is computed (and handed to ``sleep`` when given) so a real
deployment pays real backoff.

Re-polling repairs *independent* drops (a lost frame on an otherwise
healthy link) but deliberately cannot repair *outages*: a meter that is
dark stays dark for the whole cycle, which is exactly the failure the
downstream circuit breaker exists to catch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Tuple, Type, TypeVar

from repro.errors import ConfigurationError

__all__ = ["RetryPolicy", "retry_call"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted exponential-backoff re-polling within one cycle.

    Parameters
    ----------
    max_attempts:
        Retry rounds per cycle; each round re-requests every reading
        still missing (budget permitting).
    cycle_budget:
        Total budget units available per polling cycle.  A re-request in
        round ``r`` costs ``backoff_base ** r`` units, modelling the
        geometrically longer wait each backoff round spends inside the
        fixed cycle window.
    backoff_base:
        Growth factor of the per-round cost.
    jitter:
        Fractional spread applied to :meth:`backoff` delays, in
        ``[0, 1)``.  The jitter is *deterministic* — a keyed hash of
        the caller's label and the attempt number — so chaos runs
        replay bit-identically while distinct callers still decorrelate
        their retry storms.
    """

    max_attempts: int = 2
    cycle_budget: int = 64
    backoff_base: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ConfigurationError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        if self.cycle_budget < 0:
            raise ConfigurationError(
                f"cycle_budget must be >= 0, got {self.cycle_budget}"
            )
        if self.backoff_base < 1.0:
            raise ConfigurationError(
                f"backoff_base must be >= 1, got {self.backoff_base}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def attempt_cost(self, attempt: int) -> float:
        """Budget units one re-request costs in retry round ``attempt``."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        return float(self.backoff_base**attempt)

    def backoff(self, attempt: int, key: str = "") -> float:
        """The (jittered) backoff delay before retry round ``attempt``.

        Without jitter this equals :meth:`attempt_cost`.  With jitter
        the delay is scaled by a factor in ``[1 - jitter, 1 + jitter)``
        derived from a keyed hash of ``(key, attempt)`` — fully
        deterministic, so two coordinators retrying the same shard
        (different keys) spread out while a replayed run backs off
        identically.
        """
        base = self.attempt_cost(attempt)
        if self.jitter == 0.0:
            return base
        digest = hashlib.blake2b(
            f"{key}#{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "big") / float(1 << 64)  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


def retry_call(
    operation: Callable[[], _T],
    *,
    policy: RetryPolicy,
    retryable: Tuple[Type[BaseException], ...] | Type[BaseException],
    label: str = "call",
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: Callable[[float], None] | None = None,
) -> _T:
    """Run ``operation``, retrying ``retryable`` failures under ``policy``.

    The single retry loop behind :func:`repro.storage.io.retry_io` and
    the transport's :class:`~repro.transport.ShardClient`.  Only the
    declared ``retryable`` exception classes are retried — everything
    else propagates on the first raise — and ``policy.max_attempts``
    bounds total attempts.  ``on_retry(attempt, exc)`` fires before
    each retry (metrics, ledgers); ``sleep`` receives the jittered
    :meth:`RetryPolicy.backoff` delay and defaults to ``None`` because
    the pipeline is simulation-clocked (pass ``time.sleep`` in a real
    deployment).
    """
    attempt = 0
    while True:
        try:
            return operation()
        except retryable as exc:
            if attempt + 1 >= policy.max_attempts:
                raise
            attempt += 1
            if on_retry is not None:
                on_retry(attempt, exc)
            if sleep is not None:
                sleep(policy.backoff(attempt, key=label))
