"""Fault-injection harness for chaos-style testing.

:class:`~repro.metering.channel.LossyChannel` models *loss* (drops and
burst outages).  Real AMI fleets additionally produce *wrong* readings:
stale duplicates from store-and-forward relays, stuck registers that
repeat one value, corrupted frames decoding to non-finite or negative
numbers, and clock-skewed meters reporting a slot late.  The injector
below layers those modes on top of a reading stream so integration tests
can assert the monitoring pipeline degrades gracefully instead of
crashing or silently mis-training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.metering.channel import LossyChannel


@dataclass
class FaultInjector:
    """Per-meter reading corruption with persistent per-meter state.

    Parameters
    ----------
    duplicate_rate:
        Per-cycle probability a meter re-sends its *previous* reading
        instead of the current one (a stale duplicate from a relay).
    stuck_rate:
        Per-cycle probability a meter's register sticks; once stuck it
        repeats the same value for a geometric number of cycles with
        mean ``stuck_mean_cycles``.
    stuck_mean_cycles:
        Mean duration of a stuck run.
    corrupt_rate:
        Per-cycle probability a reading arrives corrupted — NaN, +inf,
        or an impossible negative value.
    clock_skew_rate:
        Per-cycle probability a meter's clock slips one polling period;
        a skewed meter permanently reports the previous cycle's value
        (its series is shifted by one slot from the skew onward).
    """

    duplicate_rate: float = 0.0
    stuck_rate: float = 0.0
    stuck_mean_cycles: float = 48.0
    corrupt_rate: float = 0.0
    clock_skew_rate: float = 0.0
    _last: dict[str, float] = field(default_factory=dict, repr=False)
    _stuck: dict[str, tuple[float, int]] = field(default_factory=dict, repr=False)
    _skewed: set[str] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        for name in (
            "duplicate_rate",
            "stuck_rate",
            "corrupt_rate",
            "clock_skew_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.stuck_mean_cycles < 1.0:
            raise ConfigurationError(
                f"stuck_mean_cycles must be >= 1, got {self.stuck_mean_cycles}"
            )

    def is_stuck(self, meter_id: str) -> bool:
        return meter_id in self._stuck

    def is_skewed(self, meter_id: str) -> bool:
        return meter_id in self._skewed

    def reset(self) -> None:
        """Forget all per-meter fault state."""
        self._last.clear()
        self._stuck.clear()
        self._skewed.clear()

    def apply(
        self, readings: Mapping[str, float], rng: np.random.Generator
    ) -> dict[str, float]:
        """Corrupt one cycle of readings; every key is preserved."""
        out: dict[str, float] = {}
        for meter_id, value in readings.items():
            true_value = float(value)
            out[meter_id] = self._faulted(meter_id, true_value, rng)
            self._last[meter_id] = true_value
        return out

    def _faulted(
        self, meter_id: str, value: float, rng: np.random.Generator
    ) -> float:
        stuck = self._stuck.get(meter_id)
        if stuck is not None:
            stuck_value, remaining = stuck
            if remaining > 1:
                self._stuck[meter_id] = (stuck_value, remaining - 1)
            else:
                del self._stuck[meter_id]
            return stuck_value
        if self.stuck_rate > 0 and rng.random() < self.stuck_rate:
            duration = int(rng.geometric(1.0 / self.stuck_mean_cycles))
            if duration > 1:
                self._stuck[meter_id] = (value, duration - 1)
            return value
        if meter_id not in self._skewed:
            if self.clock_skew_rate > 0 and rng.random() < self.clock_skew_rate:
                self._skewed.add(meter_id)
        if meter_id in self._skewed:
            value = self._last.get(meter_id, value)
        elif self.duplicate_rate > 0 and rng.random() < self.duplicate_rate:
            value = self._last.get(meter_id, value)
        if self.corrupt_rate > 0 and rng.random() < self.corrupt_rate:
            return float(rng.choice([np.nan, np.inf, -1.0]))
        return value


@dataclass
class FaultyChannel:
    """A :class:`LossyChannel` whose surviving readings are also faulted.

    Drop-in replacement for ``LossyChannel`` in head-end code: readings
    pass through the :class:`FaultInjector` first (corruption happens at
    the meter/relay), then through the loss model (the link drops frames
    regardless of their content).
    """

    channel: LossyChannel = field(default_factory=LossyChannel)
    faults: FaultInjector = field(default_factory=FaultInjector)

    def transmit(
        self, readings: Mapping[str, float], rng: np.random.Generator
    ) -> dict[str, float]:
        return self.channel.transmit(self.faults.apply(readings, rng), rng)

    def retransmit(
        self, readings: Mapping[str, float], rng: np.random.Generator
    ) -> dict[str, float]:
        """Within-cycle re-request; faults are sticky, so the injector is
        *not* re-applied (the meter would resend the same bad frame)."""
        return self.channel.retransmit(readings, rng)

    def silence(self, meter_id: str, cycles: int | None = None) -> None:
        """Silence a meter (forever when ``cycles`` is ``None``)."""
        self.channel.silence(meter_id, cycles)

    def in_outage(self, meter_id: str) -> bool:
        return self.channel.in_outage(meter_id)

    def reset(self) -> None:
        self.channel.reset()
        self.faults.reset()
