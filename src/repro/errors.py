"""Exception hierarchy for the F-DETA reproduction.

All library-specific exceptions derive from :class:`FDetaError` so that
callers can catch everything raised intentionally by this package with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class FDetaError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(FDetaError):
    """A component was configured with invalid or inconsistent parameters."""


class TopologyError(FDetaError):
    """An operation on the distribution grid topology was invalid."""


class MeteringError(FDetaError):
    """A metering operation failed (unknown meter, bad reading, ...)."""


class PricingError(FDetaError):
    """A pricing scheme was queried outside its domain."""


class DataError(FDetaError):
    """A dataset is malformed, too short, or otherwise unusable."""


class ModelError(FDetaError):
    """A statistical model could not be fit or used for prediction."""


class NotFittedError(ModelError):
    """A model or detector was used before being fit/trained."""


class InjectionError(FDetaError):
    """An attack injection could not be constructed."""


class ResilienceError(FDetaError):
    """A fault-tolerance mechanism could not do its job."""


class CheckpointError(ResilienceError):
    """A monitoring-service checkpoint could not be written or restored."""


class NonFiniteInputError(DataError):
    """A computation received NaN/inf where finite values are required.

    Raised instead of letting non-finite values propagate into detector
    scores, where a NaN would silently defeat every threshold
    comparison (``nan > threshold`` is ``False``).
    """


class LoadControlError(ResilienceError):
    """The overload-control layer (queues, admission, shedding) failed."""


class QueueDrainedError(LoadControlError):
    """A bounded ingestion queue was taken from while empty."""


class SupervisorError(LoadControlError):
    """The monitor-worker supervisor could not keep the fleet healthy."""


class WorkerCrashed(SupervisorError):
    """A supervised monitor worker died mid-cycle.

    Raised by workers (or injected by test harnesses) to signal that the
    worker's in-memory state is gone; the supervisor responds by
    restarting the shard from its checkpoint and write-ahead log.
    """


class HandoffError(SupervisorError):
    """A shard handoff (quiesce → snapshot → commit → install) failed."""


class StaleWriterError(HandoffError):
    """A worker from a superseded ownership epoch tried to write.

    Every shard carries a monotonically increasing *ownership epoch*;
    handoffs and restarts bump it.  A worker fenced behind the current
    epoch must not ingest — its shard has been handed to a newer
    incarnation, and letting the stale writer through would fork the
    shard's history.
    """


class TransportError(ResilienceError):
    """A control-plane message between coordinator and shard failed.

    The typed face of the network between the fleet coordinator and its
    shard workers (:mod:`repro.transport`).  Subclasses distinguish the
    caller's three responses: retry (:class:`TransportTimeout`,
    :class:`CorruptEnvelopeError`), degrade and buffer
    (:class:`UnreachableShardError`), or stand down
    (:class:`StaleLeaseError`).
    """


class TransportTimeout(TransportError):
    """A request's reply window elapsed; delivery is *unknown*.

    The request may never have arrived (dropped) or may have executed
    with its reply lost (delayed) — the caller cannot tell, which is
    exactly why every envelope carries a deterministic request id: the
    retry is either re-executed or absorbed as a duplicate, never
    applied twice.
    """


class CorruptEnvelopeError(TransportError):
    """An envelope's payload checksum failed verification on delivery.

    The endpoint rejects the frame before executing anything, so the
    caller can safely retry with a fresh copy of the same request.
    """


class UnreachableShardError(TransportError):
    """The link to a shard is severed (network partition).

    Retrying immediately cannot help; the coordinator responds by
    marking the shard unreachable, buffering its pending cycles, and
    probing for reconnection on later drains.
    """


class StaleLeaseError(StaleWriterError):
    """A coordinator without the shard's current lease tried to write.

    The lease is the cross-process face of the ownership epoch: it
    lives on the shard's transport endpoint, so even a *zombie*
    coordinator — an old in-process fleet whose fence map was never
    bumped by its successor — is refused at the wire.  Being a
    :class:`StaleWriterError`, every existing fencing defense catches
    it unchanged.
    """


class DurabilityError(ResilienceError):
    """The durable-ingestion layer (WAL, recovery) failed."""


class WALError(DurabilityError):
    """A write-ahead-log operation failed."""


class WALCorruptionError(WALError):
    """A WAL segment is corrupt beyond the tolerated torn tail."""


class RecoveryError(DurabilityError):
    """Crash recovery could not reconcile the WAL with the checkpoint."""


class StorageError(DurabilityError):
    """A durable-storage operation failed at the filesystem layer.

    This is the typed face of a raw :class:`OSError` escaping a durable
    write site (WAL append/sync, checkpoint replace, manifest rename,
    report export).  Subclasses distinguish the operator's three very
    different responses: retry (:class:`TransientStorageError`), stop
    accepting writes (:class:`DiskFullError`), or investigate.
    """


class TransientStorageError(StorageError):
    """A storage operation failed in a way worth retrying (``EIO``-class).

    Media hiccups, interrupted syscalls, and momentary controller
    resets usually succeed on the next attempt; the caller retries
    under a bounded :class:`~repro.resilience.retry.RetryPolicy` before
    escalating.
    """


class DiskFullError(StorageError):
    """The volume is out of space (``ENOSPC``/``EDQUOT``).

    Retrying cannot help until an operator frees space, so the durable
    monitor responds by entering degraded read-only mode instead.
    """


class StorageDegradedError(StorageError):
    """The monitor is in degraded read-only mode and refused a write.

    Raised *before* any bytes are appended, so the rejected cycle was
    never acknowledged — the producer still holds it and must re-deliver
    once :meth:`~repro.durability.recovery.DurableTheftMonitor.try_resume`
    succeeds.
    """


class ScrubError(StorageError):
    """The checkpoint scrubber could not verify or repair a generation."""
