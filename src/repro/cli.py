"""Command-line interface: ``python -m repro`` or the ``fdeta`` script.

Subcommands:

* ``generate`` — write a synthetic CER-like dataset to a CER-format file;
* ``table1`` — print the attack-classification matrix (Table I);
* ``evaluate`` — run the Section VIII evaluation and print Tables II/III;
* ``ablation`` — run the histogram-bin-count sweep;
* ``monitor`` — replay a dataset through the online monitoring service
  over a lossy channel, with optional checkpoint/resume, WAL-backed
  durable ingestion (``--wal-dir``), crash recovery (``--recover``),
  and a reading-integrity quarantine report (``--quarantine-report``).
  Overload controls: a bounded ingestion queue (``--max-queue``),
  priority load shedding (``--shed-policy``), per-cycle deadlines
  (``--cycle-deadline-ms``), and a self-healing supervised worker
  fleet (``--shards``).  Exit status 4 marks a run that completed only
  by shedding load or overrunning its deadline (valid reports,
  degraded coverage — revisit capacity).  Event-time mode
  (``--eventtime``) delivers readings out of order through a
  watermarked reorder buffer (``--lateness-bound``, ``--scramble-delay``)
  and reconciles late arrivals into versioned verdict revisions
  (``--grace-weeks``, ``--revisions-out``); the final weekly verdicts
  are identical to an in-order run's.

The ``evaluate`` and ``monitor`` subcommands accept observability
flags: ``--metrics-out`` (Prometheus text, or a JSON snapshot when the
path ends in ``.json``), ``--trace-out`` (span-tree JSON), and
``--log-json`` (structured JSONL event log).  ``monitor`` additionally
exports ops-plane state — ``--health-out`` (per-shard liveness/
readiness), ``--slo-out`` (error-budget burn rates), and
``--profile-out`` (hot-path stage profile) — and ``status`` renders
those exports plus the fleet manifest as an operator dashboard.

Storage-fault robustness: ``monitor --storage-faults`` arms a
deterministic fault schedule (ENOSPC, EIO, torn writes, lying fsync,
at-rest bit-rot) against every durable write site, with the injection
evidence written via ``--fault-ledger-out``; ``--scrub`` verifies and
repairs checkpoint generations before starting (pair with
``--checkpoint-generations 2`` so the WAL still covers the generation
gap).  A disk-full WAL write flips the monitor into degraded read-only
mode: ingestion stops, committed verdicts stay servable, and the run
exits 4.

Network-fault robustness: ``monitor --elastic --network-faults`` arms
a deterministic transport fault schedule (drop, delay, dup, reorder,
garble, partition, heal) against the coordinator-to-shard message
seam, with the injection evidence written via
``--transport-ledger-out``.  A partitioned shard degrades (its cycles
buffer for replay) instead of failing the run; before the final
summary every link is healed and the backlog drained, so the merged
verdicts match an undisturbed run bit for bit.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.observability.events import EventLogger
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer

from repro.attacks.taxonomy import render_table_i
from repro.data.loader import load_cer_file, save_cer_file
from repro.data.synthetic import SyntheticCERConfig, generate_cer_like_dataset
from repro.evaluation.ablation import bin_count_sweep
from repro.evaluation.config import EvaluationConfig
from repro.evaluation.experiment import run_evaluation
from repro.evaluation.tables import (
    improvement_statistics,
    render_table2,
    render_table3,
    table2,
    table3,
)


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--consumers", type=int, default=60, help="synthetic population size"
    )
    parser.add_argument("--weeks", type=int, default=74, help="weeks of data")
    parser.add_argument("--seed", type=int, default=2016, help="generator seed")
    parser.add_argument(
        "--input", type=str, default=None, help="CER-format file to load instead"
    )


def _dataset_from_args(args: argparse.Namespace):
    if args.input:
        return load_cer_file(args.input)
    return generate_cer_like_dataset(
        SyntheticCERConfig(
            n_consumers=args.consumers, n_weeks=args.weeks, seed=args.seed
        )
    )


def _add_observability_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write metrics here (Prometheus text; JSON snapshot if the "
        "path ends in .json)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, help="write the span trace tree (JSON)"
    )
    parser.add_argument(
        "--log-json",
        type=str,
        default=None,
        help="append structured JSONL events here",
    )


def _add_ops_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--health-out",
        type=str,
        default=None,
        help="write the fleet health report (JSON) here (requires "
        "--elastic or --shards > 1)",
    )
    parser.add_argument(
        "--slo-out",
        type=str,
        default=None,
        help="write the SLO burn-rate report (JSON) here (requires "
        "--elastic)",
    )
    parser.add_argument(
        "--profile-out",
        type=str,
        default=None,
        help="write the hot-path stage profile (JSON) here",
    )


def _event_logger_from_args(args: argparse.Namespace) -> EventLogger | None:
    if args.log_json is None:
        return None
    return EventLogger(path=args.log_json)


def _safe_export(label: str, path: str, write) -> None:
    """Run one export, degrading a storage failure to a logged warning.

    Exports are evidence, not state: by the time they are written the
    verdicts are already committed and printed, so a full or failing
    disk must never turn a completed run into a crash.
    """
    from repro.errors import StorageError

    try:
        write()
    except (StorageError, OSError) as exc:
        print(
            f"warning: could not write {label} to {path!r}: {exc}",
            file=sys.stderr,
        )
        return
    print(f"wrote {label} to {path}", file=sys.stderr)


def _write_observability_outputs(
    args: argparse.Namespace,
    metrics: MetricsRegistry,
    tracer: Tracer | None = None,
) -> None:
    if args.metrics_out:
        writer = (
            metrics.write_json
            if args.metrics_out.endswith(".json")
            else metrics.write_prometheus
        )
        _safe_export(
            "metrics", args.metrics_out, lambda: writer(args.metrics_out)
        )
    if args.trace_out and tracer is not None:
        _safe_export(
            "trace", args.trace_out, lambda: tracer.write(args.trace_out)
        )


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_cer_like_dataset(
        SyntheticCERConfig(
            n_consumers=args.consumers, n_weeks=args.weeks, seed=args.seed
        )
    )
    save_cer_file(dataset, args.output)
    print(
        f"wrote {dataset.n_consumers} consumers x {dataset.n_weeks} weeks "
        f"to {args.output}"
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_table_i())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args)
    config = EvaluationConfig(n_vectors=args.vectors, seed=args.eval_seed)
    # perf_counter, not time.time(): wall clock is not monotonic (NTP
    # steps would produce negative "elapsed" readouts).
    started = time.perf_counter()
    done = {"count": 0}
    metrics = MetricsRegistry()
    tracer = Tracer()
    events = _event_logger_from_args(args)

    def progress(cid: str) -> None:
        done["count"] += 1
        if args.verbose:
            elapsed = time.perf_counter() - started
            print(
                f"  [{done['count']}/{dataset.n_consumers}] {cid} "
                f"({elapsed:.1f}s elapsed)",
                file=sys.stderr,
            )

    if events is not None:
        events.info(
            "evaluation_started",
            consumers=dataset.n_consumers,
            vectors=args.vectors,
            parallel=args.parallel,
        )
    if args.parallel and args.parallel > 1:
        from repro.evaluation.parallel import run_evaluation_parallel

        with tracer.span("evaluate", mode="parallel", workers=args.parallel):
            results = run_evaluation_parallel(
                dataset, config, max_workers=args.parallel, metrics=metrics
            )
    else:
        with tracer.span("evaluate", mode="serial"):
            results = run_evaluation(
                dataset, config, progress=progress, metrics=metrics
            )
    if events is not None:
        events.info(
            "evaluation_finished",
            consumers=results.n_consumers,
            elapsed_s=time.perf_counter() - started,
        )
        events.close()
    _write_observability_outputs(args, metrics, tracer)
    rows2 = table2(results)
    rows3 = table3(results)
    print("Table II - Metric 1: % of consumers with successful detection")
    print(render_table2(rows2))
    print()
    print("Table III - Metric 2: worst-case weekly gains despite detection")
    print(render_table3(rows3))
    stats = improvement_statistics(rows3)
    print()
    print(
        f"Integrated ARIMA detector reduces 1B theft vs ARIMA detector by "
        f"{stats.integrated_over_arima:.1f}%"
    )
    print(
        f"KLD detector reduces 1B theft vs Integrated ARIMA detector by "
        f"{stats.kld_over_integrated:.1f}% (best: {stats.best_kld_detector})"
    )
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.grid.builder import build_random_topology
    from repro.grid.render import render_tree
    from repro.grid.serialization import load_topology, save_topology

    if args.load:
        topology = load_topology(args.load)
    else:
        topology = build_random_topology(
            n_consumers=args.consumers,
            branching=args.branching,
            seed=args.seed,
        )
    if args.save:
        save_topology(topology, args.save)
        print(f"wrote topology to {args.save}")
    print(render_tree(topology, unicode_markers=not args.ascii))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.data.statistics import (
        render_population_summary,
        summarise_population,
    )

    dataset = _dataset_from_args(args)
    print(render_population_summary(summarise_population(dataset)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.evaluation.report import render_markdown_report

    dataset = _dataset_from_args(args)
    config = EvaluationConfig(n_vectors=args.vectors, seed=args.eval_seed)
    results = run_evaluation(dataset, config)
    text = render_markdown_report(results)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Arm storage-fault injection (if requested) around the monitor run.

    The schedule is installed process-wide before any durable write and
    uninstalled afterwards; the injection ledger is written with plain
    stdlib IO so the schedule can never fault its own evidence.
    """
    from repro.errors import ConfigurationError
    from repro.storage import FaultSchedule, FaultyIO, StorageIO, install_io

    if args.fault_ledger_out and not args.storage_faults:
        print("--fault-ledger-out requires --storage-faults", file=sys.stderr)
        return 2
    schedule = None
    if args.storage_faults:
        try:
            schedule = FaultSchedule.parse(",".join(args.storage_faults))
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        install_io(FaultyIO(schedule))
        print(
            f"storage-fault injection armed: {len(schedule.events)} "
            "scheduled fault(s)",
            file=sys.stderr,
        )
    try:
        return _monitor_command(args)
    finally:
        if schedule is not None:
            install_io(StorageIO())
            print(
                f"storage faults injected: {schedule.injected}/"
                f"{len(schedule.events)}",
                file=sys.stderr,
            )
            if args.fault_ledger_out:
                import json

                try:
                    with open(
                        args.fault_ledger_out, "w", encoding="utf-8"
                    ) as handle:
                        json.dump(
                            schedule.to_dict(),
                            handle,
                            indent=2,
                            sort_keys=True,
                        )
                except OSError as exc:
                    print(
                        "warning: could not write fault ledger to "
                        f"{args.fault_ledger_out!r}: {exc}",
                        file=sys.stderr,
                    )
                else:
                    print(
                        f"wrote fault ledger to {args.fault_ledger_out}",
                        file=sys.stderr,
                    )


def _monitor_command(args: argparse.Namespace) -> int:
    import os

    import numpy as np

    from repro.core.kld import KLDDetector
    from repro.core.online import TheftMonitoringService
    from repro.durability import (
        DurableTheftMonitor,
        WriteAheadLog,
        recover_monitor,
    )
    from repro.errors import (
        ConfigurationError,
        DataError,
        DurabilityError,
        InjectionError,
        StorageDegradedError,
        StorageError,
    )
    from repro.loadcontrol import (
        BufferedIngestor,
        LoadControlConfig,
        ShedPolicy,
        Supervisor,
        make_shards,
    )
    from repro.metering.channel import LossyChannel
    from repro.quarantine import FirewallPolicy, ReadingFirewall
    from repro.resilience import FaultInjector, FaultyChannel, ResilienceConfig
    from repro.timeseries.seasonal import SLOTS_PER_WEEK

    if args.recover and not args.wal_dir:
        print("--recover requires --wal-dir", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and not args.wal_dir:
        print(
            "--shards > 1 requires --wal-dir (per-shard WALs and "
            "checkpoints live under it)",
            file=sys.stderr,
        )
        return 2
    if args.shards > 1 and args.checkpoint:
        print(
            "--shards > 1 manages per-shard checkpoints under --wal-dir; "
            "drop --checkpoint",
            file=sys.stderr,
        )
        return 2
    if args.scrub and not (args.wal_dir and args.checkpoint):
        print(
            "--scrub requires --wal-dir and --checkpoint (it verifies "
            "the checkpoint generations and rebuilds a corrupt one from "
            "the WAL)",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_generations < 1:
        print("--checkpoint-generations must be >= 1", file=sys.stderr)
        return 2
    if args.grow_at_week is not None and not args.elastic:
        print("--grow-at-week requires --elastic", file=sys.stderr)
        return 2
    if args.elastic:
        if not args.wal_dir:
            print(
                "--elastic requires --wal-dir (the fleet manifest and "
                "per-shard WALs/checkpoints live under it)",
                file=sys.stderr,
            )
            return 2
        if args.checkpoint:
            print(
                "--elastic manages per-shard checkpoints under --wal-dir; "
                "drop --checkpoint",
                file=sys.stderr,
            )
            return 2
    if args.network_faults and not args.elastic:
        print("--network-faults requires --elastic", file=sys.stderr)
        return 2
    if args.transport_ledger_out and not args.network_faults:
        print(
            "--transport-ledger-out requires --network-faults",
            file=sys.stderr,
        )
        return 2
    if args.lease_ttl_cycles < 1:
        print("--lease-ttl-cycles must be >= 1", file=sys.stderr)
        return 2
    if args.revisions_out and not args.eventtime:
        print("--revisions-out requires --eventtime", file=sys.stderr)
        return 2
    if args.canary_floor is not None and not args.integrity:
        print("--canary-floor requires --integrity", file=sys.stderr)
        return 2
    if args.lineage_out and not args.integrity:
        print("--lineage-out requires --integrity", file=sys.stderr)
        return 2
    if args.lineage_out and (args.eventtime or args.elastic or args.shards > 1):
        print(
            "--lineage-out needs the single-service monitor "
            "(drop --eventtime/--elastic/--shards)",
            file=sys.stderr,
        )
        return 2
    if args.model_rollback is not None:
        if not args.integrity:
            print("--model-rollback requires --integrity", file=sys.stderr)
            return 2
        if not (args.resume or args.recover):
            print(
                "--model-rollback requires --resume or --recover (the "
                "registry holding the target version lives in the "
                "checkpoint)",
                file=sys.stderr,
            )
            return 2
    if args.training_window is not None and args.training_window < 2:
        print("--training-window must be >= 2", file=sys.stderr)
        return 2
    if args.ramp_attack is not None and args.ramp_start_week < 0:
        print("--ramp-start-week must be >= 0", file=sys.stderr)
        return 2
    if args.slo_out and not args.elastic:
        print("--slo-out requires --elastic", file=sys.stderr)
        return 2
    if args.health_out and not (args.elastic or args.shards > 1):
        print(
            "--health-out requires --elastic or --shards > 1",
            file=sys.stderr,
        )
        return 2
    if args.eventtime:
        if args.shards > 1 or args.elastic:
            print(
                "--eventtime does not support --shards > 1 or --elastic",
                file=sys.stderr,
            )
            return 2
        if args.checkpoint or args.resume:
            print(
                "--eventtime persists via --wal-dir delivery records; "
                "drop --checkpoint/--resume",
                file=sys.stderr,
            )
            return 2
        if (
            args.max_queue is not None
            or args.shed_policy != "off"
            or args.cycle_deadline_ms is not None
        ):
            print(
                "--eventtime has its own reorder-buffer backpressure; "
                "drop --max-queue/--shed-policy/--cycle-deadline-ms",
                file=sys.stderr,
            )
            return 2

    loadcontrol: LoadControlConfig | None = None
    if (
        args.max_queue is not None
        or args.shed_policy != "off"
        or args.cycle_deadline_ms is not None
    ):
        try:
            loadcontrol = LoadControlConfig(
                max_queue=args.max_queue if args.max_queue is not None else 1024,
                shed_policy=ShedPolicy(args.shed_policy),
                cycle_deadline_s=(
                    args.cycle_deadline_ms / 1000.0
                    if args.cycle_deadline_ms is not None
                    else None
                ),
            )
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    integrity = None
    if args.integrity:
        from repro.integrity import IntegrityConfig

        overrides = {}
        if args.canary_floor is not None:
            overrides["canary_floor"] = args.canary_floor
        try:
            integrity = IntegrityConfig(**overrides)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    dataset = _dataset_from_args(args)
    ids = dataset.consumers()
    series = {cid: dataset.series(cid) for cid in ids}
    weeks = dataset.n_weeks

    if args.ramp_attack is not None:
        from repro.attacks.injection.ramp import BoilingFrogRampAttack

        if args.ramp_attack not in series:
            print(
                f"--ramp-attack: unknown consumer {args.ramp_attack!r}",
                file=sys.stderr,
            )
            return 2
        try:
            ramp = BoilingFrogRampAttack(
                weekly_decay=args.ramp_decay, floor=args.ramp_floor
            )
        except InjectionError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        series[args.ramp_attack] = ramp.poison_series(
            series[args.ramp_attack],
            start_slot=args.ramp_start_week * SLOTS_PER_WEEK,
        )
        print(
            f"ramp attack armed on {args.ramp_attack}: "
            f"x{args.ramp_decay:g}/week from week {args.ramp_start_week} "
            f"to floor {args.ramp_floor:g}",
            file=sys.stderr,
        )

    def factory():
        return KLDDetector(significance=args.significance)

    events = _event_logger_from_args(args)
    tracer = Tracer()

    def fresh_service(population=ids, eventtime=None) -> TheftMonitoringService:
        return TheftMonitoringService(
            detector_factory=factory,
            min_training_weeks=args.min_training_weeks,
            retrain_every_weeks=args.retrain_every_weeks,
            resilience=ResilienceConfig(min_coverage=args.min_coverage),
            population=population,
            events=events,
            tracer=tracer,
            firewall=ReadingFirewall(
                FirewallPolicy(max_reading_kwh=args.max_reading)
            ),
            loadcontrol=loadcontrol,
            eventtime=eventtime,
            integrity=integrity,
            training_window_weeks=args.training_window,
        )

    if args.eventtime:
        return _run_monitor_eventtime(
            args,
            ids=ids,
            series=series,
            weeks=weeks,
            fresh_service=fresh_service,
            events=events,
        )

    if args.elastic:
        return _run_monitor_elastic(
            args,
            ids=ids,
            series=series,
            weeks=weeks,
            factory=factory,
            fresh_service=fresh_service,
            events=events,
        )

    if args.shards > 1:
        return _run_monitor_sharded(
            args,
            ids=ids,
            series=series,
            weeks=weeks,
            factory=factory,
            fresh_service=fresh_service,
            loadcontrol=loadcontrol,
            events=events,
        )

    if args.scrub:
        from repro.errors import ScrubError
        from repro.storage.scrub import CheckpointScrubber

        scrubber = CheckpointScrubber(
            args.checkpoint,
            args.wal_dir,
            detector_factory=factory,
            service_factory=fresh_service,
            events=events,
        )
        try:
            scrub_report = scrubber.scrub()
        except ScrubError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        for finding in scrub_report.findings:
            line = (
                f"scrub: {finding.generation} checkpoint {finding.path}: "
                f"{finding.status}"
            )
            if finding.action != "none":
                line += f" ({finding.action}"
                if finding.detail:
                    line += f": {finding.detail}"
                line += ")"
            print(line, file=sys.stderr)
        print(
            f"scrub: {scrub_report.checked} generation(s) checked, "
            f"{scrub_report.corrupt} corrupt, "
            f"{scrub_report.repaired} repaired",
            file=sys.stderr,
        )

    resumed = False
    if args.recover:
        try:
            result = recover_monitor(
                args.wal_dir,
                detector_factory=factory,
                checkpoint_path=args.checkpoint,
                service_factory=fresh_service,
                events=events,
                tracer=tracer,
            )
        except DurabilityError as exc:
            print(f"recovery failed: {exc}", file=sys.stderr)
            return 2
        service = result.service
        resumed = result.restored_from_checkpoint or result.replayed_cycles > 0
        print(
            f"recovered from {args.wal_dir} at week "
            f"{service.weeks_completed}, cycle {service.cycles_ingested} "
            f"({result.replayed_cycles} WAL cycle(s) replayed"
            + (", torn tail truncated" if result.torn_tail else "")
            + ")",
            file=sys.stderr,
        )
    elif args.checkpoint and args.resume and os.path.exists(args.checkpoint):
        service = TheftMonitoringService.restore(
            args.checkpoint, factory, events=events, tracer=tracer
        )
        resumed = True
        print(
            f"resumed from {args.checkpoint} at week "
            f"{service.weeks_completed}",
            file=sys.stderr,
        )
        if events is not None:
            events.info(
                "monitor_resumed",
                checkpoint=args.checkpoint,
                week=service.weeks_completed,
            )
    else:
        service = fresh_service()

    if args.model_rollback is not None:
        try:
            restored = service.rollback_model(args.model_rollback)
        except (ConfigurationError, DataError) as exc:
            print(f"model rollback failed: {exc}", file=sys.stderr)
            return 2
        print(
            f"rolled the active model back to v{restored.version} "
            f"(promoted at week {restored.week})",
            file=sys.stderr,
        )

    profiler = None
    if args.profile_out:
        from repro.observability.ops import StageProfiler

        profiler = StageProfiler()
        service.profiler = profiler
    if args.wal_dir:
        wal = WriteAheadLog(args.wal_dir, metrics=service.metrics)
        monitor = DurableTheftMonitor(
            service,
            wal,
            checkpoint_path=args.checkpoint,
            profiler=profiler,
            checkpoint_generations=args.checkpoint_generations,
        )
        ingest = monitor.ingest_cycle
    else:
        monitor = None
        ingest = service.ingest_cycle
    ingestor = None
    if loadcontrol is not None:
        # The bounded queue + backpressure signal sit in front of
        # ingestion; its signal attaches itself to the service so
        # sustained pressure can trigger pre-shedding.
        ingestor = BufferedIngestor(
            ingest,
            config=loadcontrol,
            metrics=service.metrics,
            events=events,
        )
    channel = FaultyChannel(
        channel=LossyChannel(
            drop_rate=args.drop_rate, outage_rate=args.outage_rate
        ),
        faults=FaultInjector(corrupt_rate=args.corrupt_rate),
    )
    start_slot = service.cycles_ingested
    ingested = 0
    storage_degraded = False
    for t in range(start_slot, weeks * SLOTS_PER_WEEK):
        # One rng per cycle, keyed by (seed, cycle): a crashed-and-
        # recovered run resumes at cycle t with the exact noise a
        # never-crashed run would have drawn there, so recovery
        # equivalence is testable bit-for-bit.
        cycle_rng = np.random.default_rng((args.seed + 1, t))
        readings = {cid: float(series[cid][t]) for cid in ids}
        delivered = channel.transmit(readings, cycle_rng)
        try:
            if ingestor is not None:
                if not ingestor.submit(delivered):
                    # Queue full: this replay driver is also the
                    # consumer, so "hold and re-offer" means drain one
                    # cycle first.
                    ingestor.drain(max_cycles=1)
                    ingestor.submit(delivered)
                drained = ingestor.drain()
                report = drained[-1] if drained else None
            else:
                report = ingest(delivered)
        except StorageDegradedError as exc:
            # Disk full: the monitor refused the cycle *before* any
            # byte landed, so nothing acknowledged is lost.  Committed
            # verdicts below stay servable; ingestion stops here.
            print(f"storage degraded at cycle {t}: {exc}", file=sys.stderr)
            storage_degraded = True
            break
        except StorageError as exc:
            print(
                f"unrecoverable storage failure at cycle {t}: {exc}",
                file=sys.stderr,
            )
            if events is not None:
                events.close()
            return 1
        ingested += 1
        if (
            args.crash_after_cycle is not None
            and ingested >= args.crash_after_cycle
        ):
            # A hard kill, not an exception: skips Python cleanup so the
            # WAL is left exactly as a power cut would leave it.
            print(
                f"simulated crash after {ingested} cycle(s) (cycle {t})",
                file=sys.stderr,
            )
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(3)
        if report is None:
            continue
        mean_coverage = (
            sum(report.coverage.values()) / len(report.coverage)
            if report.coverage
            else float("nan")
        )
        week_line = (
            f"week {report.week_index:>3}: "
            f"{len(report.alerts)} alert(s), "
            f"coverage {mean_coverage:.1%}, "
            f"{len(report.quarantined)} quarantined, "
            f"{len(report.suppressed)} suppressed"
        )
        if loadcontrol is not None:
            week_line += f", {len(report.shed)} shed"
        print(week_line)
        for alert in report.alerts:
            print(
                f"    {alert.consumer_id}: {alert.nature.value} "
                f"(severity {alert.severity:.2f}, "
                f"coverage {alert.coverage:.1%})"
            )
        if args.checkpoint and monitor is None:
            try:
                service.checkpoint(args.checkpoint)
            except (StorageError, OSError) as exc:
                # Resumability is lost but the run's verdicts are not;
                # warn and keep monitoring.
                print(
                    f"warning: checkpoint write failed: {exc}",
                    file=sys.stderr,
                )
    if monitor is not None:
        try:
            monitor.close()
        except StorageError as exc:
            print(
                f"warning: final WAL sync failed: {exc}", file=sys.stderr
            )
    attackers = service.suspected_attackers()
    victims = service.suspected_victims()
    total_alerts = sum(len(report.alerts) for report in service.reports)
    print(
        f"monitored {len(ids)} consumers for {service.weeks_completed} weeks"
        + (" (resumed)" if resumed else "")
    )
    print(f"total alerts: {total_alerts}")
    print(f"suspected attackers: {list(attackers) or 'none'}")
    print(f"suspected victims:   {list(victims) or 'none'}")
    if service.firewall is not None:
        print(f"quarantined readings: {len(service.firewall.store)}")
        if args.quarantine_report:
            _safe_export(
                "quarantine report",
                args.quarantine_report,
                lambda: service.firewall.store.write_report(
                    args.quarantine_report
                ),
            )
    if service.model_registry is not None:
        registry = service.model_registry
        active = registry.active_version
        print(
            "model: "
            + (
                f"v{active} active"
                if active is not None
                else "no promoted version"
            )
            + f", {len(registry.versions())} version(s) in the registry"
        )
        last = registry.last_event
        if last is not None:
            print(
                f"last model event: {last.kind} v{last.version} "
                f"(week {last.week})"
            )
        if args.lineage_out:
            _safe_export(
                "model lineage",
                args.lineage_out,
                lambda: registry.write_report(args.lineage_out),
            )
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
    if profiler is not None:
        _safe_export(
            "stage profile",
            args.profile_out,
            lambda: profiler.write(args.profile_out),
        )
    _write_observability_outputs(args, service.metrics, service.tracer)
    if events is not None:
        events.close()
    return _monitor_exit_status(
        shed_total=sum(len(report.shed) for report in service.reports),
        overruns=ingestor.deadlines_overrun if ingestor is not None else 0,
        storage_degraded=storage_degraded,
    )


def _monitor_exit_status(
    shed_total: int, overruns: int, storage_degraded: bool = False
) -> int:
    """0 for a clean run; 4 when the run completed only by shedding
    load, overrunning its cycle deadline, or entering storage
    degraded read-only mode (distinct from hard failure: the weekly
    reports are valid, but coverage or continued ingestion was
    deliberately sacrificed and capacity should be revisited)."""
    if shed_total > 0 or overruns > 0 or storage_degraded:
        detail = (
            f"{shed_total} consumer-week(s) shed, "
            f"{overruns} deadline overrun(s)"
        )
        if storage_degraded:
            detail += ", storage went read-only (disk full)"
        print(f"completed in degraded mode: {detail}", file=sys.stderr)
        return 4
    return 0


def _print_monitor_week(report, suffix: str = "") -> None:
    mean_coverage = (
        sum(report.coverage.values()) / len(report.coverage)
        if report.coverage
        else float("nan")
    )
    print(
        f"week {report.week_index:>3}: "
        f"{len(report.alerts)} alert(s), "
        f"coverage {mean_coverage:.1%}, "
        f"{len(report.quarantined)} quarantined, "
        f"{len(report.suppressed)} suppressed" + suffix
    )
    for alert in report.alerts:
        print(
            f"    {alert.consumer_id}: {alert.nature.value} "
            f"(severity {alert.severity:.2f}, "
            f"coverage {alert.coverage:.1%})"
        )


def _run_monitor_eventtime(
    args: argparse.Namespace,
    ids,
    series,
    weeks: int,
    fresh_service,
    events,
) -> int:
    """``monitor --eventtime``: the out-of-order delivery path.

    Readings traverse the lossy/faulty channel and then a
    :class:`~repro.metering.scramble.ScramblingChannel`, so they reach
    the service late and out of order; the event-time ingestor reorders
    them, reconciles late arrivals, and revises verdicts.  Weekly lines
    printed during the stream are provisional; the ``final weekly
    verdicts`` section at the end matches an in-order run of the same
    dataset exactly (that equivalence is what CI diffs).

    The delivery schedule is a pure function of the dataset and seed, so
    a recovered run (``--recover`` with ``--wal-dir``) regenerates it
    and skips the batches the write-ahead log already holds.
    """
    import os

    import numpy as np

    from repro.durability.wal import WriteAheadLog
    from repro.errors import ConfigurationError
    from repro.eventtime import (
        EventTimeConfig,
        EventTimeIngestor,
        replay_eventtime,
    )
    from repro.metering.channel import LossyChannel
    from repro.metering.scramble import ScramblingChannel
    from repro.resilience import FaultInjector, FaultyChannel
    from repro.timeseries.seasonal import SLOTS_PER_WEEK

    try:
        config = EventTimeConfig(
            lateness_slots=args.lateness_bound, grace_weeks=args.grace_weeks
        )
        # Capping backhaul delay at lateness + grace guarantees every
        # reading is reconciled before its week finalises (no too_late).
        scramble = ScramblingChannel(
            median_delay_slots=args.scramble_delay,
            max_delay_slots=config.lateness_slots + config.grace_slots,
            duplicate_rate=0.02 if args.scramble_delay > 0 else 0.0,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    def service_factory():
        return fresh_service(eventtime=config)

    channel = FaultyChannel(
        channel=LossyChannel(
            drop_rate=args.drop_rate, outage_rate=args.outage_rate
        ),
        faults=FaultInjector(corrupt_rate=args.corrupt_rate),
    )
    batches: list[list] = []
    for t in range(weeks * SLOTS_PER_WEEK):
        cycle_rng = np.random.default_rng((args.seed + 1, t))
        readings = {cid: float(series[cid][t]) for cid in ids}
        delivered = channel.transmit(readings, cycle_rng)
        scramble.push(t, delivered, cycle_rng)
        batches.append(scramble.pop_due(t))
    batches.append(scramble.drain())

    profiler = None
    if args.profile_out:
        from repro.observability.ops import StageProfiler

        profiler = StageProfiler()
    start_batch = 0
    if args.recover:
        result = replay_eventtime(args.wal_dir, service_factory, resume=True)
        ingestor, replay = result
        service = ingestor.service
        start_batch = ingestor.deliveries
        if profiler is not None:
            # Attach after replay so replayed batches are not profiled.
            ingestor.profiler = profiler
            service.profiler = profiler
        print(
            f"recovered from {args.wal_dir}: {start_batch} delivery "
            "batch(es) replayed"
            + (", torn tail truncated" if replay.torn_tail else ""),
            file=sys.stderr,
        )
    else:
        service = service_factory()
        wal = (
            WriteAheadLog(args.wal_dir, metrics=service.metrics)
            if args.wal_dir
            else None
        )
        ingestor = EventTimeIngestor(service, wal=wal, profiler=profiler)

    delivered_batches = 0
    for batch in batches[start_batch:]:
        outcome = ingestor.deliver(batch)
        delivered_batches += 1
        if (
            args.crash_after_cycle is not None
            and delivered_batches >= args.crash_after_cycle
        ):
            print(
                f"simulated crash after {delivered_batches} delivery "
                "batch(es)",
                file=sys.stderr,
            )
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(3)
        for report in outcome.reports:
            _print_monitor_week(report, suffix=" (provisional)")
        for revision in outcome.revisions:
            print(
                f"    revision week {revision.week_index} "
                f"{revision.consumer_id} v{revision.version}: "
                f"{revision.kind.value} "
                f"(score {revision.score_before:.3f} -> "
                f"{revision.score_after:.3f})"
            )
    if not ingestor.finished:
        final = ingestor.finish()
        for report in final.reports:
            _print_monitor_week(report, suffix=" (provisional)")
    if ingestor.wal is not None:
        ingestor.wal.close()

    print("final weekly verdicts:")
    for report in service.reports:
        _print_monitor_week(report)

    attackers = service.suspected_attackers()
    victims = service.suspected_victims()
    total_alerts = sum(len(report.alerts) for report in service.reports)
    by_kind = service.revisions.counts_by_kind()
    print(
        f"monitored {len(ids)} consumers for {service.weeks_completed} "
        "weeks (event-time)"
    )
    print(f"total alerts: {total_alerts}")
    print(
        f"verdict revisions: {len(service.revisions)} "
        f"({by_kind.get('upgrade', 0)} upgrade(s), "
        f"{by_kind.get('downgrade', 0)} downgrade(s))"
    )
    print(f"suspected attackers: {list(attackers) or 'none'}")
    print(f"suspected victims:   {list(victims) or 'none'}")
    too_late = service.firewall.store.counts_by_reason().get("too_late", 0)
    print(
        f"quarantined readings: {len(service.firewall.store)} "
        f"(too_late: {too_late})"
    )
    if args.quarantine_report:
        _safe_export(
            "quarantine report",
            args.quarantine_report,
            lambda: service.firewall.store.write_report(
                args.quarantine_report
            ),
        )
    if args.revisions_out:
        _safe_export(
            "revision report",
            args.revisions_out,
            lambda: service.revisions.write_report(args.revisions_out),
        )
    if profiler is not None:
        _safe_export(
            "stage profile",
            args.profile_out,
            lambda: profiler.write(args.profile_out),
        )
    _write_observability_outputs(args, service.metrics, service.tracer)
    if events is not None:
        events.close()
    return _monitor_exit_status(
        shed_total=sum(len(report.shed) for report in service.reports),
        overruns=0,
    )


def _run_monitor_sharded(
    args: argparse.Namespace,
    ids,
    series,
    weeks: int,
    factory,
    fresh_service,
    loadcontrol,
    events,
) -> int:
    """``monitor --shards N``: the supervised worker-fleet path.

    Each shard is a DurableTheftMonitor over its own WAL directory and
    checkpoint under ``--wal-dir``; the supervisor recovers any shard
    with existing durable state at start, so ``--recover`` is implicit.
    """
    import os

    import numpy as np

    from repro.errors import ConfigurationError, StorageDegradedError
    from repro.loadcontrol import BufferedIngestor, Supervisor, make_shards
    from repro.metering.channel import LossyChannel
    from repro.observability.metrics import MetricsRegistry
    from repro.resilience import FaultInjector, FaultyChannel
    from repro.timeseries.seasonal import SLOTS_PER_WEEK

    fleet_metrics = MetricsRegistry()
    try:
        shards = make_shards(ids, args.shards, args.wal_dir)
        supervisor = Supervisor(
            shards,
            service_factory=lambda spec: fresh_service(spec.consumers),
            detector_factory=factory,
            metrics=fleet_metrics,
            events=events,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    profiler = None
    if args.profile_out:
        from repro.observability.ops import StageProfiler

        profiler = StageProfiler()
        for svc in supervisor.services().values():
            if svc.profiler is None:
                svc.profiler = profiler
    ingest = supervisor.ingest_cycle
    ingestor = None
    if loadcontrol is not None:
        ingestor = BufferedIngestor(
            ingest, config=loadcontrol, metrics=fleet_metrics, events=events
        )
    channel = FaultyChannel(
        channel=LossyChannel(
            drop_rate=args.drop_rate, outage_rate=args.outage_rate
        ),
        faults=FaultInjector(corrupt_rate=args.corrupt_rate),
    )
    start_slot = supervisor.cycle
    if start_slot:
        print(
            f"fleet resumed at cycle {start_slot} "
            f"({args.shards} shard(s) recovered from {args.wal_dir})",
            file=sys.stderr,
        )
    ingested = 0
    storage_degraded = False
    for t in range(start_slot, weeks * SLOTS_PER_WEEK):
        cycle_rng = np.random.default_rng((args.seed + 1, t))
        readings = {cid: float(series[cid][t]) for cid in ids}
        delivered = channel.transmit(readings, cycle_rng)
        try:
            if ingestor is not None:
                if not ingestor.submit(delivered):
                    ingestor.drain(max_cycles=1)
                    ingestor.submit(delivered)
                drained = ingestor.drain()
                result = drained[-1] if drained else None
            else:
                result = ingest(delivered)
        except StorageDegradedError as exc:
            print(f"storage degraded at cycle {t}: {exc}", file=sys.stderr)
            storage_degraded = True
            break
        ingested += 1
        if (
            args.crash_after_cycle is not None
            and ingested >= args.crash_after_cycle
        ):
            print(
                f"simulated crash after {ingested} cycle(s) (cycle {t})",
                file=sys.stderr,
            )
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(3)
        shard_reports = (
            [r for r in result.values() if r is not None]
            if isinstance(result, dict)
            else []
        )
        if not shard_reports:
            continue
        week_index = shard_reports[0].week_index
        alerts = [a for r in shard_reports for a in r.alerts]
        coverage = [
            value for r in shard_reports for value in r.coverage.values()
        ]
        mean_coverage = (
            sum(coverage) / len(coverage) if coverage else float("nan")
        )
        quarantined = sum(len(r.quarantined) for r in shard_reports)
        suppressed = sum(len(r.suppressed) for r in shard_reports)
        shed = sum(len(r.shed) for r in shard_reports)
        week_line = (
            f"week {week_index:>3}: "
            f"{len(alerts)} alert(s), "
            f"coverage {mean_coverage:.1%}, "
            f"{quarantined} quarantined, "
            f"{suppressed} suppressed"
        )
        if loadcontrol is not None:
            week_line += f", {shed} shed"
        week_line += f" [{len(shard_reports)}/{args.shards} shards]"
        print(week_line)
        for r in shard_reports:
            for alert in r.alerts:
                print(
                    f"    {alert.consumer_id}: {alert.nature.value} "
                    f"(severity {alert.severity:.2f}, "
                    f"coverage {alert.coverage:.1%})"
                )
    services = supervisor.services()
    attackers = [
        cid for svc in services.values() for cid in svc.suspected_attackers()
    ]
    victims = [
        cid for svc in services.values() for cid in svc.suspected_victims()
    ]
    total_alerts = sum(
        len(report.alerts)
        for svc in services.values()
        for report in svc.reports
    )
    shed_total = sum(
        len(report.shed)
        for svc in services.values()
        for report in svc.reports
    )
    weeks_completed = min(
        (svc.weeks_completed for svc in services.values()), default=0
    )
    print(
        f"monitored {len(ids)} consumers for {weeks_completed} weeks "
        f"across {args.shards} shards"
    )
    print(f"total alerts: {total_alerts}")
    print(f"suspected attackers: {sorted(attackers) or 'none'}")
    print(f"suspected victims:   {sorted(victims) or 'none'}")
    quarantined_readings = sum(
        len(svc.firewall.store)
        for svc in services.values()
        if svc.firewall is not None
    )
    print(f"quarantined readings: {quarantined_readings}")
    print(f"supervisor restarts: {supervisor.restarts_total}")
    if args.health_out:
        from repro.storage import atomic_write_json

        _safe_export(
            "health report",
            args.health_out,
            lambda: atomic_write_json(
                args.health_out,
                supervisor.health_snapshot(),
                site="export.health",
                sort_keys=True,
            ),
        )
    if profiler is not None:
        _safe_export(
            "stage profile",
            args.profile_out,
            lambda: profiler.write(args.profile_out),
        )
    supervisor.close()
    for svc in services.values():
        fleet_metrics.merge_snapshot(svc.metrics.snapshot())
    _write_observability_outputs(args, fleet_metrics, None)
    if events is not None:
        events.close()
    return _monitor_exit_status(
        shed_total=shed_total,
        overruns=ingestor.deadlines_overrun if ingestor is not None else 0,
        storage_degraded=storage_degraded,
    )


def _run_monitor_elastic(
    args: argparse.Namespace,
    ids,
    series,
    weeks: int,
    factory,
    fresh_service,
    events,
) -> int:
    """``monitor --elastic``: the consistent-hash fleet path.

    Shards are placed on a hash ring and each keeps its own WAL and
    checkpoint under ``--wal-dir``; the fleet manifest there makes
    recovery implicit, and ``--grow-at-week N`` performs a live
    snapshot+WAL shard handoff at the start of week ``N``.
    """
    import os

    import numpy as np

    from repro.errors import ConfigurationError
    from repro.metering.channel import LossyChannel
    from repro.observability.metrics import MetricsRegistry
    from repro.resilience import FaultInjector, FaultyChannel
    from repro.scaleout import ElasticFleet
    from repro.timeseries.seasonal import SLOTS_PER_WEEK
    from repro.transport import FaultyTransport, NetworkFaultSchedule

    transport = None
    net_schedule = None
    if args.network_faults:
        try:
            net_schedule = NetworkFaultSchedule.parse(
                ",".join(args.network_faults)
            )
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        transport = FaultyTransport(net_schedule)
        print(
            f"network-fault injection armed: {len(net_schedule.events)} "
            "scheduled fault(s)",
            file=sys.stderr,
        )
    fleet_metrics = MetricsRegistry()
    fleet_tracer = Tracer(name="fleet") if args.trace_out else None
    slo = None
    if args.slo_out:
        from repro.observability.ops import SLOTracker, default_fleet_objectives

        slo = SLOTracker(default_fleet_objectives())
    try:
        fleet = ElasticFleet(
            ids,
            args.wal_dir,
            lambda consumers: fresh_service(consumers),
            factory,
            n_shards=args.shards,
            metrics=fleet_metrics,
            events=events,
            tracer=fleet_tracer,
            slo=slo,
            transport=transport,
            lease_ttl_cycles=args.lease_ttl_cycles,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    profiler = None

    def _attach_profiler() -> None:
        # Shared across shards and attached to both layers: the durable
        # wrapper charges wal_append/wal_sync/checkpoint, the service
        # charges firewall/ingest/scoring — one profile, whole path.
        for w in fleet.workers():
            if w.monitor is None:
                continue
            inner = w.monitor.inner
            if inner.profiler is None:
                inner.profiler = profiler
            if inner.service.profiler is None:
                inner.service.profiler = profiler

    if args.profile_out:
        from repro.observability.ops import StageProfiler

        profiler = StageProfiler()
        _attach_profiler()
    channel = FaultyChannel(
        channel=LossyChannel(
            drop_rate=args.drop_rate, outage_rate=args.outage_rate
        ),
        faults=FaultInjector(corrupt_rate=args.corrupt_rate),
    )
    start_slot = fleet.cycle
    if start_slot:
        print(
            f"fleet resumed at cycle {start_slot} "
            f"({len(fleet.shards)} shard(s) recovered from {args.wal_dir})",
            file=sys.stderr,
        )
    grow_cycle = (
        args.grow_at_week * SLOTS_PER_WEEK
        if args.grow_at_week is not None
        else None
    )
    ingested = 0
    try:
        for t in range(start_slot, weeks * SLOTS_PER_WEEK):
            if grow_cycle is not None and t == grow_cycle:
                before = {
                    w.name: set(w.consumers) for w in fleet.workers()
                }
                new_shard = fleet.add_shard()
                moved = sum(
                    len(members - set(fleet._worker(name).consumers))
                    for name, members in before.items()
                )
                print(
                    f"live rebalance at cycle {t}: added {new_shard}, "
                    f"moved {moved}/{len(ids)} consumers",
                    file=sys.stderr,
                )
                if profiler is not None:
                    _attach_profiler()
            cycle_rng = np.random.default_rng((args.seed + 1, t))
            readings = {cid: float(series[cid][t]) for cid in ids}
            delivered = channel.transmit(readings, cycle_rng)
            result = fleet.ingest_cycle(delivered)
            if slo is not None and any(
                r is not None for r in result.values()
            ):
                # One SLO observation per completed week: enough points
                # for the burn-rate windows without paying a fleet-wide
                # registry merge on every polling cycle.
                fleet.observe_slo()
            ingested += 1
            if (
                args.crash_after_cycle is not None
                and ingested >= args.crash_after_cycle
            ):
                print(
                    f"simulated crash after {ingested} cycle(s) (cycle {t})",
                    file=sys.stderr,
                )
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(3)
            shard_reports = [r for r in result.values() if r is not None]
            if not shard_reports:
                continue
            week_index = shard_reports[0].week_index
            alerts = [a for r in shard_reports for a in r.alerts]
            coverage = [
                value
                for r in shard_reports
                for value in r.coverage.values()
            ]
            mean_coverage = (
                sum(coverage) / len(coverage) if coverage else float("nan")
            )
            quarantined = sum(len(r.quarantined) for r in shard_reports)
            suppressed = sum(len(r.suppressed) for r in shard_reports)
            print(
                f"week {week_index:>3}: "
                f"{len(alerts)} alert(s), "
                f"coverage {mean_coverage:.1%}, "
                f"{quarantined} quarantined, "
                f"{suppressed} suppressed "
                f"[{len(shard_reports)}/{len(fleet.shards)} shards]"
            )
            for r in shard_reports:
                for alert in r.alerts:
                    print(
                        f"    {alert.consumer_id}: {alert.nature.value} "
                        f"(severity {alert.severity:.2f}, "
                        f"coverage {alert.coverage:.1%})"
                    )
        if transport is not None:
            # Heal every severed link and replay the partition buffers
            # so the final verdicts converge before they are merged.
            transport.heal_all()
            replayed = fleet.drain_backlog()
            if replayed:
                print(
                    f"partition healed: replayed {replayed} buffered "
                    "cycle(s)",
                    file=sys.stderr,
                )
        services = fleet.services()
        # A consumer migrated mid-run appears in both its source and
        # destination shard's histories; dedupe the fleet-wide verdicts.
        attackers = sorted(
            {
                cid
                for svc in services.values()
                for cid in svc.suspected_attackers()
            }
        )
        victims = sorted(
            {
                cid
                for svc in services.values()
                for cid in svc.suspected_victims()
            }
        )
        merged = fleet.merged_reports()
        total_alerts = sum(len(report.alerts) for report in merged)
        print(
            f"monitored {len(ids)} consumers for {len(merged)} weeks "
            f"across {len(fleet.shards)} elastic shard(s)"
        )
        print(f"total alerts: {total_alerts}")
        print(f"suspected attackers: {attackers or 'none'}")
        print(f"suspected victims:   {victims or 'none'}")
        quarantined_readings = sum(
            len(svc.firewall.store)
            for svc in services.values()
            if svc.firewall is not None
        )
        print(f"quarantined readings: {quarantined_readings}")
        print(f"fleet restarts: {fleet.restarts_total}")
        print(
            "shard epochs: "
            + ", ".join(
                f"{name}={fleet.epoch(name)}" for name in fleet.shards
            )
        )
        shed_total = sum(
            len(report.shed)
            for svc in services.values()
            for report in svc.reports
        )
        storage_degraded = any(
            getattr(w.monitor, "read_only", False)
            for w in fleet.workers()
            if w.monitor is not None
        )
        if args.health_out:
            _safe_export(
                "health report",
                args.health_out,
                lambda: fleet.health_report().write(args.health_out),
            )
        if slo is not None:
            fleet.observe_slo()
            _safe_export(
                "SLO report",
                args.slo_out,
                lambda: fleet.slo_report().write(args.slo_out),
            )
        if profiler is not None:
            _safe_export(
                "stage profile",
                args.profile_out,
                lambda: profiler.write(args.profile_out),
            )
        if args.trace_out and fleet_tracer is not None:
            from repro.observability.tracing import stitch_traces
            from repro.storage import atomic_write_json

            _safe_export(
                "trace",
                args.trace_out,
                lambda: atomic_write_json(
                    args.trace_out,
                    {"spans": stitch_traces(fleet.tracers())},
                    site="export.trace",
                    sort_keys=True,
                ),
            )
        merged_metrics = fleet.merged_metrics()
        merged_metrics.merge_snapshot(fleet_metrics.snapshot())
        _write_observability_outputs(args, merged_metrics, None)
    finally:
        fleet.close()
        if net_schedule is not None:
            print(
                f"network faults injected: {net_schedule.injected}/"
                f"{len(net_schedule.events)}",
                file=sys.stderr,
            )
            if args.transport_ledger_out:
                import json

                # Plain stdlib IO: the transport ledger must never
                # route through the seam it documents.
                try:
                    with open(
                        args.transport_ledger_out, "w", encoding="utf-8"
                    ) as handle:
                        json.dump(
                            net_schedule.to_dict(),
                            handle,
                            indent=2,
                            sort_keys=True,
                        )
                except OSError as exc:
                    print(
                        "warning: could not write transport ledger to "
                        f"{args.transport_ledger_out!r}: {exc}",
                        file=sys.stderr,
                    )
                else:
                    print(
                        "wrote transport ledger to "
                        f"{args.transport_ledger_out}",
                        file=sys.stderr,
                    )
    if events is not None:
        events.close()
    return _monitor_exit_status(
        shed_total=shed_total,
        overruns=0,
        storage_degraded=storage_degraded,
    )


def _cmd_status(args: argparse.Namespace) -> int:
    """``status``: render the fleet ops dashboard from exported state.

    Everything is read from files — the fleet manifest (topology +
    epochs + pending handoff) plus the JSON reports the ``monitor``
    subcommand exports via ``--health-out``/``--slo-out``/
    ``--profile-out`` — so the dashboard works on a live fleet's
    directory or on artifacts uploaded from a finished run.
    """
    import json
    import os

    from repro.errors import HandoffError
    from repro.observability.ops import render_status
    from repro.scaleout.handoff import read_manifest

    def _load(path: str | None, label: str):
        if not path:
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {label} {path!r}: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc

    manifest = None
    if args.fleet_dir:
        manifest_path = args.fleet_dir
        if os.path.isdir(manifest_path):
            manifest_path = os.path.join(manifest_path, "fleet.json")
        try:
            manifest = read_manifest(manifest_path)
        except HandoffError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if manifest is None:
            print(f"no fleet manifest at {manifest_path!r}", file=sys.stderr)
            return 2
    health = _load(args.health, "health report")
    slo = _load(args.slo, "SLO report")
    profile = _load(args.profile, "stage profile")
    if manifest is None and health is None and slo is None and profile is None:
        print(
            "nothing to show: pass --fleet-dir and/or --health/--slo/"
            "--profile",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "manifest": manifest,
                    "health": health,
                    "slo": slo,
                    "profile": profile,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            render_status(
                manifest=manifest,
                health=health,
                slo=slo,
                profile=profile,
                top=args.top,
            )
        )
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args)
    consumers = dataset.consumers()[: args.sample]
    points = bin_count_sweep(dataset, consumers)
    print(f"{'bins':>6}{'detection':>12}{'false pos.':>12}")
    for point in points:
        print(
            f"{point.parameter:>6.0f}{point.detection_rate:>11.1%}"
            f"{point.false_positive_rate:>11.1%}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fdeta",
        description="F-DETA electricity-theft detection (DSN 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic CER-format dataset")
    gen.add_argument("output", type=str, help="output file path")
    gen.add_argument("--consumers", type=int, default=500)
    gen.add_argument("--weeks", type=int, default=74)
    gen.add_argument("--seed", type=int, default=2016)
    gen.set_defaults(func=_cmd_generate)

    t1 = sub.add_parser("table1", help="print the attack classification matrix")
    t1.set_defaults(func=_cmd_table1)

    ev = sub.add_parser("evaluate", help="run the Section VIII evaluation")
    _add_dataset_options(ev)
    ev.add_argument("--vectors", type=int, default=50, help="attack trajectories")
    ev.add_argument("--eval-seed", type=int, default=7)
    ev.add_argument(
        "--parallel", type=int, default=1, help="worker processes (1 = serial)"
    )
    ev.add_argument("--verbose", action="store_true")
    _add_observability_options(ev)
    ev.set_defaults(func=_cmd_evaluate)

    topo = sub.add_parser("topology", help="generate/inspect a grid topology")
    topo.add_argument("--consumers", type=int, default=16)
    topo.add_argument("--branching", type=int, default=4)
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--load", type=str, default=None, help="topology JSON")
    topo.add_argument("--save", type=str, default=None, help="write JSON here")
    topo.add_argument("--ascii", action="store_true", help="plain markers")
    topo.set_defaults(func=_cmd_topology)

    stats = sub.add_parser("stats", help="print dataset summary statistics")
    _add_dataset_options(stats)
    stats.set_defaults(func=_cmd_stats)

    rep = sub.add_parser("report", help="write a markdown evaluation report")
    _add_dataset_options(rep)
    rep.add_argument("--vectors", type=int, default=50)
    rep.add_argument("--eval-seed", type=int, default=7)
    rep.add_argument("--output", type=str, default=None)
    rep.set_defaults(func=_cmd_report)

    mon = sub.add_parser(
        "monitor",
        help="replay a dataset through the online service over a lossy link",
    )
    _add_dataset_options(mon)
    mon.add_argument("--drop-rate", type=float, default=0.02)
    mon.add_argument("--outage-rate", type=float, default=0.0005)
    mon.add_argument("--corrupt-rate", type=float, default=0.0)
    mon.add_argument("--significance", type=float, default=0.05)
    mon.add_argument("--min-training-weeks", type=int, default=8)
    mon.add_argument("--retrain-every-weeks", type=int, default=4)
    mon.add_argument(
        "--min-coverage",
        type=float,
        default=0.5,
        help="suppress alerts for weeks observed below this fraction",
    )
    mon.add_argument(
        "--checkpoint", type=str, default=None, help="checkpoint file path"
    )
    mon.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists",
    )
    mon.add_argument(
        "--wal-dir",
        type=str,
        default=None,
        help="write-ahead log directory: every cycle is logged and "
        "fsynced before ingestion",
    )
    mon.add_argument(
        "--recover",
        action="store_true",
        help="reconcile --checkpoint (if any) with the --wal-dir log "
        "before continuing: replays the WAL tail a crash cut off",
    )
    mon.add_argument(
        "--quarantine-report",
        type=str,
        default=None,
        help="write the firewall's quarantine report (JSON) here",
    )
    mon.add_argument(
        "--max-reading",
        type=float,
        default=1000.0,
        help="physical kWh ceiling per half-hour slot; readings above "
        "it are quarantined as out_of_range",
    )
    mon.add_argument(
        "--crash-after-cycle",
        type=int,
        default=None,
        help="hard-kill the process (exit 3) after ingesting N cycles "
        "(crash-recovery testing)",
    )
    mon.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="bound the ingestion queue to N pending cycles (enables "
        "the backpressure signal)",
    )
    mon.add_argument(
        "--shed-policy",
        choices=["off", "priority", "uniform"],
        default="off",
        help="load-shedding policy under overload: priority sheds the "
        "healthy tier first (suspects always scored), uniform sheds "
        "tier-blind, off never sheds",
    )
    mon.add_argument(
        "--cycle-deadline-ms",
        type=float,
        default=None,
        help="per-cycle time budget in milliseconds; an exhausted "
        "budget sheds the rest of the weekly scoring pass",
    )
    mon.add_argument(
        "--storage-faults",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject deterministic storage faults: comma-separated "
        "SITE:OP@N=KIND entries (e.g. 'wal.append:write@3=torn'); "
        "sites glob (wal.*, export.*), ops are "
        "open/write/fsync/replace/fsync_dir/*, kinds are "
        "enospc/eio/torn/lying_fsync/bitrot; repeatable",
    )
    mon.add_argument(
        "--fault-ledger-out",
        type=str,
        default=None,
        help="write the injected-fault ledger (JSON) here "
        "(requires --storage-faults)",
    )
    mon.add_argument(
        "--network-faults",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject deterministic transport faults into the elastic "
        "fleet's message seam: comma-separated SHARD:OP@N=KIND entries "
        "(e.g. 'shard-0000:ingest@40=partition'); shards glob "
        "(shard-*), ops are ingest/heartbeat/checkpoint/extract/adopt/"
        "lease.acquire/*, kinds are drop/delay/dup/reorder/garble/"
        "partition/heal; requires --elastic; repeatable",
    )
    mon.add_argument(
        "--transport-ledger-out",
        type=str,
        default=None,
        help="write the injected network-fault ledger (JSON) here "
        "(requires --network-faults)",
    )
    mon.add_argument(
        "--lease-ttl-cycles",
        type=int,
        default=8,
        help="shard ownership lease TTL in ingest cycles for the "
        "elastic fleet (default 8); writes renew the lease, so only a "
        "silent coordinator can lose one",
    )
    mon.add_argument(
        "--scrub",
        action="store_true",
        help="verify every checkpoint generation before starting and "
        "rebuild a corrupt current one from the previous generation "
        "plus WAL replay (requires --wal-dir and --checkpoint)",
    )
    mon.add_argument(
        "--checkpoint-generations",
        type=int,
        default=1,
        help="checkpoint generations WAL compaction lags behind; 2 "
        "keeps enough log to rebuild a corrupt checkpoint from its "
        ".prev generation (see --scrub)",
    )
    mon.add_argument(
        "--eventtime",
        action="store_true",
        help="deliver readings out of order through the watermarked "
        "event-time pipeline: a reorder buffer releases slot-contiguous "
        "runs, late arrivals are reconciled into versioned verdict "
        "revisions, and the final weekly verdicts match an in-order run",
    )
    mon.add_argument(
        "--lateness-bound",
        type=int,
        default=48,
        help="slots the watermark trails the event-time frontier; "
        "deliveries inside the bound are reordered, not late",
    )
    mon.add_argument(
        "--grace-weeks",
        type=int,
        default=1,
        help="weeks a scored verdict stays open to late-reading "
        "reconciliation before finalising (later arrivals are "
        "quarantined too_late)",
    )
    mon.add_argument(
        "--scramble-delay",
        type=float,
        default=2.0,
        help="median backhaul delivery delay in slots for --eventtime "
        "(0 delivers in order)",
    )
    mon.add_argument(
        "--revisions-out",
        type=str,
        default=None,
        help="write the verdict-revision report (JSON) here "
        "(requires --eventtime)",
    )
    mon.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run N supervised monitor shards (requires --wal-dir; "
        "each shard keeps its own WAL and checkpoint and is restarted "
        "from them if it dies)",
    )
    mon.add_argument(
        "--elastic",
        action="store_true",
        help="place the shards on a consistent-hash ring and run them "
        "as an elastic fleet (requires --wal-dir; the fleet manifest "
        "there makes crash recovery implicit and shards can be added "
        "live via snapshot+WAL handoff)",
    )
    mon.add_argument(
        "--grow-at-week",
        type=int,
        default=None,
        help="with --elastic: add one shard live at the start of week N "
        "(a quiesce -> snapshot -> commit -> install -> finalize handoff)",
    )
    mon.add_argument(
        "--integrity",
        action="store_true",
        help="arm the training-integrity defenses: per-consumer drift "
        "sentinels screen suspect weeks out of every retraining, fits "
        "are winsorized, and each retrained model becomes a registry "
        "candidate that must pass the canary gate before promotion",
    )
    mon.add_argument(
        "--canary-floor",
        type=float,
        default=None,
        help="minimum canary detection rate a candidate model must "
        "reach to be promoted (requires --integrity; default 0.7)",
    )
    mon.add_argument(
        "--training-window",
        type=int,
        default=None,
        metavar="WEEKS",
        help="retrain on at most the most recent WEEKS eligible weeks "
        "instead of the full history",
    )
    mon.add_argument(
        "--model-rollback",
        type=int,
        default=None,
        metavar="VERSION",
        help="after --resume/--recover with --integrity: roll the "
        "active model back to registry VERSION before continuing "
        "(one command; subsequent verdicts are bit-identical to a run "
        "that never promoted the newer versions)",
    )
    mon.add_argument(
        "--lineage-out",
        type=str,
        default=None,
        help="write the model registry lineage report (JSON) here "
        "(requires --integrity)",
    )
    mon.add_argument(
        "--ramp-attack",
        type=str,
        default=None,
        metavar="CONSUMER",
        help="poison CONSUMER's reported series with a boiling-frog "
        "ramp: consumption shaved by --ramp-decay per week from "
        "--ramp-start-week down to --ramp-floor, slow enough that "
        "naive retraining absorbs the theft into the baseline",
    )
    mon.add_argument(
        "--ramp-start-week",
        type=int,
        default=8,
        help="week the ramp attack starts (default 8)",
    )
    mon.add_argument(
        "--ramp-decay",
        type=float,
        default=0.97,
        help="multiplicative per-week ramp factor in (0, 1) "
        "(default 0.97; closer to 1 evades longer)",
    )
    mon.add_argument(
        "--ramp-floor",
        type=float,
        default=0.45,
        help="terminal fraction of actual consumption the ramp holds "
        "at once reached (default 0.45)",
    )
    _add_observability_options(mon)
    _add_ops_options(mon)
    mon.set_defaults(func=_cmd_monitor)

    st = sub.add_parser(
        "status",
        help="render the fleet ops dashboard from a manifest and "
        "exported health/SLO/profile reports",
    )
    st.add_argument(
        "--fleet-dir",
        type=str,
        default=None,
        help="fleet directory (reads fleet.json) or manifest file path",
    )
    st.add_argument(
        "--health", type=str, default=None, help="health report JSON"
    )
    st.add_argument("--slo", type=str, default=None, help="SLO report JSON")
    st.add_argument(
        "--profile", type=str, default=None, help="stage profile JSON"
    )
    st.add_argument(
        "--top", type=int, default=10, help="hot stages shown (default 10)"
    )
    st.add_argument(
        "--json",
        action="store_true",
        help="emit the merged raw JSON instead of the rendered dashboard",
    )
    st.set_defaults(func=_cmd_status)

    ab = sub.add_parser("ablation", help="histogram bin-count sweep")
    _add_dataset_options(ab)
    ab.add_argument("--sample", type=int, default=20, help="consumers to use")
    ab.set_defaults(func=_cmd_ablation)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
